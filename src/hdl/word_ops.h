/**
 * @file
 * Word-level combinational generators: the pre-built, validated arithmetic
 * module library (the repo's equivalent of ChiselTorch's pre-built Chisel
 * modules).
 *
 * All functions elaborate gates into the given builder and return handles.
 * Width conventions: unless stated otherwise, results have the width of the
 * wider operand and arithmetic wraps modulo 2^width (two's complement).
 */
#ifndef PYTFHE_HDL_WORD_OPS_H
#define PYTFHE_HDL_WORD_OPS_H

#include <utility>

#include "hdl/bits.h"

namespace pytfhe::hdl {

/** Constant word of the given width (value truncated to width). */
Bits ConstBits(Builder& b, uint64_t value, int32_t width);

/** Declares `width` fresh primary inputs named name[0..width). */
Bits InputBits(Builder& b, int32_t width, const std::string& name);

/** Registers each bit as an output named name[i]. */
void OutputBits(Builder& b, const Bits& x, const std::string& name);

/** Zero-extends or truncates to `width`. */
Bits ZeroExtend(Builder& b, const Bits& x, int32_t width);
/** Sign-extends (replicating the MSB) or truncates to `width`. */
Bits SignExtend(Builder& b, const Bits& x, int32_t width);

/** Bitwise operations (equal widths required). */
Bits AndBits(Builder& b, const Bits& x, const Bits& y);
Bits OrBits(Builder& b, const Bits& x, const Bits& y);
Bits XorBits(Builder& b, const Bits& x, const Bits& y);
Bits NotBits(Builder& b, const Bits& x);
/** Replicates `bit` across `width` lanes and ANDs with x. */
Bits MaskBits(Builder& b, const Bits& x, Signal bit);

/** Per-bit select: sel ? t : f (equal widths). */
Bits MuxBits(Builder& b, Signal sel, const Bits& t, const Bits& f);

/** Ripple-carry adder; returns sum (same width) and carry-out. */
std::pair<Bits, Signal> AddWithCarry(Builder& b, const Bits& x, const Bits& y,
                                     Signal carry_in);
/** x + y modulo 2^width. */
Bits Add(Builder& b, const Bits& x, const Bits& y);

/**
 * Kogge-Stone parallel-prefix adder: O(log w) bootstrap depth instead of
 * the ripple adder's O(w), at ~2x the gate count. Depth is what the
 * distributed and GPU backends parallelize over, so arithmetic-heavy
 * circuits built with fast adders scale much further (see
 * bench_ablation_adders).
 */
Bits AddFast(Builder& b, const Bits& x, const Bits& y);

/** Kogge-Stone subtraction: x - y at O(log w) depth. */
Bits SubFast(Builder& b, const Bits& x, const Bits& y);
/** x - y modulo 2^width. */
Bits Sub(Builder& b, const Bits& x, const Bits& y);
/** Two's complement negation. */
Bits Neg(Builder& b, const Bits& x);
/** x + 1 modulo 2^width. */
Bits Increment(Builder& b, const Bits& x);

/** Reduction operators. */
Signal OrReduce(Builder& b, const Bits& x);
Signal AndReduce(Builder& b, const Bits& x);

/** Comparisons (equal widths). */
Signal Eq(Builder& b, const Bits& x, const Bits& y);
Signal Ne(Builder& b, const Bits& x, const Bits& y);
/** Unsigned less-than. */
Signal Ult(Builder& b, const Bits& x, const Bits& y);
/** Signed (two's complement) less-than. */
Signal Slt(Builder& b, const Bits& x, const Bits& y);

/** Shifts by a constant amount (width preserved). */
Bits ShlConst(Builder& b, const Bits& x, int32_t amount);
Bits LshrConst(Builder& b, const Bits& x, int32_t amount);
Bits AshrConst(Builder& b, const Bits& x, int32_t amount);

/** Barrel shifts by a signal amount (width preserved). */
Bits ShlDynamic(Builder& b, const Bits& x, const Bits& amount);
Bits LshrDynamic(Builder& b, const Bits& x, const Bits& amount);

/**
 * Unsigned multiply: returns the low `out_width` bits of x * y
 * (shift-and-add array multiplier).
 */
Bits UMul(Builder& b, const Bits& x, const Bits& y, int32_t out_width);
/** Signed multiply modulo 2^out_width (sign-extends then multiplies). */
Bits SMul(Builder& b, const Bits& x, const Bits& y, int32_t out_width);

/** Restoring unsigned division; returns {quotient, remainder}. */
std::pair<Bits, Bits> UDivMod(Builder& b, const Bits& x, const Bits& y);
/** Signed division rounding toward zero; returns {quotient, remainder}. */
std::pair<Bits, Bits> SDivMod(Builder& b, const Bits& x, const Bits& y);

/** Number of leading zeros, as a word of ceil(log2(width+1)) bits. */
Bits LeadingZeroCount(Builder& b, const Bits& x);

/** Population count, as a word of ceil(log2(width+1)) bits. */
Bits PopCount(Builder& b, const Bits& x);

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_WORD_OPS_H
