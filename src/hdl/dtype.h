/**
 * @file
 * Parameterizable data types (Section IV-B of the paper).
 *
 * TFHE programs operate at gate level, so data types are not limited to
 * byte or word alignment: ChiselTorch supports integers and fixed-point
 * values of arbitrary bit width, and floating-point types with arbitrary
 * exponent and mantissa widths — e.g. Float(8, 8) is bfloat16 and
 * Float(5, 11) is effectively half precision. Choosing a cheaper data type
 * can reduce gate counts by orders of magnitude; the dtype ablation bench
 * quantifies this.
 *
 * This header also defines the plaintext encoding used by clients to turn
 * numbers into bit vectors before encryption (and back after decryption),
 * and by tests as the reference semantics for the generated circuits.
 */
#ifndef PYTFHE_HDL_DTYPE_H
#define PYTFHE_HDL_DTYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pytfhe::hdl {

/** A parameterizable scalar data type. */
class DType {
  public:
    enum class Kind : uint8_t { kUInt, kSInt, kFixed, kFloat };

    /** Unsigned integer of `width` bits. */
    static DType UInt(int32_t width) { return DType(Kind::kUInt, width, 0); }
    /** Signed (two's complement) integer of `width` bits. */
    static DType SInt(int32_t width) { return DType(Kind::kSInt, width, 0); }
    /**
     * Signed fixed point with int_bits integer bits (including sign) and
     * frac_bits fractional bits.
     */
    static DType Fixed(int32_t int_bits, int32_t frac_bits) {
        return DType(Kind::kFixed, int_bits, frac_bits);
    }
    /** Floating point with exp_bits exponent and mant_bits mantissa bits. */
    static DType Float(int32_t exp_bits, int32_t mant_bits) {
        return DType(Kind::kFloat, exp_bits, mant_bits);
    }

    Kind kind() const { return kind_; }
    bool IsFloat() const { return kind_ == Kind::kFloat; }
    bool IsSigned() const { return kind_ != Kind::kUInt; }

    /** Total storage bits (float: 1 sign + exp + mant). */
    int32_t TotalBits() const;

    /** Integer bits for kFixed; width for integer kinds. */
    int32_t IntBits() const { return a_; }
    int32_t FracBits() const { return kind_ == Kind::kFixed ? b_ : 0; }
    int32_t ExpBits() const { return a_; }
    int32_t MantBits() const { return b_; }
    /** Floating-point exponent bias 2^(e-1) - 1. */
    int32_t Bias() const { return (1 << (a_ - 1)) - 1; }

    /**
     * Encodes a real number into this type's bit pattern (LSB first).
     * Values are clamped/rounded per type semantics: integers round to
     * nearest and saturate; fixed point rounds to nearest; floats truncate
     * the mantissa, flush subnormals to zero, and saturate to infinity.
     */
    std::vector<bool> Encode(double value) const;

    /** Decodes a bit pattern back into a real number. */
    double Decode(const std::vector<bool>& bits) const;

    /** Quantization: the closest value representable in this type. */
    double Quantize(double value) const { return Decode(Encode(value)); }

    std::string ToString() const;

    bool operator==(const DType&) const = default;

  private:
    DType(Kind kind, int32_t a, int32_t b) : kind_(kind), a_(a), b_(b) {}

    Kind kind_;
    int32_t a_;  ///< Width / int bits / exponent bits.
    int32_t b_;  ///< Fraction bits / mantissa bits.
};

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_DTYPE_H
