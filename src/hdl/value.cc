#include "hdl/value.h"

#include <cassert>

namespace pytfhe::hdl {

namespace {

FloatFmt FmtOf(const DType& t) { return FloatFmt{t.ExpBits(), t.MantBits()}; }

void CheckSameType(const Value& x, const Value& y) {
    assert(x.dtype == y.dtype);
    (void)x;
    (void)y;
}

}  // namespace

Value InputValue(Builder& b, const DType& t, const std::string& name) {
    return Value{t, InputBits(b, t.TotalBits(), name)};
}

Value ConstValue(Builder& b, const DType& t, double value) {
    const std::vector<bool> pattern = t.Encode(value);
    Bits bits;
    bits.bits.reserve(pattern.size());
    for (bool bit : pattern) bits.bits.push_back(b.MakeConst(bit));
    return Value{t, std::move(bits)};
}

void OutputValue(Builder& b, const Value& v, const std::string& name) {
    OutputBits(b, v.bits, name);
}

Value VAdd(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    if (x.dtype.IsFloat())
        return Value{x.dtype, FAdd(b, FmtOf(x.dtype), x.bits, y.bits)};
    return Value{x.dtype, Add(b, x.bits, y.bits)};
}

Value VSub(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    if (x.dtype.IsFloat())
        return Value{x.dtype, FSub(b, FmtOf(x.dtype), x.bits, y.bits)};
    return Value{x.dtype, Sub(b, x.bits, y.bits)};
}

Value VMul(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    const DType& t = x.dtype;
    switch (t.kind()) {
        case DType::Kind::kFloat:
            return Value{t, FMul(b, FmtOf(t), x.bits, y.bits)};
        case DType::Kind::kUInt:
            return Value{t, UMul(b, x.bits, y.bits, t.TotalBits())};
        case DType::Kind::kSInt:
            return Value{t, SMul(b, x.bits, y.bits, t.TotalBits())};
        case DType::Kind::kFixed: {
            // Widen so the product's fractional shift cannot overflow.
            const int32_t w = t.TotalBits() + t.FracBits();
            Bits prod = SMul(b, x.bits, y.bits, w);
            prod = AshrConst(b, prod, t.FracBits());
            return Value{t, prod.Slice(0, t.TotalBits())};
        }
    }
    return x;  // Unreachable.
}

Value VDiv(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    const DType& t = x.dtype;
    switch (t.kind()) {
        case DType::Kind::kFloat:
            return Value{t, FDiv(b, FmtOf(t), x.bits, y.bits)};
        case DType::Kind::kUInt:
            return Value{t, UDivMod(b, x.bits, y.bits).first};
        case DType::Kind::kSInt:
            return Value{t, SDivMod(b, x.bits, y.bits).first};
        case DType::Kind::kFixed: {
            // (x << f) / y in widened signed arithmetic.
            const int32_t w = t.TotalBits() + t.FracBits() + 1;
            Bits num = ShlConst(b, SignExtend(b, x.bits, w), t.FracBits());
            Bits den = SignExtend(b, y.bits, w);
            Bits quot = SDivMod(b, num, den).first;
            return Value{t, quot.Slice(0, t.TotalBits())};
        }
    }
    return x;  // Unreachable.
}

Value VNeg(Builder& b, const Value& x) {
    if (x.dtype.IsFloat())
        return Value{x.dtype, FNeg(b, FmtOf(x.dtype), x.bits)};
    return Value{x.dtype, Neg(b, x.bits)};
}

Signal VLt(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    const DType& t = x.dtype;
    switch (t.kind()) {
        case DType::Kind::kFloat:
            return FLt(b, FmtOf(t), x.bits, y.bits);
        case DType::Kind::kUInt:
            return Ult(b, x.bits, y.bits);
        case DType::Kind::kSInt:
        case DType::Kind::kFixed:
            return Slt(b, x.bits, y.bits);
    }
    return b.MakeConst(false);  // Unreachable.
}

Signal VLe(Builder& b, const Value& x, const Value& y) {
    return b.MakeNot(VLt(b, y, x));
}
Signal VGt(Builder& b, const Value& x, const Value& y) { return VLt(b, y, x); }
Signal VGe(Builder& b, const Value& x, const Value& y) {
    return b.MakeNot(VLt(b, x, y));
}

Signal VEq(Builder& b, const Value& x, const Value& y) {
    CheckSameType(x, y);
    if (x.dtype.IsFloat()) return FEq(b, FmtOf(x.dtype), x.bits, y.bits);
    return Eq(b, x.bits, y.bits);
}

Signal VNe(Builder& b, const Value& x, const Value& y) {
    return b.MakeNot(VEq(b, x, y));
}

Value VMux(Builder& b, Signal sel, const Value& x, const Value& y) {
    CheckSameType(x, y);
    return Value{x.dtype, MuxBits(b, sel, x.bits, y.bits)};
}

Value VRelu(Builder& b, const Value& x) {
    const DType& t = x.dtype;
    switch (t.kind()) {
        case DType::Kind::kFloat:
            return Value{t, FRelu(b, FmtOf(t), x.bits)};
        case DType::Kind::kUInt:
            return x;  // Already non-negative.
        case DType::Kind::kSInt:
        case DType::Kind::kFixed:
            // Negative (MSB set) clamps to zero.
            return Value{t, MuxBits(b, x.bits.Msb(),
                                    ConstBits(b, 0, t.TotalBits()), x.bits)};
    }
    return x;  // Unreachable.
}

Value VMax(Builder& b, const Value& x, const Value& y) {
    return VMux(b, VLt(b, x, y), y, x);
}

Value VMin(Builder& b, const Value& x, const Value& y) {
    return VMux(b, VLt(b, x, y), x, y);
}

}  // namespace pytfhe::hdl
