#include "hdl/dtype.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace pytfhe::hdl {

namespace {

std::vector<bool> ToBitsLsbFirst(uint64_t pattern, int32_t width) {
    std::vector<bool> out(width);
    for (int32_t i = 0; i < width; ++i) out[i] = (pattern >> i) & 1;
    return out;
}

uint64_t FromBitsLsbFirst(const std::vector<bool>& bits) {
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size() && i < 64; ++i)
        if (bits[i]) v |= UINT64_C(1) << i;
    return v;
}

/** Clamps v into [lo, hi]. */
double Clamp(double v, double lo, double hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

int32_t DType::TotalBits() const {
    switch (kind_) {
        case Kind::kUInt:
        case Kind::kSInt:
            return a_;
        case Kind::kFixed:
            return a_ + b_;
        case Kind::kFloat:
            return 1 + a_ + b_;
    }
    return 0;
}

std::vector<bool> DType::Encode(double value) const {
    switch (kind_) {
        case Kind::kUInt: {
            const double max = std::pow(2.0, a_) - 1;
            const uint64_t v =
                static_cast<uint64_t>(std::llround(Clamp(value, 0.0, max)));
            return ToBitsLsbFirst(v, a_);
        }
        case Kind::kSInt: {
            const double max = std::pow(2.0, a_ - 1) - 1;
            const double min = -std::pow(2.0, a_ - 1);
            const int64_t v = std::llround(Clamp(value, min, max));
            return ToBitsLsbFirst(static_cast<uint64_t>(v), a_);
        }
        case Kind::kFixed: {
            const int32_t w = a_ + b_;
            const double scaled = value * std::pow(2.0, b_);
            const double max = std::pow(2.0, w - 1) - 1;
            const double min = -std::pow(2.0, w - 1);
            const int64_t v = std::llround(Clamp(scaled, min, max));
            return ToBitsLsbFirst(static_cast<uint64_t>(v), w);
        }
        case Kind::kFloat: {
            const int32_t e = a_, m = b_;
            const int32_t bias = Bias();
            const int32_t max_exp = (1 << e) - 1;  // All-ones = infinity.
            uint64_t sign = value < 0 ? 1 : 0;
            double mag = std::abs(value);
            uint64_t exp_field = 0, mant_field = 0;
            if (std::isnan(mag) || mag == 0.0) {
                // NaN is not representable; encode as +0 (documented).
                sign = std::isnan(mag) ? 0 : sign;
            } else if (std::isinf(mag)) {
                exp_field = max_exp;
            } else {
                int ilogb = static_cast<int>(std::floor(std::log2(mag)));
                // Mantissa truncation (round toward zero).
                double frac = mag / std::pow(2.0, ilogb) - 1.0;  // [0, 1).
                int64_t mant =
                    static_cast<int64_t>(frac * std::pow(2.0, m));
                if (mant >= (INT64_C(1) << m)) {  // Numeric safety.
                    mant = 0;
                    ++ilogb;
                }
                int64_t biased = ilogb + bias;
                if (biased >= max_exp) {  // Overflow: saturate to infinity.
                    exp_field = max_exp;
                    mant = 0;
                } else if (biased <= 0) {  // Underflow: flush to zero.
                    exp_field = 0;
                    mant = 0;
                    sign = 0;
                } else {
                    exp_field = static_cast<uint64_t>(biased);
                }
                mant_field = static_cast<uint64_t>(mant);
            }
            if (exp_field == 0) mant_field = 0;
            // Layout, LSB first: mantissa, exponent, sign.
            const uint64_t pattern =
                mant_field | (exp_field << m) |
                (sign << (m + e));
            return ToBitsLsbFirst(pattern, 1 + e + m);
        }
    }
    return {};
}

double DType::Decode(const std::vector<bool>& bits) const {
    assert(static_cast<int32_t>(bits.size()) == TotalBits());
    const uint64_t pattern = FromBitsLsbFirst(bits);
    switch (kind_) {
        case Kind::kUInt:
            return static_cast<double>(pattern);
        case Kind::kSInt: {
            int64_t v = static_cast<int64_t>(pattern);
            if (a_ < 64 && (pattern >> (a_ - 1)) & 1)
                v -= INT64_C(1) << a_;  // Sign extend.
            return static_cast<double>(v);
        }
        case Kind::kFixed: {
            const int32_t w = a_ + b_;
            int64_t v = static_cast<int64_t>(pattern);
            if (w < 64 && (pattern >> (w - 1)) & 1) v -= INT64_C(1) << w;
            return static_cast<double>(v) * std::pow(2.0, -b_);
        }
        case Kind::kFloat: {
            const int32_t e = a_, m = b_;
            const uint64_t mant = pattern & ((UINT64_C(1) << m) - 1);
            const uint64_t exp = (pattern >> m) & ((UINT64_C(1) << e) - 1);
            const uint64_t sign = (pattern >> (m + e)) & 1;
            if (exp == 0) return sign ? -0.0 : 0.0;  // Subnormals flushed.
            const double s = sign ? -1.0 : 1.0;
            if (exp == static_cast<uint64_t>((1 << e) - 1))
                return s * std::numeric_limits<double>::infinity();
            const double frac =
                1.0 + static_cast<double>(mant) * std::pow(2.0, -m);
            return s * frac *
                   std::pow(2.0, static_cast<double>(exp) - Bias());
        }
    }
    return 0.0;
}

std::string DType::ToString() const {
    std::ostringstream os;
    switch (kind_) {
        case Kind::kUInt: os << "UInt(" << a_ << ")"; break;
        case Kind::kSInt: os << "SInt(" << a_ << ")"; break;
        case Kind::kFixed: os << "Fixed(" << a_ << "," << b_ << ")"; break;
        case Kind::kFloat: os << "Float(" << a_ << "," << b_ << ")"; break;
    }
    return os.str();
}

}  // namespace pytfhe::hdl
