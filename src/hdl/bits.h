/**
 * @file
 * Bit-vector handle for hardware construction.
 *
 * A Bits is a little-endian vector of netlist signals (bit 0 = LSB) built
 * against a circuit::SimplifyingBuilder. Bits are value types: copying a
 * Bits copies signal ids, not hardware. All hardware generators live in
 * word_ops.h / float_ops.h and take the builder explicitly, mirroring how
 * Chisel generators elaborate into a module under construction.
 */
#ifndef PYTFHE_HDL_BITS_H
#define PYTFHE_HDL_BITS_H

#include <cassert>
#include <cstdint>
#include <vector>

#include "circuit/builder.h"

namespace pytfhe::hdl {

using Builder = circuit::SimplifyingBuilder;
using Signal = circuit::NodeId;

/** Little-endian vector of signals. */
struct Bits {
    std::vector<Signal> bits;

    Bits() = default;
    explicit Bits(std::vector<Signal> b) : bits(std::move(b)) {}

    int32_t Width() const { return static_cast<int32_t>(bits.size()); }
    Signal& operator[](int32_t i) { return bits[i]; }
    Signal operator[](int32_t i) const { return bits[i]; }
    Signal Msb() const {
        assert(!bits.empty());
        return bits.back();
    }

    /** The low `n` bits. */
    Bits Slice(int32_t lo, int32_t width) const {
        assert(lo >= 0 && lo + width <= Width());
        return Bits(std::vector<Signal>(bits.begin() + lo,
                                        bits.begin() + lo + width));
    }
};

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_BITS_H
