#include "hdl/multibit_ops.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>
#include <vector>

#include "hdl/word_ops.h"

namespace pytfhe::hdl {

namespace {

using circuit::kConstFalse;
using circuit::kConstTrue;
using circuit::LutSpec;

/**
 * Emits one weighted LUT whose table holds f(m) for every m in the
 * nominal range of the weighted sum. Nominal operand ranges come from
 * DigitBits — a 2-bit digit counts as 0..3 even when its producer emits
 * at most 2 — matching what Netlist::Validate recomputes, so tables are
 * total over the validator's domain even where sums are unreachable.
 */
Signal EmitLut(Builder& b, const std::vector<Signal>& ops,
               const std::vector<int8_t>& weights, uint8_t out_bits,
               const std::function<uint32_t(int32_t)>& f) {
    assert(!ops.empty() && ops.size() == weights.size());
    int32_t lo = 0, hi = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        const int32_t vmax = (1 << b.netlist().DigitBits(ops[i])) - 1;
        if (weights[i] > 0)
            hi += weights[i] * vmax;
        else
            lo += weights[i] * vmax;
    }
    LutSpec spec;
    spec.weights.assign(weights.begin(), weights.end());
    spec.lo = lo;
    spec.out_bits = out_bits;
    const uint32_t mask = (uint32_t{1} << out_bits) - 1;
    for (int32_t m = lo; m <= hi; ++m)
        spec.table |= (f(m) & mask)
                      << (static_cast<uint32_t>(m - lo) * out_bits);
    return b.MakeLut(spec, std::span<const Signal>(ops));
}

}  // namespace

Bits MultibitAdd(Builder& b, const MultibitPlan& plan, const Bits& x,
                 const Bits& y) {
    if (!plan.Fits(kMultibitAddWeightSq)) return Add(b, x, y);
    const int32_t w = std::max(x.Width(), y.Width());
    assert(w > 0);
    b.SetMessageModulus(plan.p);
    const Bits xe = ZeroExtend(b, x, w);
    const Bits ye = ZeroExtend(b, y, w);

    std::vector<Signal> out(w);
    Signal carry = kConstFalse;  // MakeLut folds the constant ride-along.
    int32_t i = 0;
    while (i < w) {
        // One block covers s result columns plus the incoming carry:
        // m = sum_t 2^t (x_{i+t} + y_{i+t}) + carry, so result bit i+t is
        // (m >> t) & 1 and the block's carry-out is m >> s. Every LUT of
        // the block shares the same weighted sum, so the per-worker test
        // vectors differ but the linear prelude is identical.
        const int32_t s = std::min<int32_t>(3, w - i);
        std::vector<Signal> ops;
        std::vector<int8_t> weights;
        for (int32_t t = 0; t < s; ++t) {
            ops.push_back(xe[i + t]);
            ops.push_back(ye[i + t]);
            weights.push_back(static_cast<int8_t>(1 << t));
            weights.push_back(static_cast<int8_t>(1 << t));
        }
        ops.push_back(carry);
        weights.push_back(1);
        for (int32_t t = 0; t < s; ++t)
            out[i + t] = EmitLut(b, ops, weights, 1, [t](int32_t m) {
                return static_cast<uint32_t>(m >> t) & 1u;
            });
        if (i + s < w)
            carry = EmitLut(b, ops, weights, 1, [s](int32_t m) {
                return static_cast<uint32_t>(m >> s) & 1u;
            });
        i += s;
    }
    return Bits(std::move(out));
}

Signal MultibitUlt(Builder& b, const MultibitPlan& plan, const Bits& x,
                   const Bits& y) {
    assert(x.Width() == y.Width() && x.Width() > 0);
    if (!plan.Fits(kMultibitUltWeightSq)) return Ult(b, x, y);
    b.SetMessageModulus(plan.p);
    const int32_t w = x.Width();

    Signal lt;
    int32_t i;
    if (w >= 2) {
        // Fused low pair: m = x0 + 2 y0 + 4 x1 + 8 y1 packs both 2-bit
        // values injectively, so one LUT4 decides their comparison.
        lt = EmitLut(b, {x[0], y[0], x[1], y[1]}, {1, 2, 4, 8}, 1,
                     [](int32_t m) {
                         const int32_t xv = (m & 1) | (((m >> 2) & 1) << 1);
                         const int32_t yv =
                             ((m >> 1) & 1) | (((m >> 3) & 1) << 1);
                         return xv < yv ? 1u : 0u;
                     });
        i = 2;
    } else {
        // Single bit: x < y iff (!x && y), i.e. m = x + 2y equals 2.
        lt = EmitLut(b, {x[0], y[0]}, {1, 2}, 1,
                     [](int32_t m) { return m == 2 ? 1u : 0u; });
        i = 1;
    }
    for (; i < w; ++i) {
        // Chain step, LSB to MSB so higher bits take priority:
        // lt' = (x_i < y_i) or (x_i == y_i and lt).
        lt = EmitLut(b, {lt, y[i], x[i]}, {1, 2, 4}, 1, [](int32_t m) {
            const int32_t l = m & 1;
            const int32_t yv = (m >> 1) & 1;
            const int32_t xv = (m >> 2) & 1;
            if (xv != yv) return yv ? 1u : 0u;
            return l ? 1u : 0u;
        });
    }
    return lt;
}

Signal MultibitEq(Builder& b, const MultibitPlan& plan, const Bits& x,
                  const Bits& y) {
    assert(x.Width() == y.Width() && x.Width() > 0);
    if (!plan.Fits(kMultibitEqWeightSq)) return Eq(b, x, y);
    b.SetMessageModulus(plan.p);
    const int32_t w = x.Width();

    // One verdict bit per two positions: weights (1,1,3,3) give two
    // independent base-3 digits d0 = x_i + y_i and d1 = x_{i+1} + y_{i+1};
    // a position is equal exactly when its digit differs from 1.
    std::vector<Signal> verdicts;
    for (int32_t i = 0; i < w; i += 2) {
        if (i + 1 < w) {
            verdicts.push_back(EmitLut(
                b, {x[i], y[i], x[i + 1], y[i + 1]}, {1, 1, 3, 3}, 1,
                [](int32_t m) {
                    return (m % 3 != 1 && m / 3 != 1) ? 1u : 0u;
                }));
        } else {
            verdicts.push_back(
                EmitLut(b, {x[i], y[i]}, {1, 1}, 1,
                        [](int32_t m) { return m != 1 ? 1u : 0u; }));
        }
    }

    // Counting AND-reduction: up to kMaxLutArity verdicts collapse per
    // LUT (all weights 1, true iff every operand is 1).
    while (verdicts.size() > 1) {
        std::vector<Signal> next;
        for (size_t i = 0; i < verdicts.size();
             i += circuit::kMaxLutArity) {
            const size_t k = std::min<size_t>(circuit::kMaxLutArity,
                                              verdicts.size() - i);
            if (k == 1) {
                next.push_back(verdicts[i]);
                continue;
            }
            const std::vector<Signal> ops(verdicts.begin() + i,
                                          verdicts.begin() + i + k);
            const std::vector<int8_t> ones(k, 1);
            next.push_back(EmitLut(b, ops, ones, 1, [k](int32_t m) {
                return m == static_cast<int32_t>(k) ? 1u : 0u;
            }));
        }
        verdicts = std::move(next);
    }
    return verdicts[0];
}

namespace {

/** One addend of an output column: a signal plus its value bounds. */
struct ColOp {
    Signal sig = kConstFalse;
    int32_t nominal = 1;  ///< Validator-visible max (from DigitBits).
    int32_t actual = 1;   ///< Tightest known bound on the digit value.
};

/** Column addend bookkeeping for the multiplier's compression stage. */
struct Columns {
    std::vector<std::vector<ColOp>> ops;
    std::vector<int32_t> const_add;

    explicit Columns(int32_t n) : ops(n), const_add(n, 0) {}

    int32_t Width() const { return static_cast<int32_t>(ops.size()); }

    void Push(Builder& b, int32_t c, Signal sig, int32_t actual) {
        if (c >= Width()) return;  // Carry past the kept output width.
        if (sig == kConstFalse) return;
        if (sig == kConstTrue) {
            const_add[c] += 1;
            return;
        }
        const int32_t nominal = (1 << b.netlist().DigitBits(sig)) - 1;
        ops[c].push_back({sig, nominal, std::min(actual, nominal)});
    }
};

}  // namespace

Bits MultibitUMul(Builder& b, const MultibitPlan& plan, const Bits& x,
                  const Bits& y, int32_t out_width) {
    if (!plan.Fits(kMultibitMulWeightSq)) return UMul(b, x, y, out_width);
    assert(out_width > 0 && x.Width() > 0 && y.Width() > 0);
    b.SetMessageModulus(plan.p);
    const int32_t wx = x.Width();
    const int32_t wy = y.Width();
    const int32_t cap = plan.p - 1;

    Columns cols(out_width);

    // Stage 1: count partial products two at a time. Weights (1,1,3,3)
    // give two base-3 digits, one per product; the LUT emits how many of
    // the two products are 1 as a 2-bit column digit. Constant factors
    // never reach a LUT: a zero factor deletes the product, a one factor
    // reduces it to the other bit.
    for (int32_t c = 0; c < out_width; ++c) {
        std::vector<std::pair<Signal, Signal>> pairs;
        for (int32_t i = std::max(0, c - wy + 1); i <= std::min(wx - 1, c);
             ++i) {
            const Signal a = x[i];
            const Signal d = y[c - i];
            if (a == kConstFalse || d == kConstFalse) continue;
            if (a == kConstTrue) {
                cols.Push(b, c, d, 1);
                continue;
            }
            if (d == kConstTrue) {
                cols.Push(b, c, a, 1);
                continue;
            }
            pairs.emplace_back(a, d);
        }
        size_t k = 0;
        for (; k + 1 < pairs.size(); k += 2) {
            const Signal digit = EmitLut(
                b,
                {pairs[k].first, pairs[k].second, pairs[k + 1].first,
                 pairs[k + 1].second},
                {1, 1, 3, 3}, 2, [](int32_t m) {
                    return (m % 3 == 2 ? 1u : 0u) + (m / 3 == 2 ? 1u : 0u);
                });
            cols.Push(b, c, digit, 2);
        }
        if (k < pairs.size())
            cols.Push(b, c,
                      EmitLut(b, {pairs[k].first, pairs[k].second}, {1, 1},
                              1, [](int32_t m) { return m == 2 ? 1u : 0u; }),
                      1);
    }

    // Stage 2: resolve columns LSB first. Column c's value is
    // v = sum(ops) + const_add; bit c of the product is v & 1 and bit t
    // of v carries into column c + t. All counting LUTs use weight 1, so
    // the noise-relevant weight square is just the operand count.
    std::vector<Signal> out(out_width, kConstFalse);
    for (int32_t c = 0; c < out_width; ++c) {
        std::vector<ColOp>& ops = cols.ops[c];
        const int32_t cadd = cols.const_add[c];

        auto nominal_sum = [&]() {
            int32_t s = cadd;
            for (const ColOp& op : ops) s += op.nominal;
            return s;
        };

        // Safety valve for widths beyond the 8x8 design point: compress
        // a leading run of addends into its binary digits until the
        // column fits the message space and the LUT arity.
        while (static_cast<int32_t>(ops.size()) > circuit::kMaxLutArity ||
               nominal_sum() > cap) {
            size_t take = 0;
            int32_t taken_nominal = 0, taken_actual = 0;
            while (take < ops.size() &&
                   take < static_cast<size_t>(circuit::kMaxLutArity) &&
                   taken_nominal + ops[take].nominal <= cap) {
                taken_nominal += ops[take].nominal;
                taken_actual += ops[take].actual;
                ++take;
            }
            assert(take >= 2 && "column addend does not fit message space");
            std::vector<Signal> sub;
            const std::vector<int8_t> ones(take, 1);
            for (size_t i = 0; i < take; ++i) sub.push_back(ops[i].sig);
            std::vector<ColOp> rest(ops.begin() + take, ops.end());
            for (int32_t t = 0; (taken_actual >> t) != 0; ++t) {
                if (t > 0 && c + t >= out_width) break;
                const Signal bit =
                    EmitLut(b, sub, ones, 1, [t](int32_t m) {
                        return static_cast<uint32_t>(m >> t) & 1u;
                    });
                if (t == 0)
                    rest.insert(rest.begin(), {bit, 1, 1});
                else
                    cols.Push(b, c + t, bit, 1);
            }
            ops = std::move(rest);
        }

        if (ops.empty()) {
            out[c] = (cadd & 1) != 0 ? kConstTrue : kConstFalse;
            for (int32_t t = 1; (cadd >> t) != 0; ++t)
                if (((cadd >> t) & 1) != 0) cols.Push(b, c + t, kConstTrue, 1);
            continue;
        }
        if (ops.size() == 1 && cadd == 0 && ops[0].nominal == 1) {
            out[c] = ops[0].sig;
            continue;
        }

        int32_t actual = cadd;
        std::vector<Signal> sigs;
        for (const ColOp& op : ops) {
            actual += op.actual;
            sigs.push_back(op.sig);
        }
        const std::vector<int8_t> ones(sigs.size(), 1);
        out[c] = EmitLut(b, sigs, ones, 1, [cadd](int32_t m) {
            return static_cast<uint32_t>(m + cadd) & 1u;
        });
        for (int32_t t = 1; (actual >> t) != 0 && c + t < out_width; ++t)
            cols.Push(b, c + t,
                      EmitLut(b, sigs, ones, 1,
                              [cadd, t](int32_t m) {
                                  return static_cast<uint32_t>(
                                             (m + cadd) >> t) &
                                         1u;
                              }),
                      1);
    }
    return Bits(std::move(out));
}

}  // namespace pytfhe::hdl
