#include "hdl/float_ops.h"

namespace pytfhe::hdl {

using circuit::GateType;

FloatParts FUnpack(const FloatFmt& fmt, const Bits& x) {
    assert(x.Width() == fmt.TotalBits());
    FloatParts p;
    p.mant = x.Slice(0, fmt.m);
    p.exp = x.Slice(fmt.m, fmt.e);
    p.sign = x[fmt.m + fmt.e];
    return p;
}

Bits FPack(Builder& b, const FloatFmt& fmt, const FloatParts& parts) {
    (void)b;
    assert(parts.exp.Width() == fmt.e && parts.mant.Width() == fmt.m);
    Bits out = parts.mant;
    out.bits.insert(out.bits.end(), parts.exp.bits.begin(),
                    parts.exp.bits.end());
    out.bits.push_back(parts.sign);
    return out;
}

Signal FIsZero(Builder& b, const FloatFmt& fmt, const Bits& x) {
    return b.MakeNot(OrReduce(b, x.Slice(fmt.m, fmt.e)));
}

Signal FIsInf(Builder& b, const FloatFmt& fmt, const Bits& x) {
    return AndReduce(b, x.Slice(fmt.m, fmt.e));
}

Bits FZero(Builder& b, const FloatFmt& fmt) {
    return ConstBits(b, 0, fmt.TotalBits());
}

namespace {

/** Mantissa with the implicit leading bit prepended (m + 1 bits). */
Bits FullMantissa(Builder& b, const FloatFmt& fmt, const FloatParts& p,
                  Signal is_zero) {
    Bits full = p.mant;
    full.bits.push_back(b.MakeNot(is_zero));
    (void)fmt;
    return full;
}

/** The packed infinity with the given sign. */
Bits FInfinity(Builder& b, const FloatFmt& fmt, Signal sign) {
    FloatParts p;
    p.mant = ConstBits(b, 0, fmt.m);
    p.exp = ConstBits(b, ~UINT64_C(0), fmt.e);
    p.sign = sign;
    return FPack(b, fmt, p);
}

/**
 * Final exponent clamp shared by add/mul/div. exp_w is a signed word wider
 * than e bits holding the tentative biased exponent; the result is
 *  - zero when the value underflows (exp_w <= 0) or `force_zero`;
 *  - infinity when it overflows (exp_w >= 2^e - 1) or `force_inf`;
 *  - the packed normal value otherwise.
 */
Bits ClampAndPack(Builder& b, const FloatFmt& fmt, Signal sign,
                  const Bits& exp_w, const Bits& mant, Signal force_zero,
                  Signal force_inf) {
    const int32_t we = exp_w.Width();
    // exp_w <= 0: negative (MSB) or all-zero.
    const Signal negative = exp_w.Msb();
    const Signal zero_exp = b.MakeNot(OrReduce(b, exp_w));
    const Signal underflow = b.MakeGate(GateType::kOr, negative, zero_exp);
    // exp_w >= max_exp (as signed; negative already excluded).
    const Bits max_exp = ConstBits(b, (UINT64_C(1) << fmt.e) - 1, we);
    const Signal too_big = b.MakeNot(Slt(b, exp_w, max_exp));
    const Signal overflow = b.MakeGate(GateType::kAndNY, negative, too_big);

    FloatParts norm;
    norm.sign = sign;
    norm.exp = exp_w.Slice(0, fmt.e);
    norm.mant = mant;
    Bits packed = FPack(b, fmt, norm);

    Bits result = MuxBits(b, overflow, FInfinity(b, fmt, sign), packed);
    result = MuxBits(b, b.MakeGate(GateType::kOr, underflow, force_zero),
                     FZero(b, fmt), result);
    // force_inf wins over zero (used by div-by-zero and inf operands).
    result = MuxBits(b, force_inf, FInfinity(b, fmt, sign), result);
    return result;
}

}  // namespace

Bits FAdd(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    const int32_t m = fmt.m;
    constexpr int32_t kGuard = 3;

    const FloatParts a = FUnpack(fmt, x);
    const FloatParts c = FUnpack(fmt, y);
    const Signal za = FIsZero(b, fmt, x);
    const Signal zc = FIsZero(b, fmt, y);

    // Order by magnitude ({exp, mant} compares like magnitude).
    Bits mag_a = a.mant;
    mag_a.bits.insert(mag_a.bits.end(), a.exp.bits.begin(), a.exp.bits.end());
    Bits mag_c = c.mant;
    mag_c.bits.insert(mag_c.bits.end(), c.exp.bits.begin(), c.exp.bits.end());
    const Signal a_lt_c = Ult(b, mag_a, mag_c);

    const Signal big_sign = b.MakeMux(a_lt_c, c.sign, a.sign);
    const Signal small_sign = b.MakeMux(a_lt_c, a.sign, c.sign);
    const Bits big_exp = MuxBits(b, a_lt_c, c.exp, a.exp);
    const Bits small_exp = MuxBits(b, a_lt_c, a.exp, c.exp);
    const Bits big_mant = MuxBits(b, a_lt_c, c.mant, a.mant);
    const Bits small_mant = MuxBits(b, a_lt_c, a.mant, c.mant);
    const Signal big_zero = b.MakeMux(a_lt_c, zc, za);
    const Signal small_zero = b.MakeMux(a_lt_c, za, zc);

    FloatParts bigp{big_sign, big_exp, big_mant};
    FloatParts smallp{small_sign, small_exp, small_mant};

    // Align: shift the small mantissa right by the exponent difference.
    const int32_t w = m + 2 + kGuard;
    Bits bm = ZeroExtend(b, FullMantissa(b, fmt, bigp, big_zero), w);
    bm = ShlConst(b, bm, kGuard);
    Bits sm = ZeroExtend(b, FullMantissa(b, fmt, smallp, small_zero), w);
    sm = ShlConst(b, sm, kGuard);
    const Bits exp_diff = Sub(b, big_exp, small_exp);
    sm = LshrDynamic(b, sm, exp_diff);

    const Signal same_sign = b.MakeGate(GateType::kXnor, big_sign, small_sign);
    const Bits sum_add = Add(b, bm, sm);
    const Bits sum_sub = Sub(b, bm, sm);  // Never negative: |big| >= |small|.
    const Bits sum = MuxBits(b, same_sign, sum_add, sum_sub);

    // Normalize: left-shift away leading zeros.
    const Signal sum_zero = b.MakeNot(OrReduce(b, sum));
    const Bits lzc = LeadingZeroCount(b, sum);
    const Bits norm = ShlDynamic(b, sum, ZeroExtend(b, lzc, lzc.Width()));

    // Biased result exponent: big_exp + 1 - lzc, in e+2-bit signed math.
    const int32_t we = fmt.e + 2;
    Bits exp_w = ZeroExtend(b, big_exp, we);
    exp_w = Increment(b, exp_w);
    exp_w = Sub(b, exp_w, ZeroExtend(b, lzc, we));

    // Mantissa: bits below the (implicit) MSB of norm, truncated.
    Bits mant_out = norm.Slice(w - 1 - m, m);

    const Signal inf_a = FIsInf(b, fmt, x);
    const Signal inf_c = FIsInf(b, fmt, y);
    const Signal any_inf = b.MakeGate(GateType::kOr, inf_a, inf_c);
    // Sign of the infinite result: the sign of whichever operand is inf
    // (x wins when both; inf - inf is +inf only if x is +inf — documented).
    const Signal inf_sign = b.MakeMux(inf_a, a.sign, c.sign);

    // Exact cancellation produces +0 (sign cleared via force_zero path).
    Bits result = ClampAndPack(b, fmt, big_sign, exp_w, mant_out, sum_zero,
                               b.MakeConst(false));
    result = MuxBits(b, any_inf, FInfinity(b, fmt, inf_sign), result);
    return result;
}

Bits FSub(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    return FAdd(b, fmt, x, FNeg(b, fmt, y));
}

Bits FMul(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    const int32_t m = fmt.m;
    const FloatParts a = FUnpack(fmt, x);
    const FloatParts c = FUnpack(fmt, y);
    const Signal za = FIsZero(b, fmt, x);
    const Signal zc = FIsZero(b, fmt, y);
    const Signal sign = b.MakeGate(GateType::kXor, a.sign, c.sign);

    const Bits am = FullMantissa(b, fmt, a, za);
    const Bits cm = FullMantissa(b, fmt, c, zc);
    const int32_t pw = 2 * m + 2;
    const Bits prod = UMul(b, ZeroExtend(b, am, pw), cm, pw);

    // Product of [1,2) x [1,2) is in [1,4): top bit selects the shift.
    const Signal top = prod[pw - 1];
    const Bits mant_hi = prod.Slice(m + 1, m);  // Top set: drop bit 2m+1.
    const Bits mant_lo = prod.Slice(m, m);      // Top clear: drop bit 2m.
    const Bits mant_out = MuxBits(b, top, mant_hi, mant_lo);

    // exp = exp_a + exp_c - bias + top.
    const int32_t we = fmt.e + 2;
    Bits exp_w = Add(b, ZeroExtend(b, a.exp, we), ZeroExtend(b, c.exp, we));
    exp_w = Sub(b, exp_w, ConstBits(b, fmt.Bias(), we));
    exp_w = Add(b, exp_w, ZeroExtend(b, Bits({top}), we));

    const Signal any_zero = b.MakeGate(GateType::kOr, za, zc);
    const Signal any_inf = b.MakeGate(GateType::kOr, FIsInf(b, fmt, x),
                                      FIsInf(b, fmt, y));
    // 0 * inf: zero wins (documented).
    const Signal force_inf = b.MakeGate(GateType::kAndNY, any_zero, any_inf);
    return ClampAndPack(b, fmt, sign, exp_w, mant_out, any_zero, force_inf);
}

Bits FDiv(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    const int32_t m = fmt.m;
    const FloatParts a = FUnpack(fmt, x);
    const FloatParts c = FUnpack(fmt, y);
    const Signal za = FIsZero(b, fmt, x);
    const Signal zc = FIsZero(b, fmt, y);
    const Signal sign = b.MakeGate(GateType::kXor, a.sign, c.sign);

    // Quotient of full mantissas, scaled by 2^(m+2).
    const int32_t qw = 2 * m + 3;
    const Bits num = ShlConst(
        b, ZeroExtend(b, FullMantissa(b, fmt, a, za), qw), m + 2);
    const Bits den = ZeroExtend(b, FullMantissa(b, fmt, c, zc), qw);
    const Bits quot = UDivMod(b, num, den).first;

    // Ratio in (1/2, 2): bit m+2 set means ratio >= 1.
    const Signal top = quot[m + 2];
    const Bits mant_hi = quot.Slice(2, m);
    const Bits mant_lo = quot.Slice(1, m);
    const Bits mant_out = MuxBits(b, top, mant_hi, mant_lo);

    // exp = exp_a - exp_c + bias - (top ? 0 : 1).
    const int32_t we = fmt.e + 2;
    Bits exp_w = Sub(b, ZeroExtend(b, a.exp, we), ZeroExtend(b, c.exp, we));
    exp_w = Add(b, exp_w, ConstBits(b, fmt.Bias(), we));
    exp_w = Sub(b, exp_w, ZeroExtend(b, Bits({b.MakeNot(top)}), we));

    const Signal inf_a = FIsInf(b, fmt, x);
    const Signal inf_c = FIsInf(b, fmt, y);
    // x/0 and inf/y give infinity; 0/y and x/inf give zero; zero dividend
    // wins over zero divisor (0/0 -> documented as +inf via div-by-zero?
    // No: za forces zero first, so 0/0 -> 0 with force_zero; acceptable).
    const Signal force_zero = b.MakeGate(GateType::kOr, za, inf_c);
    const Signal force_inf = b.MakeGate(
        GateType::kAndNY, force_zero, b.MakeGate(GateType::kOr, zc, inf_a));
    return ClampAndPack(b, fmt, sign, exp_w, mant_out, force_zero, force_inf);
}

Bits FNeg(Builder& b, const FloatFmt& fmt, const Bits& x) {
    Bits out = x;
    out.bits.back() = b.MakeNot(x.Msb());
    (void)fmt;
    return out;
}

Bits FAbs(Builder& b, const FloatFmt& fmt, const Bits& x) {
    Bits out = x;
    out.bits.back() = b.MakeConst(false);
    (void)fmt;
    return out;
}

Signal FLt(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    const FloatParts a = FUnpack(fmt, x);
    const FloatParts c = FUnpack(fmt, y);
    const Signal za = FIsZero(b, fmt, x);
    const Signal zc = FIsZero(b, fmt, y);
    const Signal both_zero = b.MakeGate(GateType::kAnd, za, zc);

    Bits mag_a = a.mant;
    mag_a.bits.insert(mag_a.bits.end(), a.exp.bits.begin(), a.exp.bits.end());
    Bits mag_c = c.mant;
    mag_c.bits.insert(mag_c.bits.end(), c.exp.bits.begin(), c.exp.bits.end());
    const Signal lt_mag = Ult(b, mag_a, mag_c);
    const Signal gt_mag = Ult(b, mag_c, mag_a);

    const Signal diff_sign = b.MakeGate(GateType::kXor, a.sign, c.sign);
    // Same sign: negative operands compare reversed.
    const Signal same_sign_lt = b.MakeMux(a.sign, gt_mag, lt_mag);
    // Different sign: x < y iff x is the negative one.
    const Signal lt = b.MakeMux(diff_sign, a.sign, same_sign_lt);
    return b.MakeGate(GateType::kAndNY, both_zero, lt);
}

Signal FLe(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    return b.MakeNot(FLt(b, fmt, y, x));
}

Signal FEq(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    const Signal bits_eq = Eq(b, x, y);
    const Signal both_zero = b.MakeGate(GateType::kAnd, FIsZero(b, fmt, x),
                                        FIsZero(b, fmt, y));
    return b.MakeGate(GateType::kOr, bits_eq, both_zero);
}

Bits FRelu(Builder& b, const FloatFmt& fmt, const Bits& x) {
    // Negative (sign bit set) maps to +0; everything else passes through.
    return MuxBits(b, x.Msb(), FZero(b, fmt), x);
}

Bits FMax(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    return MuxBits(b, FLt(b, fmt, x, y), y, x);
}

Bits FMin(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y) {
    return MuxBits(b, FLt(b, fmt, x, y), x, y);
}

}  // namespace pytfhe::hdl
