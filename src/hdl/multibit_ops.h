/**
 * @file
 * Multi-bit (LUT) word generators: arithmetic built from weighted
 * programmable bootstraps instead of boolean gate bootstraps.
 *
 * Under message modulus p = 16 a single bootstrap can evaluate any
 * function of a weighted sum m = sum_i w_i * v_i of up to kMaxLutArity
 * operand digits (see circuit::LutSpec, tfhe/multibit.h). The generators
 * here exploit that to collapse whole sub-circuits into one bootstrap
 * each:
 *
 *  - MultibitAdd packs three result columns per LUT block,
 *    m = (x_i + y_i) + 2(x_{i+1} + y_{i+1}) + 4(x_{i+2} + y_{i+2}) + c,
 *    so an 8-bit ripple adder costs 10 bootstraps instead of 34.
 *  - MultibitUlt fuses the two low bit-pairs into one LUT4 and walks the
 *    remaining bits with one less-than chain LUT3 each: 7 bootstraps
 *    for 8 bits instead of 32.
 *  - MultibitEq checks two bit positions per LUT4 (weights 1,1,3,3 give
 *    independent base-3 digits) and AND-reduces the verdicts with
 *    counting LUTs: 5 bootstraps for 8 bits.
 *  - MultibitUMul counts partial products two at a time into 2-bit
 *    column digits and resolves each output column with counting LUTs
 *    (all weights 1), ~83 bootstraps for an 8x8->16 multiply instead
 *    of 320.
 *
 * Every generator degrades to its boolean word_ops counterpart when the
 * supplied MultibitPlan does not fit — wrong modulus, or a parameter
 * set whose noise budget (tfhe::CheckMultibitParams) cannot carry the
 * generator's heaviest weighted sum. Multibit netlists are homogeneous
 * (Netlist::Validate rejects classic gates once a message modulus is
 * set), so resolve ONE plan per module, sized for the heaviest
 * generator the module uses, and let the whole module fall back
 * together: kMultibitMaxWeightSq covers them all.
 */
#ifndef PYTFHE_HDL_MULTIBIT_OPS_H
#define PYTFHE_HDL_MULTIBIT_OPS_H

#include "hdl/bits.h"

namespace pytfhe::hdl {

/**
 * The resolved multibit decision for one module under construction.
 * `p` is the message modulus (the generators require 16; anything else
 * falls back to boolean). `weight_budget` is the largest sum of squared
 * operand weights the chosen parameter set sustains within the gate
 * failure bound — tfhe::MaxMultibitWeightBudget computes it. A
 * default-constructed plan is disabled, so callers without a parameter
 * set in hand get the boolean circuit.
 */
struct MultibitPlan {
    int32_t p = 0;
    int64_t weight_budget = 0;

    bool Enabled() const { return p == 16; }
    /** True when a LUT with sum w_i^2 == weight_sq stays inside budget. */
    bool Fits(int64_t weight_sq) const {
        return Enabled() && weight_sq <= weight_budget;
    }
};

/** Heaviest sum w_i^2 each generator emits (the plan must cover it). */
constexpr int64_t kMultibitAddWeightSq = 43;  ///< Block (1,1,2,2,4,4)+carry.
constexpr int64_t kMultibitUltWeightSq = 85;  ///< Fused low LUT4 (1,2,4,8).
constexpr int64_t kMultibitEqWeightSq = 20;   ///< Pair LUT4 (1,1,3,3).
constexpr int64_t kMultibitMulWeightSq = 20;  ///< Pair-count LUT4 (1,1,3,3).
/** Heaviest LUT any generator emits; sizes a plan covering all of them. */
constexpr int64_t kMultibitMaxWeightSq = 85;

/**
 * x + y modulo 2^width via 3-column LUT blocks (4 bootstraps per 3 result
 * bits). Widths may differ; the result has the wider operand's width.
 * Falls back to Add when the plan does not fit kMultibitAddWeightSq.
 */
Bits MultibitAdd(Builder& b, const MultibitPlan& plan, const Bits& x,
                 const Bits& y);

/**
 * Unsigned x < y (equal widths) via a fused low-pair LUT4 plus one chain
 * LUT3 per remaining bit. Falls back to Ult below kMultibitUltWeightSq.
 */
Signal MultibitUlt(Builder& b, const MultibitPlan& plan, const Bits& x,
                   const Bits& y);

/**
 * x == y (equal widths) via two-position equality LUT4s and counting
 * AND-reduction LUTs. Falls back to Eq below kMultibitEqWeightSq.
 */
Signal MultibitEq(Builder& b, const MultibitPlan& plan, const Bits& x,
                  const Bits& y);

/**
 * Low out_width bits of x * y via column compression: partial products
 * are counted two at a time into 2-bit digits (one LUT4 per pair), then
 * every output column is resolved by counting LUTs over its digits and
 * incoming carry bits, all with weight 1. Falls back to UMul below
 * kMultibitMulWeightSq.
 */
Bits MultibitUMul(Builder& b, const MultibitPlan& plan, const Bits& x,
                  const Bits& y, int32_t out_width);

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_MULTIBIT_OPS_H
