/**
 * @file
 * Typed scalar values: a bit vector tagged with a DType, plus arithmetic
 * that dispatches to the right generator (integer, fixed-point, or float).
 *
 * This is the scalar layer the tensor library is built on: a nn::Tensor is
 * a shape plus a flat vector of hdl::Value.
 */
#ifndef PYTFHE_HDL_VALUE_H
#define PYTFHE_HDL_VALUE_H

#include "hdl/dtype.h"
#include "hdl/float_ops.h"
#include "hdl/word_ops.h"

namespace pytfhe::hdl {

/** A typed word under construction. */
struct Value {
    DType dtype = DType::SInt(8);
    Bits bits;

    int32_t Width() const { return bits.Width(); }
};

/** Declares an encrypted input value. */
Value InputValue(Builder& b, const DType& t, const std::string& name);

/** Embeds a plaintext constant (quantized to the dtype). */
Value ConstValue(Builder& b, const DType& t, double value);

/** Registers the value's bits as outputs. */
void OutputValue(Builder& b, const Value& v, const std::string& name);

/** Arithmetic; operands must share a dtype. */
Value VAdd(Builder& b, const Value& x, const Value& y);
Value VSub(Builder& b, const Value& x, const Value& y);
Value VMul(Builder& b, const Value& x, const Value& y);
Value VDiv(Builder& b, const Value& x, const Value& y);
Value VNeg(Builder& b, const Value& x);

/** Comparisons. */
Signal VLt(Builder& b, const Value& x, const Value& y);
Signal VLe(Builder& b, const Value& x, const Value& y);
Signal VGt(Builder& b, const Value& x, const Value& y);
Signal VGe(Builder& b, const Value& x, const Value& y);
Signal VEq(Builder& b, const Value& x, const Value& y);
Signal VNe(Builder& b, const Value& x, const Value& y);

/** sel ? x : y. */
Value VMux(Builder& b, Signal sel, const Value& x, const Value& y);

/** max(0, x). */
Value VRelu(Builder& b, const Value& x);
Value VMax(Builder& b, const Value& x, const Value& y);
Value VMin(Builder& b, const Value& x, const Value& y);

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_VALUE_H
