/**
 * @file
 * The 128-bit PyTFHE instruction encoding (Fig. 5 of the paper).
 *
 * Bit layout (bit 0 = least significant):
 *   [3:0]    gate type (4 bits; eleven gate types are defined)
 *   [65:4]   INPUT1 gate index (62 bits)
 *   [127:66] INPUT0 gate index (62 bits)
 *
 * Four instruction kinds:
 *   header  — always the first instruction; the INPUT1 field holds the total
 *             number of gate instructions, the INPUT0 field the format
 *             version (0 = legacy all-bootstrapped programs, 1 = may
 *             contain the linear kLinXor/kLinXnor/kLinNot opcodes), the
 *             type field is zero.
 *   input   — reserves the next sequential index for a primary input; all
 *             fields are all-ones (0x3FFF..., 0x3FFF..., 0xF).
 *   gate    — INPUT0/INPUT1 hold the producing indices; type holds the gate.
 *   output  — INPUT0 all-ones, INPUT1 the index that produced this output,
 *             type = 0x3.
 *
 * Indices name instructions by file position: the header is index 0, the
 * first input is index 1, and so on. This sequential naming permits O(1)
 * operand lookup during DAG traversal, which is what makes the binary format
 * fast to execute.
 */
#ifndef PYTFHE_PASM_INSTRUCTION_H
#define PYTFHE_PASM_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "circuit/gate_type.h"

namespace pytfhe::pasm {

/** All-ones 62-bit index; reserved, never a valid instruction index. */
constexpr uint64_t kIndexAllOnes = (UINT64_C(1) << 62) - 1;
/** Largest representable index (2^62 gates, minus the reserved value). */
constexpr uint64_t kMaxIndex = kIndexAllOnes - 1;

/** Type-field values for non-gate instructions. */
constexpr uint8_t kHeaderType = 0x0;
constexpr uint8_t kInputType = 0xF;
constexpr uint8_t kOutputType = 0x3;
/**
 * Wide-trailer records (format version >= 2). 0xE is the one nibble the
 * 14 gate types and the input marker leave free, so wide records are
 * unambiguous at any position. A wide group is encoded after the outputs
 * as one *leader* (INPUT0 all-ones, INPUT1 = member count >= 2) followed
 * by ceil(count / 2) *member* records, each naming two gate instruction
 * indices (INPUT0, INPUT1; the final record pads INPUT1 with all-ones
 * when the count is odd).
 */
constexpr uint8_t kWideType = 0xE;

/**
 * Program format versions, carried in the header's INPUT0 field (which
 * older writers always emitted as zero, making version 0 backward
 * compatible by construction).
 */
constexpr uint64_t kFormatVersionLegacy = 0;  ///< Bootstrapped gates only.
constexpr uint64_t kFormatVersionLinear = 1;  ///< May contain kLin* gates.
/** May additionally carry a wide-group trailer after the outputs. */
constexpr uint64_t kFormatVersionWide = 2;
/**
 * May additionally carry a memory-plan section at the very end of the
 * file (after the wide trailer, if any). The section reuses the 0xE
 * record nibble and consists of:
 *   sentinel   — INPUT0 and INPUT1 both all-ones. A wide *leader* always
 *                declares a member count in [2, num_gates], so the
 *                sentinel is unambiguous.
 *   plan head  — INPUT0 = number of physical slots, INPUT1 = flag bits
 *                (bit 0: the plan respects wave-level boundaries and is
 *                safe for barrier-scheduled threaded execution).
 *   slot pairs — ceil(num_values / 2) records assigning physical slots
 *                to values 1..num_inputs+num_gates in index order, two
 *                per record (INPUT0 = first, INPUT1 = second; the final
 *                record pads INPUT1 with all-ones when the value count
 *                is odd).
 * Older versions load with the identity plan (slot i = value i).
 */
constexpr uint64_t kFormatVersionPlanned = 3;
/**
 * Multibit (programmable-bootstrap) programs. The header's INPUT0 field
 * becomes `version | message_modulus << 8` (older writers left those
 * bits zero, so versions 0-3 decode unchanged), and the 0xE nibble gains
 * two more record shapes, disambiguated purely by position:
 *
 *   LUT gate     — appears in the gate section. INPUT0 packs the
 *                  LutSpec: bits [31:0] the table, [35:32] the operand
 *                  count (1..8), [37:36] out_bits - 1, [47:38] lo + 512.
 *                  INPUT1 is the gate's offset into the operand table.
 *   operand head — the first record after the outputs: INPUT0 all-ones,
 *                  INPUT1 the total operand-entry count (never all-ones,
 *                  so it cannot be mistaken for the plan sentinel).
 *   operand pair — two packed entries per record, each
 *                  `index | (weight + 128) << 54` (the final record pads
 *                  with all-ones when the count is odd). A gate's entries
 *                  are sorted by producing index, strictly ascending.
 *
 * Multibit programs are homogeneous: every gate is a LUT record (the
 * classic nibbles never appear), there is no wide trailer, and the
 * operand table is always present — the plan section, if any, follows
 * it. GateType::kLut == 0xE by design, so GateAt() on a LUT record
 * reports kLut; decode the rest through Program::LutAt().
 */
constexpr uint64_t kFormatVersionMultibit = 4;
constexpr uint64_t kMaxFormatVersion = kFormatVersionMultibit;

/** Bit position of the weight byte in a packed LUT operand entry. */
constexpr uint32_t kLutOperandIndexBits = 54;
/** Mask of the producing-index bits of a packed LUT operand entry. */
constexpr uint64_t kLutOperandIndexMask =
    (UINT64_C(1) << kLutOperandIndexBits) - 1;

/** Flag bits carried in the plan head's INPUT1 field. */
constexpr uint64_t kPlanFlagLevelSafe = 1;

/** What an instruction is. */
enum class InstructionKind : uint8_t {
    kHeader,
    kInput,
    kGate,
    kOutput,
    kWide,  ///< Wide-group trailer record (leader or member pair).
};

/** One 128-bit instruction. */
struct Instruction {
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const Instruction&) const = default;

    uint8_t TypeField() const { return static_cast<uint8_t>(lo & 0xF); }
    uint64_t Input1() const {
        return ((lo >> 4) | (hi << 60)) & kIndexAllOnes;
    }
    uint64_t Input0() const { return (hi >> 2) & kIndexAllOnes; }

    /** Classifies the instruction. `position` is its index in the program. */
    InstructionKind Kind(uint64_t position) const;

    /** Human-readable one-line disassembly. */
    std::string ToString(uint64_t position) const;

    static Instruction MakeHeader(uint64_t total_gates,
                                  uint64_t version = kFormatVersionLegacy);
    static Instruction MakeInput();
    static Instruction MakeGate(circuit::GateType type, uint64_t in0,
                                uint64_t in1);
    static Instruction MakeOutput(uint64_t producer_index);
    /** Wide-group leader: declares a group of `member_count` gates. */
    static Instruction MakeWideLeader(uint64_t member_count);
    /** Wide-group member pair; pass kIndexAllOnes for a trailing pad. */
    static Instruction MakeWideMembers(uint64_t m0,
                                       uint64_t m1 = kIndexAllOnes);
    /**
     * Multibit LUT gate record (version >= 4): the packed LutSpec plus
     * the gate's offset into the operand table. `out_bits` is 1 or 2;
     * `lo` must lie in [-512, 511] (domain <= modulus <= 16 guarantees
     * lo in [-15, 0] for any valid spec).
     */
    static Instruction MakeLutGate(uint32_t table, uint32_t arity,
                                   uint32_t out_bits, int32_t lo,
                                   uint64_t operand_offset);
    /** Operand-table head: total packed entry count across all gates. */
    static Instruction MakeLutOperandsHead(uint64_t entry_count);
    /** Two packed operand entries; pass kIndexAllOnes for a pad. */
    static Instruction MakeLutOperandPair(uint64_t e0,
                                          uint64_t e1 = kIndexAllOnes);
    /** Packs one operand entry: producing index plus biased weight. */
    static uint64_t PackLutOperand(uint64_t index, int8_t weight) {
        return (index & kLutOperandIndexMask) |
               (static_cast<uint64_t>(
                    static_cast<uint8_t>(static_cast<int32_t>(weight) + 128))
                << kLutOperandIndexBits);
    }
    /** Memory-plan sentinel: both index fields all-ones (version >= 3). */
    static Instruction MakePlanSentinel();
    /** Memory-plan head: slot count plus flag bits. */
    static Instruction MakePlanHead(uint64_t num_slots, uint64_t flags);
    /** Two slot assignments; pass kIndexAllOnes for a trailing pad. */
    static Instruction MakePlanSlots(uint64_t s0,
                                     uint64_t s1 = kIndexAllOnes);

  private:
    static Instruction Pack(uint64_t in0, uint64_t in1, uint8_t type);
};

}  // namespace pytfhe::pasm

#endif  // PYTFHE_PASM_INSTRUCTION_H
