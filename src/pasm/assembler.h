/**
 * @file
 * The PyTFHE Assembler: converts a gate netlist to/from the binary format.
 *
 * Assembly requires a constant-free netlist (run circuit::Optimize first;
 * it folds constants away). Inputs are assigned indices 1..I in declaration
 * order; gates are assigned I+1.. in topological (creation) order; one
 * output instruction is appended per declared output.
 */
#ifndef PYTFHE_PASM_ASSEMBLER_H
#define PYTFHE_PASM_ASSEMBLER_H

#include <optional>
#include <string>

#include "circuit/netlist.h"
#include "pasm/program.h"

namespace pytfhe::pasm {

/**
 * Assembles a netlist into a PyTFHE binary. Returns nullopt and fills
 * `error` if the netlist still references constants or fails validation.
 */
std::optional<Program> Assemble(const circuit::Netlist& netlist,
                                std::string* error = nullptr);

/**
 * Reconstructs a netlist from a program (the disassembler's structural
 * half). Names are synthesized. Round-tripping Assemble(Disassemble(p))
 * reproduces p exactly; tests rely on this.
 */
circuit::Netlist ToNetlist(const Program& program);

}  // namespace pytfhe::pasm

#endif  // PYTFHE_PASM_ASSEMBLER_H
