#include "pasm/assembler.h"

#include <algorithm>
#include <utility>

namespace pytfhe::pasm {

using circuit::Netlist;
using circuit::Node;
using circuit::NodeId;
using circuit::NodeKind;

std::optional<Program> Assemble(const Netlist& netlist, std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }
    const bool multibit = netlist.MessageModulus() != 0;

    // Constant outputs are synthesized over the first input — the binary
    // format has no constant instruction. Boolean programs use XOR(x,x) /
    // XNOR(x,x); multibit programs (which carry only LUT gates) use an
    // arity-1 LUT with a constant table.
    bool needs_const0 = false, needs_const1 = false;
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) needs_const0 = true;
        if (id == circuit::kConstTrue) needs_const1 = true;
    }
    if ((needs_const0 || needs_const1) && netlist.Inputs().empty()) {
        if (error)
            *error = "constant outputs need at least one input to synthesize";
        return std::nullopt;
    }
    const uint64_t extra_gates =
        (needs_const0 ? 1 : 0) + (needs_const1 ? 1 : 0);

    // Programs without linear gates or wide groups keep the legacy
    // (version 0) header, staying byte-identical to binaries from before
    // format versioning; wide groups force version 2 (which also covers
    // linear opcodes); a message modulus forces version 4.
    bool has_linear = false;
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind == NodeKind::kGate && circuit::IsLinearGate(n.type)) {
            has_linear = true;
            break;
        }
    }
    const bool has_wide = !netlist.WideGroups().empty();
    const uint64_t version = multibit      ? kFormatVersionMultibit
                             : has_wide    ? kFormatVersionWide
                             : has_linear  ? kFormatVersionLinear
                                           : kFormatVersionLegacy;
    const uint64_t header_field =
        version |
        (static_cast<uint64_t>(netlist.MessageModulus()) << 8);

    std::vector<Instruction> ins;
    ins.reserve(2 + netlist.NumNodes() + netlist.Outputs().size());
    ins.push_back(Instruction::MakeHeader(netlist.NumGates() + extra_gates,
                                          header_field));

    // Map netlist node ids to binary indices: inputs first, then gates in
    // creation (topological) order. LUT gates bank their packed operand
    // entries for the table emitted after the outputs.
    std::vector<uint64_t> index(netlist.NumNodes(), 0);
    std::vector<uint64_t> lut_entries;
    for (NodeId id : netlist.Inputs()) {
        index[id] = ins.size();
        ins.push_back(Instruction::MakeInput());
    }
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind != NodeKind::kGate) continue;
        for (const NodeId op : netlist.Operands(id)) {
            if (op <= circuit::kConstTrue) {
                if (error)
                    *error =
                        "netlist references constants; run circuit::Optimize "
                        "before assembling";
                return std::nullopt;
            }
        }
        index[id] = ins.size();
        if (n.type == circuit::GateType::kLut) {
            const circuit::LutSpec& spec = netlist.Lut(id);
            // The format stores a gate's entries sorted by producing
            // index (instruction indices are monotone in node ids, so
            // sorting by either is equivalent).
            std::vector<std::pair<uint64_t, int8_t>> entries;
            entries.reserve(n.num_ops);
            for (uint16_t i = 0; i < n.num_ops; ++i)
                entries.emplace_back(index[netlist.Op(id, i)],
                                     spec.weights[i]);
            std::sort(entries.begin(), entries.end());
            for (size_t i = 1; i < entries.size(); ++i) {
                if (entries[i].first == entries[i - 1].first) {
                    if (error)
                        *error = "LUT gate " + std::to_string(id) +
                                 " repeats an operand; canonicalize through "
                                 "Builder::MakeLut before assembling";
                    return std::nullopt;
                }
            }
            const uint64_t offset = lut_entries.size();
            for (const auto& [in, w] : entries)
                lut_entries.push_back(Instruction::PackLutOperand(in, w));
            ins.push_back(Instruction::MakeLutGate(spec.table, n.num_ops,
                                                   spec.out_bits, spec.lo,
                                                   offset));
        } else {
            ins.push_back(Instruction::MakeGate(n.type,
                                                index[netlist.Op(id, 0)],
                                                index[netlist.Op(id, 1)]));
        }
    }
    uint64_t const0_idx = 0, const1_idx = 0;
    const auto synth_const = [&](bool value) {
        const uint64_t first_in = index[netlist.Inputs()[0]];
        const uint64_t idx = ins.size();
        if (multibit) {
            const uint64_t offset = lut_entries.size();
            lut_entries.push_back(Instruction::PackLutOperand(first_in, 1));
            ins.push_back(Instruction::MakeLutGate(value ? 0b11u : 0b00u,
                                                   /*arity=*/1,
                                                   /*out_bits=*/1, /*lo=*/0,
                                                   offset));
        } else {
            ins.push_back(Instruction::MakeGate(
                value ? circuit::GateType::kXnor : circuit::GateType::kXor,
                first_in, first_in));
        }
        return idx;
    };
    if (needs_const0) const0_idx = synth_const(false);
    if (needs_const1) const1_idx = synth_const(true);
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) {
            ins.push_back(Instruction::MakeOutput(const0_idx));
        } else if (id == circuit::kConstTrue) {
            ins.push_back(Instruction::MakeOutput(const1_idx));
        } else {
            ins.push_back(Instruction::MakeOutput(index[id]));
        }
    }
    // LUT operand table (version 4): mandatory head, then two packed
    // entries per record.
    if (multibit) {
        ins.push_back(Instruction::MakeLutOperandsHead(lut_entries.size()));
        for (size_t i = 0; i < lut_entries.size(); i += 2)
            ins.push_back(Instruction::MakeLutOperandPair(
                lut_entries[i], i + 1 < lut_entries.size()
                                    ? lut_entries[i + 1]
                                    : kIndexAllOnes));
    }
    // Wide-group trailer: one leader plus ceil(n/2) member-pair records
    // per group, members remapped to instruction indices.
    for (const auto& group : netlist.WideGroups()) {
        ins.push_back(Instruction::MakeWideLeader(group.size()));
        for (size_t i = 0; i < group.size(); i += 2) {
            const uint64_t m0 = index[group[i]];
            const uint64_t m1 =
                i + 1 < group.size() ? index[group[i + 1]] : kIndexAllOnes;
            ins.push_back(Instruction::MakeWideMembers(m0, m1));
        }
    }
    return Program::FromInstructions(std::move(ins), error);
}

Netlist ToNetlist(const Program& program) {
    Netlist out;
    if (program.MessageModulus() != 0)
        out.SetMessageModulus(program.MessageModulus());
    const auto& ins = program.Instructions();
    // index in binary -> node id in netlist.
    std::vector<NodeId> node(ins.size(), circuit::kConstFalse);
    for (uint64_t pos = 1; pos < ins.size(); ++pos) {
        switch (ins[pos].Kind(pos)) {
            case InstructionKind::kInput:
                node[pos] = out.AddInput();
                break;
            case InstructionKind::kGate: {
                const DecodedGate g = program.GateAt(pos);
                node[pos] = out.AddGate(g.type, node[g.in0], node[g.in1]);
                break;
            }
            case InstructionKind::kOutput:
                out.AddOutput(node[ins[pos].Input1()]);
                break;
            case InstructionKind::kHeader:
                break;
            case InstructionKind::kWide:
                // LUT gates classify as kWide (they share the 0xE
                // nibble); operand-table / trailer records are skipped —
                // wide groups are reconstructed from WideOps() below.
                if (program.IsLutGate(pos)) {
                    const DecodedLut l = program.LutAt(pos);
                    circuit::LutSpec spec;
                    spec.lo = l.lo;
                    spec.table = l.table;
                    spec.out_bits = l.out_bits;
                    std::vector<NodeId> ops;
                    ops.reserve(l.operands.size());
                    for (const auto& [in, w] : l.operands) {
                        spec.weights.push_back(w);
                        ops.push_back(node[in]);
                    }
                    node[pos] = out.AddLut(std::move(spec), ops);
                }
                break;
        }
    }
    for (const auto& w : program.WideOps()) {
        std::vector<NodeId> members;
        members.reserve(w.members.size());
        for (uint64_t idx : w.members) members.push_back(node[idx]);
        out.AddWideGroup(std::move(members));
    }
    return out;
}

}  // namespace pytfhe::pasm
