#include "pasm/assembler.h"

namespace pytfhe::pasm {

using circuit::Netlist;
using circuit::Node;
using circuit::NodeId;
using circuit::NodeKind;

std::optional<Program> Assemble(const Netlist& netlist, std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }

    // Constant outputs are synthesized as XOR(x,x) / XNOR(x,x) over the
    // first input — the binary format has no constant instruction.
    bool needs_const0 = false, needs_const1 = false;
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) needs_const0 = true;
        if (id == circuit::kConstTrue) needs_const1 = true;
    }
    if ((needs_const0 || needs_const1) && netlist.Inputs().empty()) {
        if (error)
            *error = "constant outputs need at least one input to synthesize";
        return std::nullopt;
    }
    const uint64_t extra_gates =
        (needs_const0 ? 1 : 0) + (needs_const1 ? 1 : 0);

    // Programs without linear gates keep the legacy (version 0) header,
    // staying byte-identical to binaries from before format versioning.
    bool has_linear = false;
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind == NodeKind::kGate && circuit::IsLinearGate(n.type)) {
            has_linear = true;
            break;
        }
    }

    std::vector<Instruction> ins;
    ins.reserve(2 + netlist.NumNodes() + netlist.Outputs().size());
    ins.push_back(Instruction::MakeHeader(
        netlist.NumGates() + extra_gates,
        has_linear ? kFormatVersionLinear : kFormatVersionLegacy));

    // Map netlist node ids to binary indices: inputs first, then gates in
    // creation (topological) order.
    std::vector<uint64_t> index(netlist.NumNodes(), 0);
    for (NodeId id : netlist.Inputs()) {
        index[id] = ins.size();
        ins.push_back(Instruction::MakeInput());
    }
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind != NodeKind::kGate) continue;
        if (n.in0 <= circuit::kConstTrue || n.in1 <= circuit::kConstTrue) {
            if (error)
                *error = "netlist references constants; run circuit::Optimize "
                         "before assembling";
            return std::nullopt;
        }
        index[id] = ins.size();
        ins.push_back(
            Instruction::MakeGate(n.type, index[n.in0], index[n.in1]));
    }
    uint64_t const0_idx = 0, const1_idx = 0;
    if (needs_const0) {
        const uint64_t first_in = index[netlist.Inputs()[0]];
        const0_idx = ins.size();
        ins.push_back(
            Instruction::MakeGate(circuit::GateType::kXor, first_in, first_in));
    }
    if (needs_const1) {
        const uint64_t first_in = index[netlist.Inputs()[0]];
        const1_idx = ins.size();
        ins.push_back(Instruction::MakeGate(circuit::GateType::kXnor, first_in,
                                            first_in));
    }
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) {
            ins.push_back(Instruction::MakeOutput(const0_idx));
        } else if (id == circuit::kConstTrue) {
            ins.push_back(Instruction::MakeOutput(const1_idx));
        } else {
            ins.push_back(Instruction::MakeOutput(index[id]));
        }
    }
    return Program::FromInstructions(std::move(ins), error);
}

Netlist ToNetlist(const Program& program) {
    Netlist out;
    const auto& ins = program.Instructions();
    // index in binary -> node id in netlist.
    std::vector<NodeId> node(ins.size(), circuit::kConstFalse);
    for (uint64_t pos = 1; pos < ins.size(); ++pos) {
        switch (ins[pos].Kind(pos)) {
            case InstructionKind::kInput:
                node[pos] = out.AddInput();
                break;
            case InstructionKind::kGate: {
                const DecodedGate g = program.GateAt(pos);
                node[pos] = out.AddGate(g.type, node[g.in0], node[g.in1]);
                break;
            }
            case InstructionKind::kOutput:
                out.AddOutput(node[ins[pos].Input1()]);
                break;
            case InstructionKind::kHeader:
                break;
        }
    }
    return out;
}

}  // namespace pytfhe::pasm
