#include "pasm/assembler.h"

namespace pytfhe::pasm {

using circuit::Netlist;
using circuit::Node;
using circuit::NodeId;
using circuit::NodeKind;

std::optional<Program> Assemble(const Netlist& netlist, std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }

    // Constant outputs are synthesized as XOR(x,x) / XNOR(x,x) over the
    // first input — the binary format has no constant instruction.
    bool needs_const0 = false, needs_const1 = false;
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) needs_const0 = true;
        if (id == circuit::kConstTrue) needs_const1 = true;
    }
    if ((needs_const0 || needs_const1) && netlist.Inputs().empty()) {
        if (error)
            *error = "constant outputs need at least one input to synthesize";
        return std::nullopt;
    }
    const uint64_t extra_gates =
        (needs_const0 ? 1 : 0) + (needs_const1 ? 1 : 0);

    // Programs without linear gates or wide groups keep the legacy
    // (version 0) header, staying byte-identical to binaries from before
    // format versioning; wide groups force version 2 (which also covers
    // linear opcodes).
    bool has_linear = false;
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind == NodeKind::kGate && circuit::IsLinearGate(n.type)) {
            has_linear = true;
            break;
        }
    }
    const bool has_wide = !netlist.WideGroups().empty();
    const uint64_t version = has_wide ? kFormatVersionWide
                             : has_linear ? kFormatVersionLinear
                                          : kFormatVersionLegacy;

    std::vector<Instruction> ins;
    ins.reserve(2 + netlist.NumNodes() + netlist.Outputs().size());
    ins.push_back(
        Instruction::MakeHeader(netlist.NumGates() + extra_gates, version));

    // Map netlist node ids to binary indices: inputs first, then gates in
    // creation (topological) order.
    std::vector<uint64_t> index(netlist.NumNodes(), 0);
    for (NodeId id : netlist.Inputs()) {
        index[id] = ins.size();
        ins.push_back(Instruction::MakeInput());
    }
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind != NodeKind::kGate) continue;
        if (n.in0 <= circuit::kConstTrue || n.in1 <= circuit::kConstTrue) {
            if (error)
                *error = "netlist references constants; run circuit::Optimize "
                         "before assembling";
            return std::nullopt;
        }
        index[id] = ins.size();
        ins.push_back(
            Instruction::MakeGate(n.type, index[n.in0], index[n.in1]));
    }
    uint64_t const0_idx = 0, const1_idx = 0;
    if (needs_const0) {
        const uint64_t first_in = index[netlist.Inputs()[0]];
        const0_idx = ins.size();
        ins.push_back(
            Instruction::MakeGate(circuit::GateType::kXor, first_in, first_in));
    }
    if (needs_const1) {
        const uint64_t first_in = index[netlist.Inputs()[0]];
        const1_idx = ins.size();
        ins.push_back(Instruction::MakeGate(circuit::GateType::kXnor, first_in,
                                            first_in));
    }
    for (NodeId id : netlist.Outputs()) {
        if (id == circuit::kConstFalse) {
            ins.push_back(Instruction::MakeOutput(const0_idx));
        } else if (id == circuit::kConstTrue) {
            ins.push_back(Instruction::MakeOutput(const1_idx));
        } else {
            ins.push_back(Instruction::MakeOutput(index[id]));
        }
    }
    // Wide-group trailer: one leader plus ceil(n/2) member-pair records
    // per group, members remapped to instruction indices.
    for (const auto& group : netlist.WideGroups()) {
        ins.push_back(Instruction::MakeWideLeader(group.size()));
        for (size_t i = 0; i < group.size(); i += 2) {
            const uint64_t m0 = index[group[i]];
            const uint64_t m1 =
                i + 1 < group.size() ? index[group[i + 1]] : kIndexAllOnes;
            ins.push_back(Instruction::MakeWideMembers(m0, m1));
        }
    }
    return Program::FromInstructions(std::move(ins), error);
}

Netlist ToNetlist(const Program& program) {
    Netlist out;
    const auto& ins = program.Instructions();
    // index in binary -> node id in netlist.
    std::vector<NodeId> node(ins.size(), circuit::kConstFalse);
    for (uint64_t pos = 1; pos < ins.size(); ++pos) {
        switch (ins[pos].Kind(pos)) {
            case InstructionKind::kInput:
                node[pos] = out.AddInput();
                break;
            case InstructionKind::kGate: {
                const DecodedGate g = program.GateAt(pos);
                node[pos] = out.AddGate(g.type, node[g.in0], node[g.in1]);
                break;
            }
            case InstructionKind::kOutput:
                out.AddOutput(node[ins[pos].Input1()]);
                break;
            case InstructionKind::kHeader:
            case InstructionKind::kWide:
                break;  // Wide records are reconstructed from WideOps().
        }
    }
    for (const auto& w : program.WideOps()) {
        std::vector<NodeId> members;
        members.reserve(w.members.size());
        for (uint64_t idx : w.members) members.push_back(node[idx]);
        out.AddWideGroup(std::move(members));
    }
    return out;
}

}  // namespace pytfhe::pasm
