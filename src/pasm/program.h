/**
 * @file
 * A PyTFHE program: a validated sequence of 128-bit instructions plus a
 * decoded view that backends execute directly.
 *
 * The on-disk format is the raw instruction stream, little-endian, 16 bytes
 * per instruction, preceded by nothing — the header instruction *is* the
 * file header.
 */
#ifndef PYTFHE_PASM_PROGRAM_H
#define PYTFHE_PASM_PROGRAM_H

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pasm/instruction.h"

namespace pytfhe::pasm {

/**
 * Decoded gate record, indexed the same way as the instruction stream.
 * For multibit LUT gates (format version >= 4) `type` is kLut but the
 * operand fields are the packed record, not indices — branch on
 * Program::IsLutGate() and decode through LutAt() instead.
 */
struct DecodedGate {
    circuit::GateType type;
    uint64_t in0;
    uint64_t in1;
};

/** One decoded kLut gate's stored form (format version >= 4). */
struct LutRecord {
    uint64_t first_op = 0;  ///< Offset into the program's operand table.
    uint32_t table = 0;     ///< Packed out_bits-wide entries.
    int32_t lo = 0;         ///< Minimum reachable weighted sum.
    uint8_t arity = 0;      ///< Operand count (1..8).
    uint8_t out_bits = 1;   ///< Output digit width (1 or 2).
};

/** Resolved view of one kLut gate: weighted operands plus the table. */
struct DecodedLut {
    /** (producing instruction index, weight), ascending by index. */
    std::span<const std::pair<uint64_t, int8_t>> operands;
    uint32_t table = 0;
    int32_t lo = 0;
    uint8_t out_bits = 1;
};

/**
 * One decoded wide group from the trailer (format version >= 2): >= 2
 * distinct gate instruction indices, all the same bootstrapped gate type,
 * declared by the frontend as batchable through one SoA bootstrap kernel
 * call. Membership is an explicit list, not a range — CSE and rewrites
 * break index contiguity long before assembly. Groups are scheduling
 * hints: every backend produces identical results with or without them.
 */
struct WideOp {
    std::vector<uint64_t> members;
};

/**
 * Dataflow view of a program's gate instructions: per-gate predecessor
 * counts plus CSR fan-out (successor) lists. This is what the
 * dependency-counting executor schedules on — a gate becomes ready when its
 * predecessor count reaches zero, and finishing it decrements each
 * successor's count.
 *
 * Counts and successor lists count input *slots*, not distinct producers:
 * a gate reading the same producer through both operands contributes two
 * decrements and appears twice in that producer's successor list, so the
 * arithmetic always balances.
 */
struct GateDependencies {
    /** Instruction index of the first gate; gate i lives at first_gate+i. */
    uint64_t first_gate = 0;
    /** Per gate: number of gate-typed operands (program inputs excluded). */
    std::vector<uint32_t> pred_count;
    /** CSR offsets into `successors`, one per gate plus a final sentinel. */
    std::vector<uint64_t> succ_offsets;
    /** Successor gate instruction indices, grouped by producing gate. */
    std::vector<uint64_t> successors;

    uint64_t NumGates() const { return pred_count.size(); }

    /** Number of gate consumers of the gate at instruction index `idx`. */
    uint64_t FanOut(uint64_t idx) const {
        const uint64_t g = idx - first_gate;
        return succ_offsets[g + 1] - succ_offsets[g];
    }

    /** Successor instruction indices of the gate at `idx`, as [begin,end). */
    std::pair<const uint64_t*, const uint64_t*> SuccessorsOf(
        uint64_t idx) const {
        const uint64_t g = idx - first_gate;
        return {successors.data() + succ_offsets[g],
                successors.data() + succ_offsets[g + 1]};
    }

    /** Instruction indices of gates with no gate predecessors (ready at
     * start). */
    std::vector<uint64_t> RootGates() const {
        std::vector<uint64_t> roots;
        for (uint64_t g = 0; g < pred_count.size(); ++g)
            if (pred_count[g] == 0) roots.push_back(first_gate + g);
        return roots;
    }
};

/**
 * Compile-time memory plan (format version >= 3): a mapping from values
 * (program inputs and gate results, named by instruction index) onto a
 * small set of physical ciphertext slots, computed by liveness analysis
 * over the static DAG. Backends that honor the plan bound peak memory per
 * job at O(max live ciphertexts) instead of O(gates).
 *
 * Safety contract, enforced on load:
 *  - two values may share a slot only if their live intervals do not
 *    overlap (a value lives from its defining instruction to its last
 *    reader, or to the end of the program when it is an output);
 *  - when `level_safe` is set, a slot freed by a value whose last reader
 *    runs at wave level L is only reassigned to a value defined at level
 *    >= L+1, which makes the plan safe for barrier-scheduled threaded
 *    execution (readers and the overwriting gate can never run in the
 *    same wave). Dependency-counting executors additionally need the
 *    anti-dependency edges from BuildGateDependencies(&plan).
 */
struct MemoryPlan {
    /**
     * Physical slot per instruction index; entries [1, NumInputs() +
     * NumGates()] are meaningful, entry 0 is unused and zero.
     */
    std::vector<uint64_t> slot_of;
    /** Number of physical slots; all slot_of entries are below this. */
    uint64_t num_slots = 0;
    /** Slot reuse respects wave-level boundaries (see above). */
    bool level_safe = false;
};

/** A validated PyTFHE binary. */
class Program {
  public:
    Program() = default;

    /**
     * Wraps and validates a raw instruction stream. Returns nullopt and
     * fills `error` (when non-null) on malformed input.
     */
    static std::optional<Program> FromInstructions(
        std::vector<Instruction> instructions, std::string* error = nullptr);

    const std::vector<Instruction>& Instructions() const {
        return instructions_;
    }

    /** Number of primary inputs. First input index is 1. */
    uint64_t NumInputs() const { return num_inputs_; }
    /** Number of gate instructions. First gate index is NumInputs() + 1. */
    uint64_t NumGates() const { return num_gates_; }
    /** Producing index for each declared output, in order. */
    const std::vector<uint64_t>& OutputIndices() const { return outputs_; }
    /** Decoded wide groups, in trailer order (empty before version 2). */
    const std::vector<WideOp>& WideOps() const { return wide_ops_; }

    /** Index of the first gate instruction. */
    uint64_t FirstGateIndex() const { return 1 + num_inputs_; }

    /**
     * Format version from the header: kFormatVersionLegacy for
     * all-bootstrapped programs (byte-identical to pre-versioning
     * binaries), kFormatVersionLinear when linear opcodes may appear,
     * kFormatVersionWide when a wide-group trailer may follow the
     * outputs.
     */
    uint64_t FormatVersion() const { return format_version_; }

    /**
     * True if the instruction at `idx` produces a linear-domain (+-1/4)
     * ciphertext: exactly the kLin* gates. Inputs and bootstrapped/NOT
     * gates produce the gate (+-1/8) encoding. Backends use this to pick
     * per-operand coefficients; it is static, derived from the opcode.
     */
    bool ProducesLinearDomain(uint64_t idx) const {
        if (idx < FirstGateIndex()) return false;  // Program input.
        return circuit::IsLinearGate(
            static_cast<circuit::GateType>(instructions_[idx].TypeField()));
    }

    /** Decoded gate at instruction index `idx` (idx >= FirstGateIndex()). */
    DecodedGate GateAt(uint64_t idx) const {
        const Instruction& i = instructions_[idx];
        return DecodedGate{static_cast<circuit::GateType>(i.TypeField()),
                           i.Input0(), i.Input1()};
    }

    /**
     * Message modulus p of a multibit program (format version >= 4);
     * 0 for boolean programs. Multibit programs are homogeneous: every
     * gate is a kLut record.
     */
    int32_t MessageModulus() const { return message_modulus_; }

    /** True when the gate at `idx` is a multibit LUT gate. */
    bool IsLutGate(uint64_t idx) const {
        return message_modulus_ != 0 && idx >= FirstGateIndex() &&
               idx < FirstGateIndex() + num_gates_;
    }

    /** Resolved LUT gate at `idx` (requires IsLutGate(idx)). */
    DecodedLut LutAt(uint64_t idx) const {
        const LutRecord& r = lut_records_[idx - FirstGateIndex()];
        return DecodedLut{
            std::span<const std::pair<uint64_t, int8_t>>(
                lut_operands_.data() + r.first_op, r.arity),
            r.table, r.lo, r.out_bits};
    }

    /**
     * Invokes fn(producer_index) for every operand slot of the gate at
     * `idx` — twice for a classic gate (even when both slots coincide,
     * matching the dependency-count arithmetic), once per weighted
     * operand for a LUT gate. The uniform traversal backends and
     * liveness analyses iterate with.
     */
    template <typename Fn>
    void ForEachOperand(uint64_t idx, Fn&& fn) const {
        if (IsLutGate(idx)) {
            const LutRecord& r = lut_records_[idx - FirstGateIndex()];
            for (uint32_t i = 0; i < r.arity; ++i)
                fn(lut_operands_[r.first_op + i].first);
        } else {
            const Instruction& ins = instructions_[idx];
            fn(ins.Input0());
            fn(ins.Input1());
        }
    }

    /**
     * Builds the predecessor-count / fan-out view of the gate DAG.
     * O(NumGates()) time and memory; recompute-per-run is cheap relative to
     * gate evaluation, so the result is not cached here.
     */
    GateDependencies BuildGateDependencies() const;

    /**
     * Plan-aware variant: in addition to the data edges, adds the
     * anti-dependency edges slot reuse induces — when value w overwrites
     * the slot last held by value v, every gate reading v must complete
     * before w executes (write-after-read), and a reader-less gate v must
     * itself complete first (write-after-write). Dependency-counting
     * executors schedule on these edges to make any valid plan safe under
     * concurrency; with a null plan this is identical to the overload
     * above.
     */
    GateDependencies BuildGateDependencies(const MemoryPlan* plan) const;

    /**
     * Memory plan carried by the binary (version >= 3), or nullptr.
     * Backends without plan support simply ignore it — execution results
     * are identical either way; only peak memory differs.
     */
    const MemoryPlan* Plan() const { return plan_ ? &*plan_ : nullptr; }

    /**
     * Returns a copy of this program carrying `plan` in a version-3 plan
     * section (replacing any existing plan). The plan is validated like
     * any other loaded plan; returns nullopt on an unsafe or malformed
     * plan. A program with no values is returned unchanged.
     */
    std::optional<Program> WithPlan(MemoryPlan plan,
                                    std::string* error = nullptr) const;

    /**
     * ASAP wave level per instruction index: inputs are level 0, a gate is
     * one past its deepest operand. Matches the wave partition the
     * barrier-scheduled backend executes (up to a constant offset), which
     * is what level-safe plans are validated against.
     */
    std::vector<uint64_t> ValueLevels() const;

    /** Serializes to a binary stream (16 bytes per instruction, LE). */
    void Serialize(std::ostream& os) const;
    /** Deserializes and validates. */
    static std::optional<Program> Deserialize(std::istream& is,
                                              std::string* error = nullptr);

    /** Convenience file wrappers. */
    bool SaveToFile(const std::string& path) const;
    static std::optional<Program> LoadFromFile(const std::string& path,
                                               std::string* error = nullptr);

    /** Full text disassembly. */
    std::string Disassemble() const;

    /** Size of the binary in bytes. */
    size_t ByteSize() const { return instructions_.size() * 16; }

  private:
    std::vector<Instruction> instructions_;
    uint64_t num_inputs_ = 0;
    uint64_t num_gates_ = 0;
    uint64_t format_version_ = kFormatVersionLegacy;
    int32_t message_modulus_ = 0;
    std::vector<uint64_t> outputs_;
    std::vector<WideOp> wide_ops_;
    /** Per-gate LUT records, dense: gate at idx is entry idx-first_gate. */
    std::vector<LutRecord> lut_records_;
    /** Pooled (producer index, weight) operand entries for all LUT gates. */
    std::vector<std::pair<uint64_t, int8_t>> lut_operands_;
    std::optional<MemoryPlan> plan_;
    /** Position of the plan sentinel record, 0 when there is no plan. */
    uint64_t plan_pos_ = 0;
};

}  // namespace pytfhe::pasm

#endif  // PYTFHE_PASM_PROGRAM_H
