#include "pasm/instruction.h"

#include <sstream>

namespace pytfhe::pasm {

Instruction Instruction::Pack(uint64_t in0, uint64_t in1, uint8_t type) {
    Instruction i;
    i.lo = (type & 0xF) | (in1 << 4);
    i.hi = ((in1 & kIndexAllOnes) >> 60) | ((in0 & kIndexAllOnes) << 2);
    return i;
}

Instruction Instruction::MakeHeader(uint64_t total_gates, uint64_t version) {
    return Pack(version, total_gates, kHeaderType);
}

Instruction Instruction::MakeInput() {
    return Pack(kIndexAllOnes, kIndexAllOnes, kInputType);
}

Instruction Instruction::MakeGate(circuit::GateType type, uint64_t in0,
                                  uint64_t in1) {
    return Pack(in0, in1, static_cast<uint8_t>(type));
}

Instruction Instruction::MakeOutput(uint64_t producer_index) {
    return Pack(kIndexAllOnes, producer_index, kOutputType);
}

Instruction Instruction::MakeWideLeader(uint64_t member_count) {
    return Pack(kIndexAllOnes, member_count, kWideType);
}

Instruction Instruction::MakeWideMembers(uint64_t m0, uint64_t m1) {
    return Pack(m0, m1, kWideType);
}

Instruction Instruction::MakeLutGate(uint32_t table, uint32_t arity,
                                     uint32_t out_bits, int32_t lo,
                                     uint64_t operand_offset) {
    const uint64_t spec =
        static_cast<uint64_t>(table) | (static_cast<uint64_t>(arity) << 32) |
        (static_cast<uint64_t>(out_bits - 1) << 36) |
        (static_cast<uint64_t>(static_cast<uint32_t>(lo + 512) & 0x3FF)
         << 38);
    return Pack(spec, operand_offset, kWideType);
}

Instruction Instruction::MakeLutOperandsHead(uint64_t entry_count) {
    return Pack(kIndexAllOnes, entry_count, kWideType);
}

Instruction Instruction::MakeLutOperandPair(uint64_t e0, uint64_t e1) {
    return Pack(e0, e1, kWideType);
}

Instruction Instruction::MakePlanSentinel() {
    return Pack(kIndexAllOnes, kIndexAllOnes, kWideType);
}

Instruction Instruction::MakePlanHead(uint64_t num_slots, uint64_t flags) {
    return Pack(num_slots, flags, kWideType);
}

Instruction Instruction::MakePlanSlots(uint64_t s0, uint64_t s1) {
    return Pack(s0, s1, kWideType);
}

InstructionKind Instruction::Kind(uint64_t position) const {
    if (position == 0) return InstructionKind::kHeader;
    // 0xE is not a gate type, so wide records are position-independent.
    if (TypeField() == kWideType) return InstructionKind::kWide;
    if (Input0() == kIndexAllOnes) {
        if (TypeField() == kInputType && Input1() == kIndexAllOnes)
            return InstructionKind::kInput;
        if (TypeField() == kOutputType) return InstructionKind::kOutput;
    }
    return InstructionKind::kGate;
}

std::string Instruction::ToString(uint64_t position) const {
    std::ostringstream os;
    os << position << ": ";
    switch (Kind(position)) {
        case InstructionKind::kHeader:
            os << "HEADER gates=" << Input1() << " version="
               << (Input0() & 0xFF);
            if (Input0() >> 8) os << " p=" << ((Input0() >> 8) & 0xFF);
            break;
        case InstructionKind::kInput:
            os << "INPUT";
            break;
        case InstructionKind::kOutput:
            os << "OUTPUT <- " << Input1();
            break;
        case InstructionKind::kGate:
            os << circuit::GateTypeName(
                      static_cast<circuit::GateType>(TypeField()))
               << " " << Input0() << ", " << Input1();
            break;
        case InstructionKind::kWide:
            if (Input0() == kIndexAllOnes && Input1() == kIndexAllOnes) {
                os << "PLAN section";
            } else if (Input0() == kIndexAllOnes) {
                os << "WIDE group of " << Input1();
            } else {
                os << "WIDE members " << Input0();
                if (Input1() != kIndexAllOnes) os << ", " << Input1();
            }
            break;
    }
    return os.str();
}

}  // namespace pytfhe::pasm
