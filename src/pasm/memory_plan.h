/**
 * @file
 * Memory-plan computation: liveness analysis over a program's gate DAG
 * followed by linear-scan slot allocation (circuit/opt/slot_alloc.h). The
 * resulting MemoryPlan maps every value onto a physical ciphertext slot
 * such that peak storage is O(max live ciphertexts) instead of O(gates);
 * Program::WithPlan embeds it as a version-3 plan section.
 */
#ifndef PYTFHE_PASM_MEMORY_PLAN_H
#define PYTFHE_PASM_MEMORY_PLAN_H

#include "pasm/program.h"

namespace pytfhe::pasm {

struct MemoryPlanOptions {
    /**
     * Restrict slot reuse to wave-level boundaries (a slot freed at level
     * L is reassigned only at level >= L+1). Level-safe plans are valid on
     * every backend, including barrier-scheduled threading; turning this
     * off packs slightly tighter but limits the plan to in-order and
     * dependency-counting execution. The compiler emits level-safe plans.
     */
    bool level_safe = true;
};

/**
 * Computes a slot plan for `program` from exact per-value live intervals:
 * a value lives from its defining instruction to its last reader; program
 * outputs are pinned (they must survive to harvest and never free their
 * slot). Deterministic, O(V log V).
 */
MemoryPlan ComputeMemoryPlan(const Program& program,
                             const MemoryPlanOptions& options = {});

}  // namespace pytfhe::pasm

#endif  // PYTFHE_PASM_MEMORY_PLAN_H
