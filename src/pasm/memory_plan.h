/**
 * @file
 * Memory-plan computation: liveness analysis over a program's gate DAG
 * followed by linear-scan slot allocation (circuit/opt/slot_alloc.h). The
 * resulting MemoryPlan maps every value onto a physical ciphertext slot
 * such that peak storage is O(max live ciphertexts) instead of O(gates);
 * Program::WithPlan embeds it as a version-3 plan section.
 */
#ifndef PYTFHE_PASM_MEMORY_PLAN_H
#define PYTFHE_PASM_MEMORY_PLAN_H

#include <vector>

#include "pasm/program.h"

namespace pytfhe::pasm {

struct MemoryPlanOptions {
    /**
     * Restrict slot reuse to wave-level boundaries (a slot freed at level
     * L is reassigned only at level >= L+1). Level-safe plans are valid on
     * every backend, including barrier-scheduled threading; turning this
     * off packs slightly tighter but limits the plan to in-order and
     * dependency-counting execution. The compiler emits level-safe plans.
     */
    bool level_safe = true;
};

/**
 * Computes a slot plan for `program` from exact per-value live intervals:
 * a value lives from its defining instruction to its last reader; program
 * outputs are pinned (they must survive to harvest and never free their
 * slot). Deterministic, O(V log V).
 */
MemoryPlan ComputeMemoryPlan(const Program& program,
                             const MemoryPlanOptions& options = {});

/**
 * Per-value liveness facts for a program, in the exact form the memory
 * plan is derived from. Vectors are indexed by instruction index
 * (values are 1-based: inputs occupy [1, FirstGateIndex()), gates
 * [FirstGateIndex(), end_index)). Checkpointing consumes this to decide
 * which slots must be snapshotted at a cut.
 */
struct ValueLiveness {
    uint64_t first_gate = 0;  ///< First gate instruction index.
    uint64_t end_index = 0;   ///< One past the last instruction index.
    std::vector<uint64_t> level;        ///< Wave level (inputs are 0).
    std::vector<uint64_t> last_use;     ///< Last reader ordinal (or self).
    std::vector<uint64_t> death_level;  ///< Max reader level (or own).
    std::vector<bool> pinned;           ///< Program outputs.
};

/** Computes the liveness facts ComputeMemoryPlan is built on. O(V). */
ValueLiveness ComputeValueLiveness(const Program& program);

/**
 * Values provably resident in their slots at a quiesced level-`boundary`
 * cut (every gate at level < boundary done, none at level >= boundary
 * started) and still needed afterwards: defined below the cut, with a
 * reader at or above it or pinned as a program output. Valid for
 * level-safe plans (and unplanned execution), where no overwriter of a
 * still-live value can run below the cut.
 */
std::vector<uint64_t> LiveValuesAtLevelCut(const ValueLiveness& liveness,
                                           uint64_t boundary);

/**
 * Values live immediately after instruction `last_done` in sequential
 * (ordinal) execution order: defined at or before it, with a later
 * reader or pinned. Valid for any plan the sequential interpreter
 * accepts, including sequential-tight (non-level-safe) plans.
 */
std::vector<uint64_t> LiveValuesAtOrdinalCut(const ValueLiveness& liveness,
                                             uint64_t last_done);

}  // namespace pytfhe::pasm

#endif  // PYTFHE_PASM_MEMORY_PLAN_H
