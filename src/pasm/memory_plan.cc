#include "pasm/memory_plan.h"

#include <algorithm>

#include "circuit/opt/slot_alloc.h"

namespace pytfhe::pasm {

MemoryPlan ComputeMemoryPlan(const Program& program,
                             const MemoryPlanOptions& options) {
    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    const uint64_t num_values = program.NumInputs() + program.NumGates();

    MemoryPlan plan;
    plan.level_safe = options.level_safe;
    if (num_values == 0) return plan;

    // Exact liveness: last reader per value, with outputs pinned. The
    // death *level* is the max wave level over all readers — not the level
    // of the last-by-ordinal reader, which can be the shallower one (an
    // earlier-ordinal reader may sit at a deeper level, and wave-barrier
    // execution runs it later).
    const std::vector<uint64_t> level = program.ValueLevels();
    std::vector<uint64_t> last(end_gate, 0);
    std::vector<uint64_t> death(end_gate, 0);
    for (uint64_t v = 1; v < end_gate; ++v) {
        last[v] = v;
        death[v] = level[v];
    }
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        program.ForEachOperand(idx, [&](uint64_t in) {
            last[in] = std::max(last[in], idx);
            death[in] = std::max(death[in], level[idx]);
        });
    }
    std::vector<bool> pinned(end_gate, false);
    for (const uint64_t src : program.OutputIndices()) pinned[src] = true;

    std::vector<circuit::LiveInterval> intervals(num_values);
    for (uint64_t v = 1; v <= num_values; ++v) {
        circuit::LiveInterval& iv = intervals[v - 1];
        iv.def = v;
        iv.last_use = last[v];
        iv.def_level = level[v];
        iv.death_level = death[v];
        iv.pinned = pinned[v];
    }

    const circuit::SlotAssignment assignment =
        circuit::AssignSlots(intervals, options.level_safe);
    plan.num_slots = assignment.num_slots;
    plan.slot_of.assign(1 + num_values, 0);
    for (uint64_t v = 1; v <= num_values; ++v)
        plan.slot_of[v] = assignment.slot[v - 1];
    return plan;
}

}  // namespace pytfhe::pasm
