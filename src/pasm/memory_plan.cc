#include "pasm/memory_plan.h"

#include <algorithm>

#include "circuit/opt/slot_alloc.h"

namespace pytfhe::pasm {

ValueLiveness ComputeValueLiveness(const Program& program) {
    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();

    // Exact liveness: last reader per value, with outputs pinned. The
    // death *level* is the max wave level over all readers — not the level
    // of the last-by-ordinal reader, which can be the shallower one (an
    // earlier-ordinal reader may sit at a deeper level, and wave-barrier
    // execution runs it later).
    ValueLiveness out;
    out.first_gate = first_gate;
    out.end_index = end_gate;
    out.level = program.ValueLevels();
    out.last_use.assign(end_gate, 0);
    out.death_level.assign(end_gate, 0);
    for (uint64_t v = 1; v < end_gate; ++v) {
        out.last_use[v] = v;
        out.death_level[v] = out.level[v];
    }
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        program.ForEachOperand(idx, [&](uint64_t in) {
            out.last_use[in] = std::max(out.last_use[in], idx);
            out.death_level[in] = std::max(out.death_level[in], out.level[idx]);
        });
    }
    out.pinned.assign(end_gate, false);
    for (const uint64_t src : program.OutputIndices()) out.pinned[src] = true;
    return out;
}

std::vector<uint64_t> LiveValuesAtLevelCut(const ValueLiveness& liveness,
                                           uint64_t boundary) {
    std::vector<uint64_t> live;
    for (uint64_t v = 1; v < liveness.end_index; ++v) {
        if (liveness.level[v] >= boundary) continue;  // Not yet defined.
        if (liveness.death_level[v] >= boundary || liveness.pinned[v])
            live.push_back(v);
    }
    return live;
}

std::vector<uint64_t> LiveValuesAtOrdinalCut(const ValueLiveness& liveness,
                                             uint64_t last_done) {
    std::vector<uint64_t> live;
    const uint64_t defined_end =
        std::min(last_done + 1, liveness.end_index);
    for (uint64_t v = 1; v < defined_end; ++v) {
        if (liveness.last_use[v] > last_done || liveness.pinned[v])
            live.push_back(v);
    }
    return live;
}

MemoryPlan ComputeMemoryPlan(const Program& program,
                             const MemoryPlanOptions& options) {
    const uint64_t num_values = program.NumInputs() + program.NumGates();

    MemoryPlan plan;
    plan.level_safe = options.level_safe;
    if (num_values == 0) return plan;

    const ValueLiveness liveness = ComputeValueLiveness(program);
    std::vector<circuit::LiveInterval> intervals(num_values);
    for (uint64_t v = 1; v <= num_values; ++v) {
        circuit::LiveInterval& iv = intervals[v - 1];
        iv.def = v;
        iv.last_use = liveness.last_use[v];
        iv.def_level = liveness.level[v];
        iv.death_level = liveness.death_level[v];
        iv.pinned = liveness.pinned[v];
    }

    const circuit::SlotAssignment assignment =
        circuit::AssignSlots(intervals, options.level_safe);
    plan.num_slots = assignment.num_slots;
    plan.slot_of.assign(1 + num_values, 0);
    for (uint64_t v = 1; v <= num_values; ++v)
        plan.slot_of[v] = assignment.slot[v - 1];
    return plan;
}

}  // namespace pytfhe::pasm
