#include "pasm/program.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace pytfhe::pasm {

namespace {

bool Fail(std::string* error, const std::string& message) {
    if (error) *error = message;
    return false;
}

/**
 * Last position at which each value is read: the maximum consuming gate
 * index, the value's own index when it has no readers, or `end` (one past
 * the last gate) when the value is a program output and must survive to
 * harvest. Indexed by instruction index; entry 0 unused.
 */
std::vector<uint64_t> LastUses(const Program& p) {
    const uint64_t first_gate = p.FirstGateIndex();
    const uint64_t end = first_gate + p.NumGates();
    std::vector<uint64_t> last(end, 0);
    for (uint64_t v = 1; v < end; ++v) last[v] = v;
    for (uint64_t idx = first_gate; idx < end; ++idx) {
        p.ForEachOperand(idx, [&](uint64_t in) {
            last[in] = std::max(last[in], idx);
        });
    }
    for (const uint64_t src : p.OutputIndices()) last[src] = end;
    return last;
}

/**
 * Checks the plan's safety contract: values sharing a slot have disjoint
 * live intervals, and (when level_safe) reuse skips at least one wave
 * level so barrier-scheduled threads cannot race a reader against the
 * overwriting gate.
 */
bool PlanIsSafe(const Program& p, const MemoryPlan& plan,
                std::string* error) {
    const uint64_t num_values = p.NumInputs() + p.NumGates();
    const std::vector<uint64_t> last = LastUses(p);
    std::vector<uint64_t> level;
    std::vector<uint64_t> death;
    if (plan.level_safe) {
        level = p.ValueLevels();
        // Death level = max wave level over ALL readers: an early-ordinal
        // reader can sit at a deeper level than the last-by-ordinal one,
        // and the wave-barrier backend runs it later.
        death = level;
        const uint64_t first_gate = p.FirstGateIndex();
        for (uint64_t idx = first_gate; idx < first_gate + p.NumGates();
             ++idx) {
            p.ForEachOperand(idx, [&](uint64_t in) {
                death[in] = std::max(death[in], level[idx]);
            });
        }
    }
    // Values are defined in index order, so walking them in order visits
    // each slot's occupants in definition order.
    std::vector<uint64_t> prev(plan.num_slots, 0);  // 0 = slot untouched.
    for (uint64_t v = 1; v <= num_values; ++v) {
        const uint64_t s = plan.slot_of[v];
        const uint64_t u = prev[s];
        if (u != 0) {
            if (last[u] > v)
                return Fail(error,
                            "memory plan assigns overlapping live values " +
                                std::to_string(u) + " and " +
                                std::to_string(v) + " to slot " +
                                std::to_string(s));
            if (plan.level_safe) {
                if (level[v] < death[u] + 1)
                    return Fail(error,
                                "level-safe memory plan reuses slot " +
                                    std::to_string(s) + " for value " +
                                    std::to_string(v) +
                                    " within the freeing wave level");
            }
        }
        prev[s] = v;
    }
    return true;
}

}  // namespace

std::optional<Program> Program::FromInstructions(
    std::vector<Instruction> instructions, std::string* error) {
    Program p;
    p.instructions_ = std::move(instructions);
    const auto& ins = p.instructions_;

    if (ins.empty()) {
        Fail(error, "empty program");
        return std::nullopt;
    }
    if (ins[0].Kind(0) != InstructionKind::kHeader ||
        ins[0].TypeField() != kHeaderType) {
        Fail(error, "first instruction is not a valid header");
        return std::nullopt;
    }
    // The header's INPUT0 is `version | message_modulus << 8` since
    // version 4; earlier writers emitted the bare version, whose upper
    // bits were zero, so the split decode is backward compatible.
    const uint64_t header_field = ins[0].Input0();
    p.format_version_ = header_field & 0xFF;
    p.message_modulus_ = static_cast<int32_t>((header_field >> 8) & 0xFF);
    if (p.format_version_ > kMaxFormatVersion) {
        Fail(error, "unsupported program format version " +
                        std::to_string(p.format_version_));
        return std::nullopt;
    }
    if ((header_field >> 16) != 0) {
        Fail(error, "header carries unknown high bits");
        return std::nullopt;
    }
    const bool multibit = p.format_version_ >= kFormatVersionMultibit;
    if (!multibit && p.message_modulus_ != 0) {
        Fail(error, "header declares a message modulus but format version " +
                        std::to_string(p.format_version_) +
                        " predates multibit programs");
        return std::nullopt;
    }
    if (multibit &&
        (p.message_modulus_ < 2 || p.message_modulus_ > 16 ||
         (p.message_modulus_ & (p.message_modulus_ - 1)) != 0)) {
        Fail(error, "invalid message modulus " +
                        std::to_string(p.message_modulus_) +
                        " (must be a power of two in [2, 16])");
        return std::nullopt;
    }
    const uint64_t declared_gates = ins[0].Input1();

    // Phase order: inputs, then gates, then outputs, then (version >= 4)
    // the mandatory LUT operand table, then the optional wide-group
    // trailer (version >= 2, boolean programs only), then the optional
    // memory-plan section (version >= 3).
    enum Phase {
        kInputs,
        kGates,
        kOutputs,
        kLutOperands,
        kWideTrailer,
        kPlanTrailer
    } phase = kInputs;
    // Wide-trailer decode state: members still expected for the open
    // group, and the set of gates already claimed by some group.
    uint64_t wide_expected = 0;
    WideOp wide_current;
    std::unordered_set<uint64_t> wide_used;
    // LUT operand-table decode state (version >= 4).
    bool lut_head_seen = false;
    uint64_t lut_declared = 0;
    uint64_t lut_values_left = 0;
    // Plan-section decode state.
    bool plan_head_seen = false;
    uint64_t plan_values_left = 0;
    uint64_t plan_next_value = 1;
    MemoryPlan plan_current;
    for (uint64_t pos = 1; pos < ins.size(); ++pos) {
        switch (ins[pos].Kind(pos)) {
            case InstructionKind::kHeader:
                Fail(error, "unexpected header at position " +
                                std::to_string(pos));
                return std::nullopt;
            case InstructionKind::kInput:
                if (phase != kInputs) {
                    Fail(error, "input instruction after gates at position " +
                                    std::to_string(pos));
                    return std::nullopt;
                }
                ++p.num_inputs_;
                break;
            case InstructionKind::kGate: {
                if (phase != kInputs && phase != kGates) {
                    Fail(error, "gate instruction after outputs at position " +
                                    std::to_string(pos));
                    return std::nullopt;
                }
                if (multibit) {
                    Fail(error,
                         "classic gate at position " + std::to_string(pos) +
                             " in a multibit program (format version >= 4 "
                             "programs carry only LUT gates)");
                    return std::nullopt;
                }
                phase = kGates;
                const DecodedGate g{
                    static_cast<circuit::GateType>(ins[pos].TypeField()),
                    ins[pos].Input0(), ins[pos].Input1()};
                if (static_cast<int32_t>(g.type) >= circuit::kNumGateTypes) {
                    Fail(error, "invalid gate type at position " +
                                    std::to_string(pos));
                    return std::nullopt;
                }
                if (g.in0 >= pos || g.in1 >= pos || g.in0 == 0 || g.in1 == 0) {
                    Fail(error,
                         "gate at position " + std::to_string(pos) +
                             " references an invalid index");
                    return std::nullopt;
                }
                if (circuit::IsLinearGate(g.type) &&
                    p.format_version_ < kFormatVersionLinear) {
                    Fail(error,
                         "linear opcode at position " + std::to_string(pos) +
                             " requires format version >= 1");
                    return std::nullopt;
                }
                // Torus-domain rules, mirroring Netlist::Validate. The
                // producing opcode decides an operand's encoding; indices
                // at or below num_inputs_ are program inputs (gate
                // domain).
                const auto linear_operand = [&](uint64_t in) {
                    return in > p.num_inputs_ &&
                           circuit::IsLinearGate(static_cast<circuit::GateType>(
                               ins[in].TypeField()));
                };
                const bool lin0 = linear_operand(g.in0);
                const bool lin1 = linear_operand(g.in1);
                bool domain_ok = true;
                switch (g.type) {
                    case circuit::GateType::kXor:
                    case circuit::GateType::kXnor:
                    case circuit::GateType::kLinXor:
                    case circuit::GateType::kLinXnor:
                        break;
                    case circuit::GateType::kNot:
                        domain_ok = !lin0;
                        break;
                    case circuit::GateType::kLinNot:
                        domain_ok = lin0;
                        break;
                    default:
                        domain_ok = !lin0 && !lin1;
                        break;
                }
                if (!domain_ok) {
                    Fail(error, "gate at position " + std::to_string(pos) +
                                    " violates operand-encoding rules");
                    return std::nullopt;
                }
                ++p.num_gates_;
                break;
            }
            case InstructionKind::kOutput: {
                if (phase == kLutOperands || phase == kWideTrailer ||
                    phase == kPlanTrailer) {
                    Fail(error, "output after the wide trailer at position " +
                                    std::to_string(pos));
                    return std::nullopt;
                }
                phase = kOutputs;
                const uint64_t src = ins[pos].Input1();
                if (src == 0 || src > p.num_inputs_ + p.num_gates_) {
                    Fail(error, "output at position " + std::to_string(pos) +
                                    " references an invalid index");
                    return std::nullopt;
                }
                p.outputs_.push_back(src);
                break;
            }
            case InstructionKind::kWide: {
                // Version >= 4 reuses the 0xE nibble for LUT gate records
                // (gate section) and the LUT operand table (directly
                // after the outputs); the phase disambiguates.
                if (multibit && (phase == kInputs || phase == kGates)) {
                    phase = kGates;
                    const uint64_t spec = ins[pos].Input0();
                    if ((spec >> 48) != 0) {
                        Fail(error, "LUT gate at position " +
                                        std::to_string(pos) +
                                        " carries unknown high bits");
                        return std::nullopt;
                    }
                    LutRecord r;
                    r.table = static_cast<uint32_t>(spec & 0xFFFFFFFF);
                    r.arity = static_cast<uint8_t>((spec >> 32) & 0xF);
                    r.out_bits = static_cast<uint8_t>(((spec >> 36) & 0x3) + 1);
                    r.lo = static_cast<int32_t>((spec >> 38) & 0x3FF) - 512;
                    r.first_op = ins[pos].Input1();
                    if (r.arity < 1 || r.arity > 8) {
                        Fail(error, "LUT gate at position " +
                                        std::to_string(pos) +
                                        " declares an invalid operand count " +
                                        std::to_string(r.arity) +
                                        " (1..8 allowed)");
                        return std::nullopt;
                    }
                    if (r.out_bits > 2) {
                        Fail(error, "LUT gate at position " +
                                        std::to_string(pos) +
                                        " declares an invalid output digit "
                                        "width (1 or 2 bits allowed)");
                        return std::nullopt;
                    }
                    p.lut_records_.push_back(r);
                    ++p.num_gates_;
                    break;
                }
                if (multibit && phase != kPlanTrailer && !lut_head_seen) {
                    // The operand-table head is the mandatory first
                    // trailer record of a multibit program. Its count is
                    // never all-ones, which keeps it distinct from the
                    // plan sentinel.
                    if (ins[pos].Input0() != kIndexAllOnes ||
                        ins[pos].Input1() == kIndexAllOnes) {
                        Fail(error, "multibit program misses its LUT "
                                    "operand-table head at position " +
                                        std::to_string(pos));
                        return std::nullopt;
                    }
                    lut_declared = ins[pos].Input1();
                    // Every gate holds at most 8 entries, which bounds
                    // the table (and the allocation below) up front.
                    if (lut_declared > 8 * p.num_gates_) {
                        Fail(error, "LUT operand-table head at position " +
                                        std::to_string(pos) +
                                        " declares an impossible entry "
                                        "count");
                        return std::nullopt;
                    }
                    lut_values_left = lut_declared;
                    p.lut_operands_.reserve(lut_declared);
                    lut_head_seen = true;
                    phase = kLutOperands;
                    break;
                }
                if (phase == kLutOperands && lut_values_left > 0) {
                    for (const uint64_t field :
                         {ins[pos].Input0(), ins[pos].Input1()}) {
                        if (lut_values_left == 0) {
                            if (field != kIndexAllOnes) {
                                Fail(error, "LUT operand record at position " +
                                                std::to_string(pos) +
                                                " carries an extra entry");
                                return std::nullopt;
                            }
                            continue;
                        }
                        const uint64_t in = field & kLutOperandIndexMask;
                        const int32_t biased = static_cast<int32_t>(
                            (field >> kLutOperandIndexBits) & 0xFF);
                        if (biased == 128) {
                            Fail(error, "LUT operand at position " +
                                            std::to_string(pos) +
                                            " carries a zero weight");
                            return std::nullopt;
                        }
                        p.lut_operands_.emplace_back(
                            in, static_cast<int8_t>(biased - 128));
                        --lut_values_left;
                    }
                    break;
                }
                // Memory-plan section: everything after the sentinel.
                if (phase == kPlanTrailer) {
                    if (!plan_head_seen) {
                        plan_current.num_slots = ins[pos].Input0();
                        const uint64_t flags = ins[pos].Input1();
                        if (flags & ~kPlanFlagLevelSafe) {
                            Fail(error, "plan head at position " +
                                            std::to_string(pos) +
                                            " carries unknown flag bits");
                            return std::nullopt;
                        }
                        plan_current.level_safe =
                            (flags & kPlanFlagLevelSafe) != 0;
                        const uint64_t num_values =
                            p.num_inputs_ + p.num_gates_;
                        if (num_values == 0 ||
                            plan_current.num_slots == 0 ||
                            plan_current.num_slots > num_values) {
                            Fail(error, "plan head at position " +
                                            std::to_string(pos) +
                                            " declares an invalid slot "
                                            "count");
                            return std::nullopt;
                        }
                        plan_current.slot_of.assign(1 + num_values, 0);
                        plan_values_left = num_values;
                        plan_head_seen = true;
                        break;
                    }
                    if (plan_values_left == 0) {
                        Fail(error, "record after the memory plan at "
                                    "position " +
                                        std::to_string(pos));
                        return std::nullopt;
                    }
                    for (const uint64_t s :
                         {ins[pos].Input0(), ins[pos].Input1()}) {
                        if (plan_values_left == 0) {
                            if (s != kIndexAllOnes) {
                                Fail(error, "plan record at position " +
                                                std::to_string(pos) +
                                                " carries an extra slot");
                                return std::nullopt;
                            }
                            continue;
                        }
                        if (s >= plan_current.num_slots) {
                            Fail(error, "plan slot at position " +
                                            std::to_string(pos) +
                                            " is out of range");
                            return std::nullopt;
                        }
                        plan_current.slot_of[plan_next_value++] = s;
                        --plan_values_left;
                    }
                    break;
                }
                // Plan sentinel: both index fields all-ones. A wide leader
                // always declares a count in [2, num_gates], so this is
                // unambiguous outside an open wide group.
                if (wide_expected == 0 &&
                    ins[pos].Input0() == kIndexAllOnes &&
                    ins[pos].Input1() == kIndexAllOnes) {
                    if (p.format_version_ < kFormatVersionPlanned) {
                        Fail(error, "memory plan at position " +
                                        std::to_string(pos) +
                                        " requires format version >= 3");
                        return std::nullopt;
                    }
                    phase = kPlanTrailer;
                    p.plan_pos_ = pos;
                    break;
                }
                if (p.format_version_ < kFormatVersionWide) {
                    Fail(error, "wide record at position " +
                                    std::to_string(pos) +
                                    " requires format version >= 2");
                    return std::nullopt;
                }
                if (multibit) {
                    Fail(error, "wide-group record at position " +
                                    std::to_string(pos) +
                                    " in a multibit program (LUT programs "
                                    "carry no wide trailer)");
                    return std::nullopt;
                }
                phase = kWideTrailer;
                const uint64_t first_gate = 1 + p.num_inputs_;
                const uint64_t end_gate = first_gate + p.num_gates_;
                if (wide_expected == 0) {
                    // Leader: INPUT0 all-ones, INPUT1 the member count.
                    if (ins[pos].Input0() != kIndexAllOnes) {
                        Fail(error,
                             "wide member record without a leader at "
                             "position " +
                                 std::to_string(pos));
                        return std::nullopt;
                    }
                    wide_expected = ins[pos].Input1();
                    if (wide_expected < 2 || wide_expected > p.num_gates_) {
                        Fail(error, "wide leader at position " +
                                        std::to_string(pos) +
                                        " declares an invalid member count");
                        return std::nullopt;
                    }
                    wide_current.members.clear();
                    wide_current.members.reserve(wide_expected);
                    break;
                }
                // Member pair record; the second slot of the group's final
                // record pads with all-ones when the count is odd.
                for (const uint64_t m : {ins[pos].Input0(),
                                         ins[pos].Input1()}) {
                    if (wide_expected == 0) {
                        if (m != kIndexAllOnes) {
                            Fail(error, "wide record at position " +
                                            std::to_string(pos) +
                                            " carries an extra member");
                            return std::nullopt;
                        }
                        continue;
                    }
                    if (m < first_gate || m >= end_gate) {
                        Fail(error, "wide member at position " +
                                        std::to_string(pos) +
                                        " is not a gate index");
                        return std::nullopt;
                    }
                    const auto type =
                        static_cast<circuit::GateType>(ins[m].TypeField());
                    if (!circuit::NeedsBootstrap(type)) {
                        Fail(error, "wide member " + std::to_string(m) +
                                        " is not a bootstrapped gate");
                        return std::nullopt;
                    }
                    if (!wide_current.members.empty() &&
                        ins[m].TypeField() !=
                            ins[wide_current.members[0]].TypeField()) {
                        Fail(error, "wide group ending at position " +
                                        std::to_string(pos) +
                                        " mixes gate types");
                        return std::nullopt;
                    }
                    if (!wide_used.insert(m).second) {
                        Fail(error, "gate " + std::to_string(m) +
                                        " appears in more than one wide "
                                        "group");
                        return std::nullopt;
                    }
                    wide_current.members.push_back(m);
                    --wide_expected;
                }
                if (wide_expected == 0)
                    p.wide_ops_.push_back(std::move(wide_current));
                break;
            }
        }
    }
    if (wide_expected != 0) {
        Fail(error, "truncated wide group: " + std::to_string(wide_expected) +
                        " members missing");
        return std::nullopt;
    }
    if (p.num_gates_ != declared_gates) {
        Fail(error, "header declares " + std::to_string(declared_gates) +
                        " gates but program contains " +
                        std::to_string(p.num_gates_));
        return std::nullopt;
    }
    if (multibit) {
        if (!lut_head_seen) {
            Fail(error, "multibit program misses its LUT operand table");
            return std::nullopt;
        }
        if (lut_values_left != 0) {
            Fail(error, "truncated LUT operand table: " +
                            std::to_string(lut_values_left) +
                            " entries missing");
            return std::nullopt;
        }
        uint64_t total_arity = 0;
        for (const LutRecord& r : p.lut_records_) total_arity += r.arity;
        if (total_arity != lut_declared) {
            Fail(error, "LUT operand-table head declares " +
                            std::to_string(lut_declared) +
                            " entries but the gates reference " +
                            std::to_string(total_arity));
            return std::nullopt;
        }
        // Resolve and semantically validate every LUT gate, mirroring
        // Netlist::Validate: offsets in range, operands strictly
        // ascending prior indices, the declared lo equal to the minimum
        // reachable weighted sum over nominal digit ranges, and the
        // reachable domain inside the message modulus and the table word.
        const uint64_t first_gate = p.FirstGateIndex();
        for (uint64_t g = 0; g < p.lut_records_.size(); ++g) {
            const LutRecord& r = p.lut_records_[g];
            const uint64_t pos = first_gate + g;
            if (r.first_op > lut_declared ||
                r.arity > lut_declared - r.first_op) {
                Fail(error, "LUT gate at position " + std::to_string(pos) +
                                " references operand entries past the table");
                return std::nullopt;
            }
            int64_t lo = 0, hi = 0;
            uint64_t prev_in = 0;
            for (uint64_t e = r.first_op; e < r.first_op + r.arity; ++e) {
                const auto& [in, w] = p.lut_operands_[e];
                if (in == 0 || in >= pos) {
                    Fail(error, "LUT gate at position " +
                                    std::to_string(pos) +
                                    " references an invalid index " +
                                    std::to_string(in));
                    return std::nullopt;
                }
                if (e > r.first_op && in <= prev_in) {
                    Fail(error, "LUT gate at position " +
                                    std::to_string(pos) +
                                    " carries unsorted or duplicate "
                                    "operand entries");
                    return std::nullopt;
                }
                prev_in = in;
                // Nominal operand range: [0, 2^digit_bits - 1], the
                // producing gate's declared output width (inputs are
                // 1-bit wires).
                const int64_t vmax =
                    in >= first_gate &&
                            p.lut_records_[in - first_gate].out_bits == 2
                        ? 3
                        : 1;
                if (w > 0)
                    hi += static_cast<int64_t>(w) * vmax;
                else
                    lo += static_cast<int64_t>(w) * vmax;
            }
            if (lo != r.lo) {
                Fail(error, "LUT gate at position " + std::to_string(pos) +
                                " declares lo " + std::to_string(r.lo) +
                                " but its operands reach " +
                                std::to_string(lo));
                return std::nullopt;
            }
            const int64_t domain = hi - lo + 1;
            if (domain > p.message_modulus_) {
                Fail(error, "LUT gate at position " + std::to_string(pos) +
                                " spans " + std::to_string(domain) +
                                " sums, more than the message modulus " +
                                std::to_string(p.message_modulus_));
                return std::nullopt;
            }
            if (domain * r.out_bits > 32) {
                Fail(error, "LUT gate at position " + std::to_string(pos) +
                                " does not fit its 32-bit table");
                return std::nullopt;
            }
        }
        // Circuit outputs must be 1-bit digits, like Netlist::Validate.
        for (const uint64_t src : p.outputs_) {
            if (src >= first_gate &&
                p.lut_records_[src - first_gate].out_bits != 1) {
                Fail(error, "output references the 2-bit digit at position " +
                                std::to_string(src) +
                                "; outputs must be 1-bit");
                return std::nullopt;
            }
        }
    }
    if (phase == kPlanTrailer) {
        if (!plan_head_seen || plan_values_left != 0) {
            Fail(error, "truncated memory plan section");
            return std::nullopt;
        }
        if (!PlanIsSafe(p, plan_current, error)) return std::nullopt;
        p.plan_ = std::move(plan_current);
    }
    return p;
}

GateDependencies Program::BuildGateDependencies() const {
    GateDependencies deps;
    deps.first_gate = FirstGateIndex();
    const uint64_t end_gate = deps.first_gate + num_gates_;
    deps.pred_count.assign(num_gates_, 0);

    // Two passes over the gates: count each gate's fan-out, then fill the
    // CSR successor lists. Both operands count, even when they coincide.
    std::vector<uint64_t> fan_out(num_gates_, 0);
    for (uint64_t idx = deps.first_gate; idx < end_gate; ++idx) {
        ForEachOperand(idx, [&](uint64_t in) {
            if (in < deps.first_gate) return;  // Program input.
            ++deps.pred_count[idx - deps.first_gate];
            ++fan_out[in - deps.first_gate];
        });
    }
    deps.succ_offsets.assign(num_gates_ + 1, 0);
    for (uint64_t g = 0; g < num_gates_; ++g)
        deps.succ_offsets[g + 1] = deps.succ_offsets[g] + fan_out[g];
    deps.successors.resize(deps.succ_offsets[num_gates_]);
    std::vector<uint64_t> cursor(deps.succ_offsets.begin(),
                                 deps.succ_offsets.end() - 1);
    for (uint64_t idx = deps.first_gate; idx < end_gate; ++idx) {
        ForEachOperand(idx, [&](uint64_t in) {
            if (in < deps.first_gate) return;
            deps.successors[cursor[in - deps.first_gate]++] = idx;
        });
    }
    return deps;
}

GateDependencies Program::BuildGateDependencies(
    const MemoryPlan* plan) const {
    if (plan == nullptr) return BuildGateDependencies();
    const uint64_t first_gate = FirstGateIndex();
    const uint64_t end_gate = first_gate + num_gates_;

    // Anti-dependency edges (r -> w): gate w overwrites the slot last held
    // by value u, so every gate r reading u must finish first
    // (write-after-read); a reader-less gate u must itself finish first
    // (write-after-write). Validation guarantees last[u] <= w, so the
    // edges always point forward; r == w is the in-place case (w consumes
    // u and writes its slot), safe without an edge because gate kernels
    // read all operands before writing the destination.
    std::vector<std::vector<uint64_t>> readers(end_gate);
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        ForEachOperand(idx, [&](uint64_t in) {
            auto& r = readers[in];
            if (r.empty() || r.back() != idx) r.push_back(idx);
        });
    }
    std::vector<std::pair<uint64_t, uint64_t>> anti;  // (r, w)
    std::vector<uint64_t> prev(plan->num_slots, 0);
    for (uint64_t v = 1; v < end_gate; ++v) {
        const uint64_t u = prev[plan->slot_of[v]];
        if (u != 0 && v >= first_gate) {
            if (readers[u].empty()) {
                if (u >= first_gate) anti.emplace_back(u, v);
            } else {
                for (const uint64_t r : readers[u])
                    if (r != v) anti.emplace_back(r, v);
            }
        }
        prev[plan->slot_of[v]] = v;
    }

    GateDependencies deps = BuildGateDependencies();
    if (anti.empty()) return deps;
    for (const auto& [r, w] : anti) {
        (void)r;
        ++deps.pred_count[w - first_gate];
    }
    std::vector<uint64_t> extra(num_gates_, 0);
    for (const auto& [r, w] : anti) {
        (void)w;
        ++extra[r - first_gate];
    }
    // Rebuild the CSR with room for the extra edges per source gate.
    std::vector<uint64_t> offsets(num_gates_ + 1, 0);
    for (uint64_t g = 0; g < num_gates_; ++g)
        offsets[g + 1] = offsets[g] + (deps.succ_offsets[g + 1] -
                                       deps.succ_offsets[g]) +
                         extra[g];
    std::vector<uint64_t> successors(offsets[num_gates_]);
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (uint64_t g = 0; g < num_gates_; ++g)
        for (uint64_t i = deps.succ_offsets[g]; i < deps.succ_offsets[g + 1];
             ++i)
            successors[cursor[g]++] = deps.successors[i];
    for (const auto& [r, w] : anti) successors[cursor[r - first_gate]++] = w;
    deps.succ_offsets = std::move(offsets);
    deps.successors = std::move(successors);
    return deps;
}

std::vector<uint64_t> Program::ValueLevels() const {
    const uint64_t first_gate = FirstGateIndex();
    const uint64_t end_gate = first_gate + num_gates_;
    std::vector<uint64_t> level(end_gate, 0);
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        uint64_t deepest = 0;
        ForEachOperand(idx, [&](uint64_t in) {
            deepest = std::max(deepest, level[in]);
        });
        level[idx] = 1 + deepest;
    }
    return level;
}

std::optional<Program> Program::WithPlan(MemoryPlan plan,
                                         std::string* error) const {
    const uint64_t num_values = num_inputs_ + num_gates_;
    if (num_values == 0) return *this;
    if (plan.slot_of.size() != 1 + num_values) {
        Fail(error, "memory plan covers " +
                        std::to_string(plan.slot_of.size()) +
                        " entries but the program has " +
                        std::to_string(num_values) + " values");
        return std::nullopt;
    }
    std::vector<Instruction> ins(
        instructions_.begin(),
        plan_pos_ != 0 ? instructions_.begin() + plan_pos_
                       : instructions_.end());
    // A plan section needs at least version 3; multibit programs keep
    // their version-4 header (and its message-modulus byte).
    const uint64_t version =
        std::max<uint64_t>(format_version_, kFormatVersionPlanned);
    ins[0] = Instruction::MakeHeader(
        num_gates_,
        version | (static_cast<uint64_t>(message_modulus_) << 8));
    ins.reserve(ins.size() + 2 + (num_values + 1) / 2);
    ins.push_back(Instruction::MakePlanSentinel());
    ins.push_back(Instruction::MakePlanHead(
        plan.num_slots, plan.level_safe ? kPlanFlagLevelSafe : 0));
    for (uint64_t v = 1; v <= num_values; v += 2)
        ins.push_back(Instruction::MakePlanSlots(
            plan.slot_of[v],
            v + 1 <= num_values ? plan.slot_of[v + 1] : kIndexAllOnes));
    return FromInstructions(std::move(ins), error);
}

void Program::Serialize(std::ostream& os) const {
    for (const Instruction& i : instructions_) {
        char buf[16];
        for (int b = 0; b < 8; ++b) {
            buf[b] = static_cast<char>((i.lo >> (8 * b)) & 0xFF);
            buf[8 + b] = static_cast<char>((i.hi >> (8 * b)) & 0xFF);
        }
        os.write(buf, 16);
    }
}

std::optional<Program> Program::Deserialize(std::istream& is,
                                            std::string* error) {
    std::vector<Instruction> ins;
    char buf[16];
    while (is.read(buf, 16)) {
        Instruction i;
        for (int b = 0; b < 8; ++b) {
            i.lo |= static_cast<uint64_t>(static_cast<uint8_t>(buf[b]))
                    << (8 * b);
            i.hi |= static_cast<uint64_t>(static_cast<uint8_t>(buf[8 + b]))
                    << (8 * b);
        }
        ins.push_back(i);
    }
    if (is.gcount() != 0) {
        Fail(error, "trailing bytes: file size is not a multiple of 16");
        return std::nullopt;
    }
    return FromInstructions(std::move(ins), error);
}

bool Program::SaveToFile(const std::string& path) const {
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    Serialize(f);
    return static_cast<bool>(f);
}

std::optional<Program> Program::LoadFromFile(const std::string& path,
                                             std::string* error) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        Fail(error, "cannot open " + path);
        return std::nullopt;
    }
    return Deserialize(f, error);
}

std::string Program::Disassemble() const {
    std::ostringstream os;
    bool in_plan = false;
    for (uint64_t pos = 0; pos < instructions_.size(); ++pos) {
        if (IsLutGate(pos)) {
            const DecodedLut l = LutAt(pos);
            os << pos << ": LUT table=0x" << std::hex << l.table << std::dec
               << " lo=" << l.lo
               << " out_bits=" << static_cast<int>(l.out_bits);
            for (const auto& [in, w] : l.operands)
                os << " " << static_cast<int>(w) << "*v" << in;
            os << "\n";
            continue;
        }
        // Multibit programs keep the packed operand table after the
        // outputs; print it as such rather than as a wide trailer (the
        // records share the 0xE nibble). Plan-trailer records (after the
        // sentinel) keep the generic printing.
        const Instruction& ins = instructions_[pos];
        if (ins.Input0() == kIndexAllOnes && ins.Input1() == kIndexAllOnes &&
            ins.Kind(pos) == InstructionKind::kWide)
            in_plan = true;
        if (message_modulus_ != 0 && !in_plan &&
            ins.Kind(pos) == InstructionKind::kWide) {
            if (ins.Input0() == kIndexAllOnes) {
                os << pos << ": LUTOPS " << ins.Input1() << " entries\n";
            } else {
                os << pos << ": LUTOPS";
                for (const uint64_t e : {ins.Input0(), ins.Input1()}) {
                    if (e == kIndexAllOnes) continue;  // Odd-count padding.
                    os << " "
                       << static_cast<int32_t>(e >> kLutOperandIndexBits) -
                              128
                       << "*v" << (e & kLutOperandIndexMask);
                }
                os << "\n";
            }
            continue;
        }
        os << ins.ToString(pos) << "\n";
    }
    return os.str();
}

}  // namespace pytfhe::pasm
