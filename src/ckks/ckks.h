/**
 * @file
 * CKKS-lite: a minimal word-wise (approximate-arithmetic) FHE scheme.
 *
 * Section II-C of the paper contrasts TFHE with word-wise schemes like
 * CKKS: word-wise schemes batch a vector of fixed-point numbers per
 * ciphertext and evaluate element-wise add/mult and cyclic rotations
 * efficiently, but have no direct access to individual elements, support
 * non-linear functions only through polynomial approximation, and need
 * per-step rotation keys that dwarf TFHE's public key. This module
 * implements enough of CKKS to measure those claims
 * (bench_ablation_schemes) rather than argue them qualitatively.
 *
 * Scope (documented simplifications):
 *  - power-of-two modulus chain (q = 2^k) with exact shift-based rescale;
 *    this is a *model* of RNS-CKKS arithmetic, not a hardened parameter
 *    set — like ToyParams, it is for study, not deployment;
 *  - symmetric encryption (the cloud scenario's client encrypts);
 *  - O(N^2) canonical embedding and negacyclic multiplication (plain
 *    loops; N stays small);
 *  - relinearization and rotation key-switching via base-2^w digit
 *    decomposition;
 *  - slots ordered along the 5^j orbit so Rotate(k) is the automorphism
 *    X -> X^(5^k).
 */
#ifndef PYTFHE_CKKS_CKKS_H
#define PYTFHE_CKKS_CKKS_H

#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "tfhe/rng.h"

namespace pytfhe::ckks {

/** Scheme parameters. */
struct CkksParams {
    int32_t n = 64;          ///< Ring degree (power of two); N/2 slots.
    int32_t log_q0 = 62;     ///< Top modulus bits.
    int32_t log_scale = 18;  ///< Encoding scale bits (Delta = 2^log_scale).
    /** Key-switching decomposition base bits. A tiny base keeps the
     *  key-switch noise far below the scale — important because rotation
     *  outputs sit at scale Delta, not Delta^2. */
    int32_t ks_digit_bits = 2;
    double noise_stddev = 3.2;   ///< Fresh error, in coefficient units.

    int32_t NumSlots() const { return n / 2; }
    /** Rescales (= multiplicative depth) the modulus chain supports:
     *  rescale requires log_q >= 2*log_scale beforehand. */
    int32_t MaxDepth() const {
        return (log_q0 - 2 * log_scale) / log_scale + 1;
    }
};

/** A ring element: n coefficients, stored mod 2^log_q. */
using Poly = std::vector<uint64_t>;

/** A CKKS ciphertext (c0, c1) at some point in the modulus chain. */
struct CkksCiphertext {
    Poly c0, c1;
    int32_t log_q;   ///< Current modulus bits.
    double scale;    ///< Message scale (Delta^k during multiplication).
};

/** The scheme context: keys plus the operations. */
class CkksContext {
  public:
    CkksContext(const CkksParams& params, tfhe::Rng& rng);

    const CkksParams& params() const { return params_; }

    /** Encodes N/2 real slots into a plaintext polynomial at scale Delta. */
    Poly Encode(const std::vector<double>& slots) const;
    /** Decodes a plaintext polynomial (at the given scale/modulus). */
    std::vector<double> Decode(const Poly& plain, double scale,
                               int32_t log_q) const;

    CkksCiphertext Encrypt(const std::vector<double>& slots, tfhe::Rng& rng);
    std::vector<double> Decrypt(const CkksCiphertext& ct) const;

    /** Element-wise addition (scales and moduli must match). */
    CkksCiphertext Add(const CkksCiphertext& a, const CkksCiphertext& b) const;
    CkksCiphertext Sub(const CkksCiphertext& a, const CkksCiphertext& b) const;

    /** Element-wise multiplication with relinearization (scale squares). */
    CkksCiphertext Mul(const CkksCiphertext& a, const CkksCiphertext& b) const;

    /** Multiplication by a plaintext slot vector. */
    CkksCiphertext MulPlain(const CkksCiphertext& a,
                            const std::vector<double>& slots) const;
    /** Addition of a plaintext slot vector. */
    CkksCiphertext AddPlain(const CkksCiphertext& a,
                            const std::vector<double>& slots) const;

    /** Drops one scale level: divides by Delta, shrinking the modulus. */
    CkksCiphertext Rescale(const CkksCiphertext& a) const;

    /**
     * Cyclic left rotation of the slot vector by `steps`. Requires the
     * per-step rotation key generated at construction (or via
     * EnsureRotationKey).
     */
    CkksCiphertext Rotate(const CkksCiphertext& a, int32_t steps);

    /** Generates (and caches) the rotation key for `steps`. */
    void EnsureRotationKey(int32_t steps, tfhe::Rng& rng);

    /** Sum of all slots via log2(slots) rotations (needs those keys). */
    CkksCiphertext SumSlots(const CkksCiphertext& a, tfhe::Rng& rng);

    /** Bytes of key-switching material currently held (Section II-C's
     *  rotation-key-size argument). */
    size_t RotationKeyBytes() const;
    size_t RelinKeyBytes() const;

  private:
    struct KsKey {
        /** Per digit i: (b_i, a_i) with b_i = -a_i s + e + 2^(w i) s'. */
        std::vector<std::pair<Poly, Poly>> digits;
    };

    KsKey MakeKsKey(const Poly& target_secret, tfhe::Rng& rng) const;
    /** Key-switches a (poly under s') contribution back to s. */
    void ApplyKsKey(const KsKey& key, const Poly& c_prime, Poly& c0,
                    Poly& c1, int32_t log_q) const;
    /** The automorphism X -> X^g on a polynomial. */
    Poly Automorphism(const Poly& p, int64_t g) const;

    CkksParams params_;
    Poly secret_;                ///< Ternary secret key.
    KsKey relin_key_;            ///< Key for s^2 -> s.
    std::map<int32_t, KsKey> rotation_keys_;
    std::vector<std::complex<double>> roots_;  ///< zeta^(5^j) per slot.
    std::vector<int64_t> galois_;              ///< 5^j mod 4n table.
};

}  // namespace pytfhe::ckks

#endif  // PYTFHE_CKKS_CKKS_H
