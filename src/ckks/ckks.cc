#include "ckks/ckks.h"

#include <cassert>
#include <cmath>

namespace pytfhe::ckks {

namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t MaskOf(int32_t log_q) {
    return log_q >= 64 ? ~UINT64_C(0) : (UINT64_C(1) << log_q) - 1;
}

/** Centered representative of v mod 2^log_q. */
int64_t Center(uint64_t v, int32_t log_q) {
    const uint64_t mask = MaskOf(log_q);
    v &= mask;
    if (log_q < 64 && v >= (UINT64_C(1) << (log_q - 1)))
        return static_cast<int64_t>(v) - static_cast<int64_t>(mask) - 1;
    return static_cast<int64_t>(v);
}

void AddInto(Poly& a, const Poly& b, uint64_t mask) {
    for (size_t i = 0; i < a.size(); ++i) a[i] = (a[i] + b[i]) & mask;
}

void SubInto(Poly& a, const Poly& b, uint64_t mask) {
    for (size_t i = 0; i < a.size(); ++i) a[i] = (a[i] - b[i]) & mask;
}

/**
 * Negacyclic product mod 2^log_q. Power-of-two moduli make this exact with
 * plain wrapping uint64 arithmetic plus a final mask.
 */
Poly NegacyclicMul(const Poly& a, const Poly& b, int32_t log_q) {
    const size_t n = a.size();
    const uint64_t mask = MaskOf(log_q);
    Poly out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t ai = a[i];
        if (ai == 0) continue;
        for (size_t j = 0; j < n; ++j) {
            const uint64_t term = ai * b[j];
            const size_t k = i + j;
            if (k < n) {
                out[k] += term;
            } else {
                out[k - n] -= term;
            }
        }
    }
    for (auto& c : out) c &= mask;
    return out;
}

/** Signed value stored mod 2^log_q. */
uint64_t FromSigned(int64_t v, uint64_t mask) {
    return static_cast<uint64_t>(v) & mask;
}

}  // namespace

CkksContext::CkksContext(const CkksParams& params, tfhe::Rng& rng)
    : params_(params) {
    const int32_t n = params.n;
    assert(n >= 8 && (n & (n - 1)) == 0);
    assert(params.log_q0 <= 62);

    // Ternary secret.
    secret_.resize(n);
    const uint64_t mask = MaskOf(params.log_q0);
    for (auto& c : secret_)
        c = FromSigned(static_cast<int64_t>(rng.UniformBelow(3)) - 1, mask);

    // Slot roots along the 5^j orbit: zeta^(5^j), zeta = exp(i pi / n).
    const int32_t slots = params.NumSlots();
    roots_.resize(slots);
    galois_.resize(slots);
    int64_t e = 1;
    for (int32_t j = 0; j < slots; ++j) {
        galois_[j] = e;
        roots_[j] = std::exp(std::complex<double>(
            0.0, 2.0 * kPi * static_cast<double>(e) / (2.0 * n)));
        e = (e * 5) % (2 * n);
    }

    // Relinearization key: s^2 -> s.
    relin_key_ = MakeKsKey(NegacyclicMul(secret_, secret_, params.log_q0),
                           rng);
}

Poly CkksContext::Encode(const std::vector<double>& slots) const {
    const int32_t n = params_.n;
    const int32_t num_slots = params_.NumSlots();
    assert(static_cast<int32_t>(slots.size()) == num_slots);
    const double scale = std::pow(2.0, params_.log_scale);
    const uint64_t mask = MaskOf(params_.log_q0);
    Poly out(n);
    for (int32_t k = 0; k < n; ++k) {
        double acc = 0;
        for (int32_t j = 0; j < num_slots; ++j) {
            // Re(z_j * conj(root_j^k)).
            const std::complex<double> w = std::pow(roots_[j], -k);
            acc += slots[j] * w.real();
        }
        const double coef = 2.0 * acc / n * scale;
        out[k] = FromSigned(std::llround(coef), mask);
    }
    return out;
}

std::vector<double> CkksContext::Decode(const Poly& plain, double scale,
                                        int32_t log_q) const {
    const int32_t num_slots = params_.NumSlots();
    std::vector<double> out(num_slots);
    for (int32_t j = 0; j < num_slots; ++j) {
        std::complex<double> acc = 0;
        std::complex<double> w = 1;
        for (size_t k = 0; k < plain.size(); ++k) {
            acc += static_cast<double>(Center(plain[k], log_q)) * w;
            w *= roots_[j];
        }
        out[j] = acc.real() / scale;
    }
    return out;
}

CkksCiphertext CkksContext::Encrypt(const std::vector<double>& slots,
                                    tfhe::Rng& rng) {
    const int32_t n = params_.n;
    const uint64_t mask = MaskOf(params_.log_q0);
    CkksCiphertext ct;
    ct.log_q = params_.log_q0;
    ct.scale = std::pow(2.0, params_.log_scale);
    ct.c1.resize(n);
    for (auto& c : ct.c1) c = rng.Uniform64() & mask;
    // c0 = -c1*s + m + e.
    ct.c0 = NegacyclicMul(ct.c1, secret_, ct.log_q);
    for (auto& c : ct.c0) c = (~c + 1) & mask;  // Negate.
    const Poly m = Encode(slots);
    for (int32_t i = 0; i < n; ++i) {
        const int64_t noise = std::llround(
            rng.GaussianDouble(params_.noise_stddev));
        ct.c0[i] = (ct.c0[i] + m[i] + FromSigned(noise, mask)) & mask;
    }
    return ct;
}

std::vector<double> CkksContext::Decrypt(const CkksCiphertext& ct) const {
    Poly m = NegacyclicMul(ct.c1, secret_, ct.log_q);
    AddInto(m, ct.c0, MaskOf(ct.log_q));
    return Decode(m, ct.scale, ct.log_q);
}

CkksCiphertext CkksContext::Add(const CkksCiphertext& a,
                                const CkksCiphertext& b) const {
    assert(a.log_q == b.log_q);
    assert(std::abs(a.scale - b.scale) < 1e-6 * a.scale);
    CkksCiphertext out = a;
    AddInto(out.c0, b.c0, MaskOf(a.log_q));
    AddInto(out.c1, b.c1, MaskOf(a.log_q));
    return out;
}

CkksCiphertext CkksContext::Sub(const CkksCiphertext& a,
                                const CkksCiphertext& b) const {
    assert(a.log_q == b.log_q);
    CkksCiphertext out = a;
    SubInto(out.c0, b.c0, MaskOf(a.log_q));
    SubInto(out.c1, b.c1, MaskOf(a.log_q));
    return out;
}

CkksCiphertext CkksContext::Mul(const CkksCiphertext& a,
                                const CkksCiphertext& b) const {
    assert(a.log_q == b.log_q);
    const int32_t log_q = a.log_q;
    CkksCiphertext out;
    out.log_q = log_q;
    out.scale = a.scale * b.scale;
    out.c0 = NegacyclicMul(a.c0, b.c0, log_q);
    Poly d1 = NegacyclicMul(a.c0, b.c1, log_q);
    AddInto(d1, NegacyclicMul(a.c1, b.c0, log_q), MaskOf(log_q));
    out.c1 = std::move(d1);
    const Poly d2 = NegacyclicMul(a.c1, b.c1, log_q);
    ApplyKsKey(relin_key_, d2, out.c0, out.c1, log_q);
    return out;
}

CkksCiphertext CkksContext::MulPlain(const CkksCiphertext& a,
                                     const std::vector<double>& slots) const {
    const Poly m = Encode(slots);
    CkksCiphertext out;
    out.log_q = a.log_q;
    out.scale = a.scale * std::pow(2.0, params_.log_scale);
    out.c0 = NegacyclicMul(a.c0, m, a.log_q);
    out.c1 = NegacyclicMul(a.c1, m, a.log_q);
    return out;
}

CkksCiphertext CkksContext::AddPlain(const CkksCiphertext& a,
                                     const std::vector<double>& slots) const {
    // Re-encode at the ciphertext's current scale.
    const double ratio = a.scale / std::pow(2.0, params_.log_scale);
    std::vector<double> scaled = slots;
    for (auto& v : scaled) v *= ratio;
    const Poly m = Encode(scaled);
    CkksCiphertext out = a;
    AddInto(out.c0, m, MaskOf(a.log_q));
    return out;
}

CkksCiphertext CkksContext::Rescale(const CkksCiphertext& a) const {
    const int32_t ls = params_.log_scale;
    assert(a.log_q - ls >= ls && "modulus chain exhausted");
    CkksCiphertext out;
    out.log_q = a.log_q - ls;
    out.scale = a.scale / std::pow(2.0, ls);
    const uint64_t new_mask = MaskOf(out.log_q);
    const int64_t half = INT64_C(1) << (ls - 1);
    out.c0.resize(a.c0.size());
    out.c1.resize(a.c1.size());
    for (size_t i = 0; i < a.c0.size(); ++i) {
        out.c0[i] = FromSigned((Center(a.c0[i], a.log_q) + half) >> ls,
                               new_mask);
        out.c1[i] = FromSigned((Center(a.c1[i], a.log_q) + half) >> ls,
                               new_mask);
    }
    return out;
}

CkksContext::KsKey CkksContext::MakeKsKey(const Poly& target_secret,
                                          tfhe::Rng& rng) const {
    const int32_t w = params_.ks_digit_bits;
    const int32_t digits = (params_.log_q0 + w - 1) / w;
    const uint64_t mask = MaskOf(params_.log_q0);
    KsKey key;
    key.digits.resize(digits);
    for (int32_t i = 0; i < digits; ++i) {
        Poly ai(params_.n);
        for (auto& c : ai) c = rng.Uniform64() & mask;
        Poly bi = NegacyclicMul(ai, secret_, params_.log_q0);
        for (auto& c : bi) c = (~c + 1) & mask;  // -a*s.
        for (int32_t k = 0; k < params_.n; ++k) {
            const int64_t noise =
                std::llround(rng.GaussianDouble(params_.noise_stddev));
            const uint64_t gadget =
                (target_secret[k] << (w * i)) & mask;
            bi[k] = (bi[k] + gadget + FromSigned(noise, mask)) & mask;
        }
        key.digits[i] = {std::move(bi), std::move(ai)};
    }
    return key;
}

void CkksContext::ApplyKsKey(const KsKey& key, const Poly& c_prime, Poly& c0,
                             Poly& c1, int32_t log_q) const {
    // Keys live at the top modulus; reducing them mod the ciphertext's
    // modulus keeps the gadget relation valid on the power-of-two chain,
    // and the centered decomposition below must use the ciphertext's own
    // modulus so wrapped negatives stay small.
    const int32_t w = params_.ks_digit_bits;
    const int32_t n = params_.n;

    // Centered base-2^w decomposition of every coefficient.
    const int32_t digits = static_cast<int32_t>(key.digits.size());
    std::vector<Poly> dec(digits, Poly(n, 0));
    const int64_t base = INT64_C(1) << w;
    const uint64_t mask = MaskOf(log_q);
    for (int32_t k = 0; k < n; ++k) {
        int64_t v = Center(c_prime[k] & mask, log_q);
        for (int32_t i = 0; i < digits; ++i) {
            int64_t d = v % base;
            v /= base;
            if (d >= base / 2) {
                d -= base;
                v += 1;
            } else if (d < -base / 2) {
                d += base;
                v -= 1;
            }
            dec[i][k] = FromSigned(d, mask);
        }
    }
    const uint64_t out_mask = MaskOf(log_q);
    for (int32_t i = 0; i < digits; ++i) {
        AddInto(c0, NegacyclicMul(dec[i], key.digits[i].first, log_q),
                out_mask);
        AddInto(c1, NegacyclicMul(dec[i], key.digits[i].second, log_q),
                out_mask);
    }
}

Poly CkksContext::Automorphism(const Poly& p, int64_t g) const {
    const int32_t n = params_.n;
    Poly out(n, 0);
    const uint64_t mask = ~UINT64_C(0);
    for (int32_t k = 0; k < n; ++k) {
        const int64_t t = (static_cast<int64_t>(k) * g) % (2 * n);
        if (t < n) {
            out[t] = (out[t] + p[k]) & mask;
        } else {
            out[t - n] = (out[t - n] - p[k]) & mask;
        }
    }
    return out;
}

void CkksContext::EnsureRotationKey(int32_t steps, tfhe::Rng& rng) {
    const int32_t slots = params_.NumSlots();
    steps = ((steps % slots) + slots) % slots;
    if (steps == 0 || rotation_keys_.count(steps)) return;
    const int64_t g = galois_[steps];
    rotation_keys_.emplace(steps,
                           MakeKsKey(Automorphism(secret_, g), rng));
}

CkksCiphertext CkksContext::Rotate(const CkksCiphertext& a, int32_t steps) {
    const int32_t slots = params_.NumSlots();
    steps = ((steps % slots) + slots) % slots;
    if (steps == 0) return a;
    assert(rotation_keys_.count(steps) &&
           "call EnsureRotationKey(steps) first");
    const int64_t g = galois_[steps];
    const uint64_t mask = MaskOf(a.log_q);

    CkksCiphertext out;
    out.log_q = a.log_q;
    out.scale = a.scale;
    out.c0 = Automorphism(a.c0, g);
    for (auto& c : out.c0) c &= mask;
    Poly c1_prime = Automorphism(a.c1, g);
    for (auto& c : c1_prime) c &= mask;
    out.c1.assign(params_.n, 0);
    ApplyKsKey(rotation_keys_.at(steps), c1_prime, out.c0, out.c1, a.log_q);
    for (auto& c : out.c0) c &= mask;
    for (auto& c : out.c1) c &= mask;
    return out;
}

CkksCiphertext CkksContext::SumSlots(const CkksCiphertext& a,
                                     tfhe::Rng& rng) {
    CkksCiphertext acc = a;
    for (int32_t shift = 1; shift < params_.NumSlots(); shift *= 2) {
        EnsureRotationKey(shift, rng);
        acc = Add(acc, Rotate(acc, shift));
    }
    return acc;
}

size_t CkksContext::RotationKeyBytes() const {
    size_t total = 0;
    for (const auto& [steps, key] : rotation_keys_)
        total += key.digits.size() * 2 * params_.n * sizeof(uint64_t);
    return total;
}

size_t CkksContext::RelinKeyBytes() const {
    return relin_key_.digits.size() * 2 * params_.n * sizeof(uint64_t);
}

}  // namespace pytfhe::ckks
