/**
 * @file
 * Workload registry: every benchmark of the paper's evaluation, by name,
 * with lazy circuit construction.
 *
 * Problem sizes: the 18 VIP-Bench kernels use VIP-Bench's small fixed
 * sizes. The neural workloads are configurable; the default BenchScale
 * uses the full 28x28 MNIST at Fixed(8,8) and scaled-down attention
 * configurations (documented in EXPERIMENTS.md) so that circuit
 * construction fits workstation memory. The relative ordering
 * (MNIST_S < M < L < Attention_S < Attention_L in gate count) matches the
 * paper's Fig. 10 sort order.
 */
#ifndef PYTFHE_VIP_REGISTRY_H
#define PYTFHE_VIP_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace pytfhe::vip {

/** One registered workload. */
struct Workload {
    std::string name;
    /** Builds the (unoptimized-input) circuit; run Optimize + Assemble. */
    std::function<circuit::Netlist()> build;
    bool is_neural = false;
};

/** Scaling knobs for the neural workloads. */
struct BenchScale {
    int64_t mnist_image = 16;      ///< Paper: 28 (scaled for bench time;
                                   ///< pass 28 for the full network).
    int64_t attention_seq = 4;     ///< Paper: 16 (scaled for memory).
    int64_t attention_hidden_s = 16;  ///< Paper: 32.
    int64_t attention_hidden_l = 32;  ///< Paper: 64.
};

/** The 18 VIP-Bench kernels. */
std::vector<Workload> VipWorkloads();

/** Workloads beyond the paper's set (e.g. the TEA block cipher). */
std::vector<Workload> ExtraWorkloads();

/** MNIST_S/M/L and Attention_S/L. */
std::vector<Workload> NeuralWorkloads(const BenchScale& scale = {});

/** Everything, VIP kernels first. */
std::vector<Workload> AllWorkloads(const BenchScale& scale = {});

/** Looks a workload up by name; aborts with a message if missing. */
Workload FindWorkload(const std::string& name,
                      const BenchScale& scale = {});

}  // namespace pytfhe::vip

#endif  // PYTFHE_VIP_REGISTRY_H
