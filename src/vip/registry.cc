#include "vip/registry.h"

#include <cstdio>
#include <cstdlib>

#include "nn/models.h"
#include "vip/benchmarks.h"

namespace pytfhe::vip {

namespace {

using nn::Builder;
using nn::DType;
using nn::Tensor;

circuit::Netlist BuildMnist(int64_t kernels, int64_t image) {
    nn::MnistConfig cfg;
    cfg.image = image;
    cfg.seed = 1;
    auto model = kernels == 1 ? nn::MnistS(cfg)
                              : (kernels == 2 ? nn::MnistM(cfg)
                                              : nn::MnistL(cfg));
    Builder b;
    Tensor in = Tensor::Input(b, DType::Fixed(8, 8),
                              nn::MnistInputShape(cfg), "image");
    model->Forward(b, in).Output(b, "logits");
    return std::move(b.netlist());
}

circuit::Netlist BuildAttention(int64_t seq, int64_t hidden) {
    nn::SelfAttention attn(seq, hidden);
    attn.InitRandom(1);
    Builder b;
    Tensor in = Tensor::Input(b, DType::Float(5, 6), {seq, hidden}, "x");
    attn.Forward(b, in).Output(b, "y");
    return std::move(b.netlist());
}

}  // namespace

std::vector<Workload> VipWorkloads() {
    return {
        {"Hamming", BuildHammingDistance},
        {"Parrondo", BuildParrondo},
        {"Fibonacci", BuildFibonacci},
        {"MinMaxMean", BuildMinMaxMean},
        {"Primality", BuildPrimality},
        {"GradientDescent", BuildGradientDescent},
        {"EulerApprox", BuildEulerApprox},
        {"FilteredQuery", BuildFilteredQuery},
        {"Kadane", BuildKadane},
        {"Distinctness", BuildDistinctness},
        {"DotProduct", BuildDotProduct},
        {"KNN", BuildKnn},
        {"Kepler", BuildKepler},
        {"NRSolver", BuildNrSolver},
        {"BubbleSort", BuildBubbleSort},
        {"EditDistance", BuildEditDistance},
        {"MatrixMultiply", BuildMatrixMultiply},
        {"RobertsCross", BuildRobertsCross},
    };
}

std::vector<Workload> ExtraWorkloads() {
    return {
        {"TEA", BuildTea},
    };
}

std::vector<Workload> NeuralWorkloads(const BenchScale& scale) {
    std::vector<Workload> out;
    out.push_back({"MNIST_S",
                   [=] { return BuildMnist(1, scale.mnist_image); }, true});
    out.push_back({"MNIST_M",
                   [=] { return BuildMnist(2, scale.mnist_image); }, true});
    out.push_back({"MNIST_L",
                   [=] { return BuildMnist(3, scale.mnist_image); }, true});
    out.push_back(
        {"Attention_S",
         [=] { return BuildAttention(scale.attention_seq,
                                     scale.attention_hidden_s); },
         true});
    out.push_back(
        {"Attention_L",
         [=] { return BuildAttention(scale.attention_seq,
                                     scale.attention_hidden_l); },
         true});
    return out;
}

std::vector<Workload> AllWorkloads(const BenchScale& scale) {
    std::vector<Workload> all = VipWorkloads();
    for (auto& w : ExtraWorkloads()) all.push_back(std::move(w));
    for (auto& w : NeuralWorkloads(scale)) all.push_back(std::move(w));
    return all;
}

Workload FindWorkload(const std::string& name, const BenchScale& scale) {
    for (auto& w : AllWorkloads(scale))
        if (w.name == name) return w;
    std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
    std::abort();
}

}  // namespace pytfhe::vip
