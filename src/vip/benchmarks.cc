#include "vip/benchmarks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hdl/value.h"

namespace pytfhe::vip {

namespace {

using hdl::Bits;
using hdl::Builder;
using hdl::DType;
using hdl::Signal;
using hdl::Value;
using circuit::GateType;

/** Fixed(8,8): the VIP-Bench real-number representation used here. */
const DType kFixed = DType::Fixed(8, 8);

/** abs(x) for a signed word. */
Bits Abs(Builder& b, const Bits& x) {
    return hdl::MuxBits(b, x.Msb(), hdl::Neg(b, x), x);
}

/** Unsigned min/max pair. */
std::pair<Bits, Bits> MinMax(Builder& b, const Bits& x, const Bits& y) {
    const Signal lt = hdl::Ult(b, x, y);
    return {hdl::MuxBits(b, lt, x, y), hdl::MuxBits(b, lt, y, x)};
}

Value FixedConst(Builder& b, double v) {
    return hdl::ConstValue(b, kFixed, v);
}

Value FixedInput(Builder& b, const std::string& name) {
    return hdl::InputValue(b, kFixed, name);
}

}  // namespace

// ------------------------------------------------------------------ Hamming

Netlist BuildHammingDistance() {
    Builder b;
    const Bits x = hdl::InputBits(b, 64, "a");
    const Bits y = hdl::InputBits(b, 64, "b");
    const Bits diff = hdl::XorBits(b, x, y);
    hdl::OutputBits(b, hdl::PopCount(b, diff), "distance");
    return std::move(b.netlist());
}

uint64_t RefHammingDistance(uint64_t a, uint64_t b) {
    return static_cast<uint64_t>(__builtin_popcountll(a ^ b));
}

// -------------------------------------------------------------- Bubble sort

Netlist BuildBubbleSort() {
    constexpr int32_t kN = 8, kW = 8;
    Builder b;
    std::vector<Bits> v;
    for (int32_t i = 0; i < kN; ++i)
        v.push_back(hdl::InputBits(b, kW, "v" + std::to_string(i)));
    for (int32_t i = 0; i < kN - 1; ++i) {
        for (int32_t j = 0; j < kN - 1 - i; ++j) {
            auto [lo, hi] = MinMax(b, v[j], v[j + 1]);
            v[j] = lo;
            v[j + 1] = hi;
        }
    }
    for (int32_t i = 0; i < kN; ++i)
        hdl::OutputBits(b, v[i], "s" + std::to_string(i));
    return std::move(b.netlist());
}

std::vector<uint64_t> RefBubbleSort(std::vector<uint64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
}

// ------------------------------------------------------------- Distinctness

Netlist BuildDistinctness() {
    constexpr int32_t kN = 8, kW = 8;
    Builder b;
    std::vector<Bits> v;
    for (int32_t i = 0; i < kN; ++i)
        v.push_back(hdl::InputBits(b, kW, "v" + std::to_string(i)));
    Signal distinct = b.MakeConst(true);
    for (int32_t i = 0; i < kN; ++i)
        for (int32_t j = i + 1; j < kN; ++j)
            distinct = b.MakeGate(GateType::kAnd, distinct,
                                  hdl::Ne(b, v[i], v[j]));
    b.AddOutput(distinct, "distinct");
    return std::move(b.netlist());
}

bool RefDistinctness(const std::vector<uint64_t>& v) {
    for (size_t i = 0; i < v.size(); ++i)
        for (size_t j = i + 1; j < v.size(); ++j)
            if (v[i] == v[j]) return false;
    return true;
}

// -------------------------------------------------------------- Dot product

Netlist BuildDotProduct() {
    constexpr int32_t kN = 16, kW = 8, kAcc = 24;
    Builder b;
    Bits acc = hdl::ConstBits(b, 0, kAcc);
    for (int32_t i = 0; i < kN; ++i) {
        const Bits x = hdl::InputBits(b, kW, "a" + std::to_string(i));
        const Bits y = hdl::InputBits(b, kW, "b" + std::to_string(i));
        acc = hdl::Add(b, acc, hdl::SMul(b, x, y, kAcc));
    }
    hdl::OutputBits(b, acc, "dot");
    return std::move(b.netlist());
}

int64_t RefDotProduct(const std::vector<int64_t>& a,
                      const std::vector<int64_t>& b) {
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

// ---------------------------------------------------------------- Fibonacci

Netlist BuildFibonacci() {
    constexpr int32_t kSteps = 12, kW = 16;
    Builder b;
    Bits f0 = hdl::InputBits(b, kW, "f0");
    Bits f1 = hdl::InputBits(b, kW, "f1");
    for (int32_t i = 0; i < kSteps; ++i) {
        Bits f2 = hdl::Add(b, f0, f1);
        f0 = f1;
        f1 = f2;
    }
    hdl::OutputBits(b, f1, "fib");
    return std::move(b.netlist());
}

uint64_t RefFibonacci(uint64_t f0, uint64_t f1) {
    for (int i = 0; i < 12; ++i) {
        const uint64_t f2 = (f0 + f1) & 0xFFFF;
        f0 = f1;
        f1 = f2;
    }
    return f1;
}

// ----------------------------------------------------------- Filtered query

Netlist BuildFilteredQuery() {
    constexpr int32_t kN = 16, kW = 8, kAcc = 12;
    Builder b;
    const Bits threshold = hdl::InputBits(b, kW, "threshold");
    Bits acc = hdl::ConstBits(b, 0, kAcc);
    for (int32_t i = 0; i < kN; ++i) {
        const Bits key = hdl::InputBits(b, kW, "key" + std::to_string(i));
        const Bits val = hdl::InputBits(b, kW, "val" + std::to_string(i));
        const Signal pass = hdl::Ult(b, threshold, key);  // key > threshold.
        const Bits masked =
            hdl::MaskBits(b, hdl::ZeroExtend(b, val, kAcc), pass);
        acc = hdl::Add(b, acc, masked);
    }
    hdl::OutputBits(b, acc, "sum");
    return std::move(b.netlist());
}

uint64_t RefFilteredQuery(const std::vector<uint64_t>& keys,
                          const std::vector<uint64_t>& values,
                          uint64_t threshold) {
    uint64_t sum = 0;
    for (size_t i = 0; i < keys.size(); ++i)
        if (keys[i] > threshold) sum += values[i];
    return sum & 0xFFF;
}

// ------------------------------------------------------------------- Kadane

Netlist BuildKadane() {
    constexpr int32_t kN = 12, kW = 8, kAcc = 16;
    Builder b;
    Bits cur = hdl::ConstBits(b, 0, kAcc);
    Bits best = hdl::ConstBits(b, 0, kAcc);
    for (int32_t i = 0; i < kN; ++i) {
        const Bits x = hdl::SignExtend(
            b, hdl::InputBits(b, kW, "x" + std::to_string(i)), kAcc);
        const Bits sum = hdl::Add(b, cur, x);
        // cur = max(x, cur + x); best = max(best, cur) — signed maxima.
        cur = hdl::MuxBits(b, hdl::Slt(b, sum, x), x, sum);
        best = hdl::MuxBits(b, hdl::Slt(b, best, cur), cur, best);
    }
    hdl::OutputBits(b, best, "best");
    return std::move(b.netlist());
}

int64_t RefKadane(const std::vector<int64_t>& v) {
    int64_t cur = 0, best = 0;
    for (int64_t x : v) {
        cur = std::max(x, cur + x);
        best = std::max(best, cur);
    }
    return best;
}

// ---------------------------------------------------------------------- KNN

Netlist BuildKnn() {
    constexpr int32_t kN = 8, kW = 8, kD = 10;
    Builder b;
    const Bits qx = hdl::InputBits(b, kW, "qx");
    const Bits qy = hdl::InputBits(b, kW, "qy");
    Bits best_dist;
    Bits best_idx = hdl::ConstBits(b, 0, 3);
    for (int32_t i = 0; i < kN; ++i) {
        const Bits px = hdl::InputBits(b, kW, "px" + std::to_string(i));
        const Bits py = hdl::InputBits(b, kW, "py" + std::to_string(i));
        // L1 distance over sign-extended differences.
        const Bits dx = Abs(b, hdl::Sub(b, hdl::SignExtend(b, px, kD),
                                        hdl::SignExtend(b, qx, kD)));
        const Bits dy = Abs(b, hdl::Sub(b, hdl::SignExtend(b, py, kD),
                                        hdl::SignExtend(b, qy, kD)));
        const Bits dist = hdl::Add(b, dx, dy);
        if (i == 0) {
            best_dist = dist;
        } else {
            const Signal closer = hdl::Ult(b, dist, best_dist);
            best_dist = hdl::MuxBits(b, closer, dist, best_dist);
            best_idx = hdl::MuxBits(
                b, closer, hdl::ConstBits(b, static_cast<uint64_t>(i), 3),
                best_idx);
        }
    }
    hdl::OutputBits(b, best_idx, "nearest");
    return std::move(b.netlist());
}

uint64_t RefKnn(const std::vector<int64_t>& px, const std::vector<int64_t>& py,
                int64_t qx, int64_t qy) {
    uint64_t best = 0;
    int64_t best_dist = INT64_MAX;
    for (size_t i = 0; i < px.size(); ++i) {
        const int64_t d = std::abs(px[i] - qx) + std::abs(py[i] - qy);
        if (d < best_dist) {
            best_dist = d;
            best = i;
        }
    }
    return best;
}

// -------------------------------------------------------------- 4x4 matmul

Netlist BuildMatrixMultiply() {
    constexpr int32_t kN = 4, kW = 8, kAcc = 20;
    Builder b;
    std::vector<Bits> a, c;
    for (int32_t i = 0; i < kN * kN; ++i)
        a.push_back(hdl::InputBits(b, kW, "a" + std::to_string(i)));
    for (int32_t i = 0; i < kN * kN; ++i)
        c.push_back(hdl::InputBits(b, kW, "b" + std::to_string(i)));
    for (int32_t i = 0; i < kN; ++i) {
        for (int32_t j = 0; j < kN; ++j) {
            Bits acc = hdl::ConstBits(b, 0, kAcc);
            for (int32_t k = 0; k < kN; ++k)
                acc = hdl::Add(
                    b, acc, hdl::SMul(b, a[i * kN + k], c[k * kN + j], kAcc));
            hdl::OutputBits(b, acc,
                            "c" + std::to_string(i) + "_" + std::to_string(j));
        }
    }
    return std::move(b.netlist());
}

std::vector<int64_t> RefMatrixMultiply(const std::vector<int64_t>& a,
                                       const std::vector<int64_t>& b) {
    std::vector<int64_t> out(16, 0);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            for (int k = 0; k < 4; ++k)
                out[i * 4 + j] += a[i * 4 + k] * b[k * 4 + j];
    return out;
}

// ------------------------------------------------------------- Min/max/mean

Netlist BuildMinMaxMean() {
    constexpr int32_t kN = 16, kW = 8;
    Builder b;
    std::vector<Bits> v;
    for (int32_t i = 0; i < kN; ++i)
        v.push_back(hdl::InputBits(b, kW, "v" + std::to_string(i)));
    Bits mn = v[0], mx = v[0];
    Bits sum = hdl::ZeroExtend(b, v[0], kW + 4);
    for (int32_t i = 1; i < kN; ++i) {
        auto [lo, hi] = MinMax(b, mn, v[i]);
        mn = lo;
        auto [lo2, hi2] = MinMax(b, mx, v[i]);
        mx = hi2;
        sum = hdl::Add(b, sum, hdl::ZeroExtend(b, v[i], kW + 4));
    }
    hdl::OutputBits(b, mn, "min");
    hdl::OutputBits(b, mx, "max");
    // Mean of 16 values: shift the 12-bit sum right by 4.
    hdl::OutputBits(b, hdl::LshrConst(b, sum, 4).Slice(0, kW), "mean");
    return std::move(b.netlist());
}

std::vector<uint64_t> RefMinMaxMean(const std::vector<uint64_t>& v) {
    uint64_t mn = v[0], mx = v[0], sum = 0;
    for (uint64_t x : v) {
        mn = std::min(mn, x);
        mx = std::max(mx, x);
        sum += x;
    }
    return {mn, mx, (sum / 16) & 0xFF};
}

// ---------------------------------------------------------------- Primality

Netlist BuildPrimality() {
    constexpr int32_t kW = 8;
    Builder b;
    const Bits n = hdl::InputBits(b, kW, "n");
    Signal composite = b.MakeConst(false);
    for (uint64_t d : {2, 3, 5, 7, 11, 13}) {
        const Bits divisor = hdl::ConstBits(b, d, kW);
        const Bits rem = hdl::UDivMod(b, n, divisor).second;
        const Signal divides =
            hdl::Eq(b, rem, hdl::ConstBits(b, 0, kW));
        // Divisible and strictly greater than the divisor.
        const Signal bigger = hdl::Ult(b, divisor, n);
        composite = b.MakeGate(GateType::kOr, composite,
                               b.MakeGate(GateType::kAnd, divides, bigger));
    }
    const Signal gt_one = hdl::Ult(b, hdl::ConstBits(b, 1, kW), n);
    b.AddOutput(b.MakeGate(GateType::kAndYN, gt_one, composite), "prime");
    return std::move(b.netlist());
}

bool RefPrimality(uint64_t n) {
    if (n < 2) return false;
    for (uint64_t d = 2; d * d <= n; ++d)
        if (n % d == 0) return false;
    return true;
}

// ------------------------------------------------------------ Edit distance

Netlist BuildEditDistance() {
    constexpr int32_t kN = 6, kW = 4, kCost = 4;
    Builder b;
    std::vector<Bits> s1, s2;
    for (int32_t i = 0; i < kN; ++i)
        s1.push_back(hdl::InputBits(b, kW, "s1_" + std::to_string(i)));
    for (int32_t i = 0; i < kN; ++i)
        s2.push_back(hdl::InputBits(b, kW, "s2_" + std::to_string(i)));

    // DP over a (kN+1)^2 cost table of kCost-bit words.
    std::vector<std::vector<Bits>> dp(kN + 1, std::vector<Bits>(kN + 1));
    for (int32_t i = 0; i <= kN; ++i) {
        dp[i][0] = hdl::ConstBits(b, static_cast<uint64_t>(i), kCost);
        dp[0][i] = hdl::ConstBits(b, static_cast<uint64_t>(i), kCost);
    }
    for (int32_t i = 1; i <= kN; ++i) {
        for (int32_t j = 1; j <= kN; ++j) {
            const Signal same = hdl::Eq(b, s1[i - 1], s2[j - 1]);
            const Bits del = hdl::Increment(b, dp[i - 1][j]);
            const Bits ins = hdl::Increment(b, dp[i][j - 1]);
            const Bits sub = hdl::MuxBits(b, same, dp[i - 1][j - 1],
                                          hdl::Increment(b, dp[i - 1][j - 1]));
            Bits m = MinMax(b, del, ins).first;
            m = MinMax(b, m, sub).first;
            dp[i][j] = m;
        }
    }
    hdl::OutputBits(b, dp[kN][kN], "distance");
    return std::move(b.netlist());
}

uint64_t RefEditDistance(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b) {
    const size_t n = a.size(), m = b.size();
    std::vector<std::vector<uint64_t>> dp(n + 1,
                                          std::vector<uint64_t>(m + 1, 0));
    for (size_t i = 0; i <= n; ++i) dp[i][0] = i;
    for (size_t j = 0; j <= m; ++j) dp[0][j] = j;
    for (size_t i = 1; i <= n; ++i)
        for (size_t j = 1; j <= m; ++j)
            dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                                 dp[i - 1][j - 1] +
                                     (a[i - 1] == b[j - 1] ? 0 : 1)});
    return dp[n][m];
}

// ------------------------------------------------------------ Euler approx

Netlist BuildEulerApprox() {
    // Truncated Taylor series of e^x at an encrypted x, via Horner's rule:
    // strictly serial, like VIP-Bench's iterative approximations.
    constexpr int32_t kTerms = 8;
    Builder b;
    const Value x = FixedInput(b, "x");
    double factorial = 1;
    for (int32_t k = 1; k < kTerms; ++k) factorial *= k;
    Value acc = FixedConst(b, 1.0 / factorial);
    for (int32_t k = kTerms - 2; k >= 0; --k) {
        double f = 1;
        for (int32_t i = 1; i <= k; ++i) f *= i;
        acc = hdl::VAdd(b, hdl::VMul(b, acc, x), FixedConst(b, 1.0 / f));
    }
    hdl::OutputValue(b, acc, "exp_x");
    return std::move(b.netlist());
}

double RefEulerApprox(double x) {
    constexpr int32_t kTerms = 8;
    auto q = [](double v) { return DType::Fixed(8, 8).Quantize(v); };
    double factorial = 1;
    for (int32_t k = 1; k < kTerms; ++k) factorial *= k;
    double acc = q(1.0 / factorial);
    for (int32_t k = kTerms - 2; k >= 0; --k) {
        double f = 1;
        for (int32_t i = 1; i <= k; ++i) f *= i;
        acc = q(q(acc * x) + q(1.0 / f));
    }
    return acc;
}

// ------------------------------------------------------------------ NR sqrt

Netlist BuildNrSolver() {
    constexpr int32_t kIters = 6;
    Builder b;
    const Value a = FixedInput(b, "a");
    Value x = FixedConst(b, 1.0);
    for (int32_t i = 0; i < kIters; ++i) {
        const Value quotient = hdl::VDiv(b, a, x);
        x = hdl::VMul(b, hdl::VAdd(b, x, quotient), FixedConst(b, 0.5));
    }
    hdl::OutputValue(b, x, "sqrt_a");
    return std::move(b.netlist());
}

double RefNrSolver(double a) {
    const DType t = DType::Fixed(8, 8);
    auto q = [&](double v) { return t.Quantize(v); };
    a = q(a);
    double x = 1.0;
    for (int32_t i = 0; i < 6; ++i) {
        // Fixed-point division truncates toward zero at 8 fractional bits.
        const double quotient =
            std::trunc((a / x) * 256.0) / 256.0;
        x = q(q(x + quotient) * 0.5);
    }
    return x;
}

// --------------------------------------------------------- Gradient descent

Netlist BuildGradientDescent() {
    constexpr int32_t kIters = 6;
    Builder b;
    const Value c = FixedInput(b, "target");
    Value x = FixedInput(b, "x0");
    for (int32_t i = 0; i < kIters; ++i) {
        // x <- x - 0.25 * 2 (x - c) = 0.5 x + 0.5 c.
        const Value half_x = hdl::VMul(b, x, FixedConst(b, 0.5));
        const Value half_c = hdl::VMul(b, c, FixedConst(b, 0.5));
        x = hdl::VAdd(b, half_x, half_c);
    }
    hdl::OutputValue(b, x, "x");
    return std::move(b.netlist());
}

double RefGradientDescent(double x0, double c) {
    const DType t = DType::Fixed(8, 8);
    auto q = [&](double v) { return t.Quantize(v); };
    double x = q(x0);
    c = q(c);
    for (int32_t i = 0; i < 6; ++i) {
        // Fixed-point multiply truncates; mirror VMul's arithmetic.
        const double hx = std::floor(x * 0.5 * 256.0) / 256.0;
        const double hc = std::floor(c * 0.5 * 256.0) / 256.0;
        x = q(hx + hc);
    }
    return x;
}

// ------------------------------------------------------------------- Kepler

Netlist BuildKepler() {
    constexpr int32_t kIters = 4;
    Builder b;
    const Value m = FixedInput(b, "mean_anomaly");
    const Value e = FixedInput(b, "eccentricity");
    Value big_e = m;
    const Value sixth = FixedConst(b, 1.0 / 6.0);
    for (int32_t i = 0; i < kIters; ++i) {
        // sin(E) ~= E - E^3/6.
        const Value e2 = hdl::VMul(b, big_e, big_e);
        const Value e3 = hdl::VMul(b, e2, big_e);
        const Value sin_e =
            hdl::VSub(b, big_e, hdl::VMul(b, e3, sixth));
        big_e = hdl::VAdd(b, m, hdl::VMul(b, e, sin_e));
    }
    hdl::OutputValue(b, big_e, "eccentric_anomaly");
    return std::move(b.netlist());
}

double RefKepler(double mean_anomaly, double eccentricity) {
    const DType t = DType::Fixed(8, 8);
    auto q = [&](double v) { return t.Quantize(v); };
    auto fmul = [&](double x, double y) {
        return std::floor(x * y * 256.0 + 1e-12) / 256.0;
    };
    const double m = q(mean_anomaly), e = q(eccentricity);
    const double sixth = q(1.0 / 6.0);
    double big_e = m;
    for (int32_t i = 0; i < 4; ++i) {
        const double e2 = fmul(big_e, big_e);
        const double e3 = fmul(e2, big_e);
        const double sin_e = q(big_e - fmul(e3, sixth));
        big_e = q(m + fmul(e, sin_e));
    }
    return big_e;
}

// ----------------------------------------------------------------- Parrondo

Netlist BuildParrondo() {
    constexpr int32_t kRounds = 16, kW = 8;
    Builder b;
    Bits capital = hdl::ConstBits(b, 32, kW);
    const Bits three = hdl::ConstBits(b, 3, kW);
    for (int32_t i = 0; i < kRounds; ++i) {
        const Signal coin = b.MakeInput("coin" + std::to_string(i));
        Signal win;
        if (i % 2 == 0) {
            win = coin;  // Game A: fair-ish coin.
        } else {
            // Game B: win only when capital is not a multiple of 3.
            const Bits rem = hdl::UDivMod(b, capital, three).second;
            const Signal mult3 = hdl::Eq(b, rem, hdl::ConstBits(b, 0, kW));
            win = b.MakeGate(GateType::kAndNY, mult3, coin);
        }
        const Bits up = hdl::Increment(b, capital);
        const Bits down = hdl::Sub(b, capital, hdl::ConstBits(b, 1, kW));
        capital = hdl::MuxBits(b, win, up, down);
    }
    hdl::OutputBits(b, capital, "capital");
    return std::move(b.netlist());
}

int64_t RefParrondo(const std::vector<bool>& coins) {
    int64_t capital = 32;
    for (size_t i = 0; i < coins.size(); ++i) {
        bool win;
        if (i % 2 == 0) {
            win = coins[i];
        } else {
            win = (capital % 3 != 0) && coins[i];
        }
        capital += win ? 1 : -1;
    }
    return capital & 0xFF;
}

// ------------------------------------------------------------ Roberts-Cross

Netlist BuildRobertsCross() {
    constexpr int32_t kSize = 8;
    Builder b;
    std::vector<Value> img;
    for (int32_t i = 0; i < kSize * kSize; ++i)
        img.push_back(FixedInput(b, "p" + std::to_string(i)));
    for (int32_t y = 0; y < kSize - 1; ++y) {
        for (int32_t x = 0; x < kSize - 1; ++x) {
            const Value& p00 = img[y * kSize + x];
            const Value& p01 = img[y * kSize + x + 1];
            const Value& p10 = img[(y + 1) * kSize + x];
            const Value& p11 = img[(y + 1) * kSize + x + 1];
            const Value gx = hdl::VSub(b, p00, p11);
            const Value gy = hdl::VSub(b, p10, p01);
            const Bits mag = hdl::Add(b, Abs(b, gx.bits), Abs(b, gy.bits));
            hdl::OutputBits(
                b, mag, "e" + std::to_string(y) + "_" + std::to_string(x));
        }
    }
    return std::move(b.netlist());
}

std::vector<double> RefRobertsCross(const std::vector<double>& image) {
    constexpr int32_t kSize = 8;
    const DType t = DType::Fixed(8, 8);
    std::vector<double> out;
    for (int32_t y = 0; y < kSize - 1; ++y) {
        for (int32_t x = 0; x < kSize - 1; ++x) {
            const double p00 = t.Quantize(image[y * kSize + x]);
            const double p01 = t.Quantize(image[y * kSize + x + 1]);
            const double p10 = t.Quantize(image[(y + 1) * kSize + x]);
            const double p11 = t.Quantize(image[(y + 1) * kSize + x + 1]);
            out.push_back(std::abs(p00 - p11) + std::abs(p10 - p01));
        }
    }
    return out;
}

// ---------------------------------------------------------------------- TEA

Netlist BuildTea() {
    constexpr uint32_t kDelta = 0x9E3779B9;
    constexpr int32_t kRounds = 32;
    Builder b;
    Bits v0 = hdl::InputBits(b, 32, "v0");
    Bits v1 = hdl::InputBits(b, 32, "v1");
    std::vector<Bits> k;
    for (int i = 0; i < 4; ++i)
        k.push_back(hdl::InputBits(b, 32, "k" + std::to_string(i)));

    uint32_t sum = 0;
    for (int32_t r = 0; r < kRounds; ++r) {
        sum += kDelta;  // Public round constant: folds at compile time.
        const Bits sum_c = hdl::ConstBits(b, sum, 32);
        {
            const Bits t0 = hdl::Add(b, hdl::ShlConst(b, v1, 4), k[0]);
            const Bits t1 = hdl::Add(b, v1, sum_c);
            const Bits t2 = hdl::Add(b, hdl::LshrConst(b, v1, 5), k[1]);
            v0 = hdl::Add(b, v0, hdl::XorBits(b, hdl::XorBits(b, t0, t1), t2));
        }
        {
            const Bits t0 = hdl::Add(b, hdl::ShlConst(b, v0, 4), k[2]);
            const Bits t1 = hdl::Add(b, v0, sum_c);
            const Bits t2 = hdl::Add(b, hdl::LshrConst(b, v0, 5), k[3]);
            v1 = hdl::Add(b, v1, hdl::XorBits(b, hdl::XorBits(b, t0, t1), t2));
        }
    }
    hdl::OutputBits(b, v0, "c0");
    hdl::OutputBits(b, v1, "c1");
    return std::move(b.netlist());
}

std::pair<uint64_t, uint64_t> RefTea(uint64_t v0_in, uint64_t v1_in,
                                     const std::vector<uint64_t>& key) {
    uint32_t v0 = static_cast<uint32_t>(v0_in);
    uint32_t v1 = static_cast<uint32_t>(v1_in);
    uint32_t sum = 0;
    for (int r = 0; r < 32; ++r) {
        sum += 0x9E3779B9u;
        v0 += ((v1 << 4) + static_cast<uint32_t>(key[0])) ^ (v1 + sum) ^
              ((v1 >> 5) + static_cast<uint32_t>(key[1]));
        v1 += ((v0 << 4) + static_cast<uint32_t>(key[2])) ^ (v0 + sum) ^
              ((v0 >> 5) + static_cast<uint32_t>(key[3]));
    }
    return {v0, v1};
}

}  // namespace pytfhe::vip
