/**
 * @file
 * The VIP-Bench workload circuits (Section V-A).
 *
 * VIP-Bench [38] is a benchmark suite for privacy-enhanced computation
 * frameworks; the paper evaluates PyTFHE on its 18 benchmarks plus the
 * MNIST CNNs and self-attention layers. Every benchmark here is a circuit
 * generator (the Chisel implementation of the paper, reproduced with the
 * hdl library) paired with a plaintext reference used by the tests.
 *
 * Sizes follow VIP-Bench's small fixed problem sizes; integer benchmarks
 * use the bit widths noted per function, real-valued iterative benchmarks
 * use Fixed(8,8).
 */
#ifndef PYTFHE_VIP_BENCHMARKS_H
#define PYTFHE_VIP_BENCHMARKS_H

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/netlist.h"

namespace pytfhe::vip {

using circuit::Netlist;

// ---------------------------------------------------------------- integer

/** Hamming distance between two 64-bit strings (XOR + popcount). */
Netlist BuildHammingDistance();
uint64_t RefHammingDistance(uint64_t a, uint64_t b);

/** Bubble sort of 8 unsigned 8-bit values (compare-and-swap network). */
Netlist BuildBubbleSort();
std::vector<uint64_t> RefBubbleSort(std::vector<uint64_t> v);

/** Distinctness: are all 8 unsigned 8-bit values distinct? */
Netlist BuildDistinctness();
bool RefDistinctness(const std::vector<uint64_t>& v);

/** Dot product of two 16-element signed 8-bit vectors (24-bit result). */
Netlist BuildDotProduct();
int64_t RefDotProduct(const std::vector<int64_t>& a,
                      const std::vector<int64_t>& b);

/** 12 Fibonacci steps over 16-bit words seeded by two encrypted values. */
Netlist BuildFibonacci();
uint64_t RefFibonacci(uint64_t f0, uint64_t f1);

/** Filtered query: sum of 16 8-bit records whose key exceeds a threshold. */
Netlist BuildFilteredQuery();
uint64_t RefFilteredQuery(const std::vector<uint64_t>& keys,
                          const std::vector<uint64_t>& values,
                          uint64_t threshold);

/** Kadane's maximum-subarray sum over 12 signed 8-bit values. */
Netlist BuildKadane();
int64_t RefKadane(const std::vector<int64_t>& v);

/** 1-NN: index of the closest of 8 2-D points (L1 distance, 8-bit). */
Netlist BuildKnn();
uint64_t RefKnn(const std::vector<int64_t>& px, const std::vector<int64_t>& py,
                int64_t qx, int64_t qy);

/** 4x4 by 4x4 signed 8-bit matrix multiply (20-bit accumulators). */
Netlist BuildMatrixMultiply();
std::vector<int64_t> RefMatrixMultiply(const std::vector<int64_t>& a,
                                       const std::vector<int64_t>& b);

/** Min, max, and truncated mean of 16 unsigned 8-bit values. */
Netlist BuildMinMaxMean();
std::vector<uint64_t> RefMinMaxMean(const std::vector<uint64_t>& v);

/** Trial-division primality of an 8-bit value (divisors 2..13). */
Netlist BuildPrimality();
bool RefPrimality(uint64_t n);

/** Edit distance (Levenshtein) of two 6-symbol strings, 4-bit alphabet. */
Netlist BuildEditDistance();
uint64_t RefEditDistance(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b);

// ------------------------------------------------------------- fixed-point
// All use Fixed(8,8): 8 integer bits (incl. sign) and 8 fraction bits.

/** Euler's number by summing 1/k! for k = 0..9 (iterative, serial). */
Netlist BuildEulerApprox();
double RefEulerApprox(double x_unused);

/** Newton-Raphson square root of an encrypted value, 6 iterations. */
Netlist BuildNrSolver();
double RefNrSolver(double a);

/** 6 gradient-descent steps on f(x) = (x - c)^2 with learning rate 1/4. */
Netlist BuildGradientDescent();
double RefGradientDescent(double x0, double c);

/** Kepler's equation E = M + e sin(E) via 4 fixed-point iterations
 *  (sin approximated by its cubic Taylor polynomial). */
Netlist BuildKepler();
double RefKepler(double mean_anomaly, double eccentricity);

/** Parrondo's paradox: 16 rounds of two losing games played alternately;
 *  serial chain of capital updates driven by encrypted coin bits. */
Netlist BuildParrondo();
int64_t RefParrondo(const std::vector<bool>& coins);

/** Roberts-Cross edge detection on an 8x8 image (|gx| + |gy| magnitude). */
Netlist BuildRobertsCross();
std::vector<double> RefRobertsCross(const std::vector<double>& image);

// ------------------------------------------------------- extra workloads
// Beyond VIP-Bench's 18: block-cipher evaluation under FHE.

/**
 * TEA (Tiny Encryption Algorithm) block encryption: 32 rounds over an
 * encrypted 64-bit block with an encrypted 128-bit key. The round counter
 * is public, so the delta multiples fold to constants; everything else is
 * 32-bit adds, xors, and constant shifts. Deeply serial.
 */
Netlist BuildTea();
std::pair<uint64_t, uint64_t> RefTea(uint64_t v0, uint64_t v1,
                                     const std::vector<uint64_t>& key);

}  // namespace pytfhe::vip

#endif  // PYTFHE_VIP_BENCHMARKS_H
