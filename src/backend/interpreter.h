/**
 * @file
 * Program interpreters: run a PyTFHE binary against any evaluator.
 *
 * RunProgram executes single-threaded in instruction order (indices are
 * topological by construction). RunProgramThreaded executes the BFS
 * schedule with a pool of worker threads synchronized per wave — the same
 * discipline the distributed backend uses, on local threads. Both are the
 * *functional* backends; wall-clock modeling of clusters/GPUs lives in
 * cluster_sim.h and gpu_sim.h.
 */
#ifndef PYTFHE_BACKEND_INTERPRETER_H
#define PYTFHE_BACKEND_INTERPRETER_H

#include <atomic>
#include <cassert>
#include <thread>

#include "backend/evaluator.h"
#include "backend/scheduler.h"
#include "pasm/program.h"

namespace pytfhe::backend {

/**
 * Executes `program` on `inputs` (one ciphertext per input instruction).
 * Returns one ciphertext per output instruction.
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgram(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs) {
    using C = typename Evaluator::Ciphertext;
    assert(inputs.size() == program.NumInputs());

    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    // value[idx] for instruction idx (0 = header slot, unused).
    std::vector<C> value(end_gate);
    for (uint64_t i = 0; i < inputs.size(); ++i) value[1 + i] = inputs[i];
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        const pasm::DecodedGate g = program.GateAt(idx);
        value[idx] = eval.Apply(g.type, value[g.in0], value[g.in1]);
    }
    std::vector<C> out;
    out.reserve(program.OutputIndices().size());
    for (uint64_t src : program.OutputIndices()) out.push_back(value[src]);
    return out;
}

/**
 * Level-parallel execution with `num_threads` workers. The evaluator's
 * Apply must be safe to call concurrently (TFHE gate evaluation is: the
 * evaluation key is read-only; the profile counters are approximate under
 * concurrency and only used for reporting).
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgramThreaded(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    int32_t num_threads) {
    using C = typename Evaluator::Ciphertext;
    assert(inputs.size() == program.NumInputs());
    assert(num_threads >= 1);

    const Schedule schedule = ComputeSchedule(program);
    const uint64_t end_gate = program.FirstGateIndex() + program.NumGates();
    std::vector<C> value(end_gate);
    for (uint64_t i = 0; i < inputs.size(); ++i) value[1 + i] = inputs[i];

    for (const auto& wave : schedule.levels) {
        // Submit the whole ready set (Algorithm 1's Compute(C - finished)),
        // then barrier before the next wave.
        std::atomic<size_t> cursor{0};
        auto worker = [&]() {
            while (true) {
                const size_t i = cursor.fetch_add(1);
                if (i >= wave.size()) break;
                const uint64_t idx = wave[i];
                const pasm::DecodedGate g = program.GateAt(idx);
                value[idx] = eval.Apply(g.type, value[g.in0], value[g.in1]);
            }
        };
        if (num_threads == 1 || wave.size() == 1) {
            worker();
        } else {
            std::vector<std::thread> threads;
            const int32_t n = std::min<int32_t>(
                num_threads, static_cast<int32_t>(wave.size()));
            threads.reserve(n);
            for (int32_t t = 0; t < n; ++t) threads.emplace_back(worker);
            for (auto& t : threads) t.join();
        }
    }

    std::vector<C> out;
    out.reserve(program.OutputIndices().size());
    for (uint64_t src : program.OutputIndices()) out.push_back(value[src]);
    return out;
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_INTERPRETER_H
