/**
 * @file
 * Program interpreters: run a PyTFHE binary against any evaluator.
 *
 * RunProgram executes single-threaded in instruction order (indices are
 * topological by construction). RunProgramThreaded executes the BFS
 * schedule with worker threads synchronized per wave — the same discipline
 * the distributed backend uses, on local threads; it is kept as the
 * reference implementation of Algorithm 1 and as the comparison baseline
 * for the dependency-counting Executor (executor.h), which production
 * paths use instead. Both are the *functional* backends; wall-clock
 * modeling of clusters/GPUs lives in cluster_sim.h and gpu_sim.h.
 */
#ifndef PYTFHE_BACKEND_INTERPRETER_H
#define PYTFHE_BACKEND_INTERPRETER_H

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "backend/evaluator.h"
#include "backend/scheduler.h"
#include "pasm/program.h"

namespace pytfhe::backend {

namespace detail {

/**
 * Rejects malformed run requests. A plain assert would vanish in release
 * builds and let the interpreter silently read default-constructed
 * ciphertexts, so misuse throws instead.
 */
inline void ValidateRunArgs(const pasm::Program& program, size_t num_inputs,
                            int32_t num_threads) {
    if (num_inputs != program.NumInputs())
        throw std::invalid_argument(
            "RunProgram: program expects " +
            std::to_string(program.NumInputs()) + " inputs, got " +
            std::to_string(num_inputs));
    if (num_threads < 1)
        throw std::invalid_argument("RunProgram: num_threads must be >= 1, "
                                    "got " +
                                    std::to_string(num_threads));
}

/**
 * Value slots indexed by instruction. A plain heap array rather than
 * std::vector<C>: with C = bool, vector<bool> packs bits, and concurrent
 * writers of *different* slots would race on the same byte. A bool[] has
 * one addressable object per slot, so distinct-slot writes never conflict.
 */
template <typename C>
class SlotBuffer {
  public:
    explicit SlotBuffer(uint64_t size) : slots_(new C[size]()) {}
    C& operator[](uint64_t idx) { return slots_[idx]; }
    const C& operator[](uint64_t idx) const { return slots_[idx]; }

  private:
    std::unique_ptr<C[]> slots_;
};

/** Placeholder scratch for evaluators that do not declare WorkerScratch. */
struct NoScratch {};

/**
 * Maps an evaluator to its per-worker scratch type. Evaluators opt in by
 * declaring `using WorkerScratch = ...` and providing an Apply overload
 * taking a WorkerScratch&; everything else gets the empty NoScratch and
 * the plain three-argument Apply.
 */
template <typename Evaluator, typename = void>
struct WorkerScratchOf {
    using type = NoScratch;
};

template <typename Evaluator>
struct WorkerScratchOf<Evaluator,
                       std::void_t<typename Evaluator::WorkerScratch>> {
    using type = typename Evaluator::WorkerScratch;
};

/**
 * Dispatches Apply by evaluator capability. Evaluators may take operand
 * encoding-domain flags (ciphertext evaluators need them to pick the
 * linear-combination coefficients for elided gates) and/or a per-worker
 * scratch; plaintext-style evaluators take neither, since the plaintext
 * semantics of kLin* gates do not depend on the operand encoding.
 */
template <typename Evaluator, typename C, typename Scratch>
C ApplyGate(Evaluator& eval, circuit::GateType t, const C& a, bool a_linear,
            const C& b, bool b_linear, Scratch& scratch) {
    if constexpr (requires { eval.Apply(t, a, a_linear, b, b_linear,
                                        scratch); }) {
        return eval.Apply(t, a, a_linear, b, b_linear, scratch);
    } else if constexpr (std::is_same_v<Scratch, NoScratch>) {
        (void)scratch;
        return eval.Apply(t, a, b);
    } else {
        return eval.Apply(t, a, b, scratch);
    }
}

}  // namespace detail

/**
 * Executes `program` on `inputs` (one ciphertext per input instruction).
 * Returns one ciphertext per output instruction. Throws
 * std::invalid_argument if inputs.size() != program.NumInputs().
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgram(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs) {
    using C = typename Evaluator::Ciphertext;
    detail::ValidateRunArgs(program, inputs.size(), 1);

    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    // value[idx] for instruction idx (0 = header slot, unused).
    detail::SlotBuffer<C> value(end_gate);
    for (uint64_t i = 0; i < inputs.size(); ++i) value[1 + i] = inputs[i];
    typename detail::WorkerScratchOf<Evaluator>::type scratch{};
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        const pasm::DecodedGate g = program.GateAt(idx);
        value[idx] = detail::ApplyGate(
            eval, g.type, value[g.in0], program.ProducesLinearDomain(g.in0),
            value[g.in1], program.ProducesLinearDomain(g.in1), scratch);
    }
    std::vector<C> out;
    out.reserve(program.OutputIndices().size());
    for (uint64_t src : program.OutputIndices())
        out.push_back(value[src]);
    return out;
}

/**
 * Level-parallel execution with `num_threads` workers and a barrier
 * between waves (Algorithm 1's Compute(C - finished) discipline). The
 * evaluator's Apply must be safe to call concurrently; profile counters
 * are atomic, so accounting stays exact. num_threads == 1 bypasses
 * scheduling entirely and runs the sequential interpreter — the outputs
 * are bit-identical.
 *
 * Spawns fresh threads per wave; prefer Executor (executor.h) for
 * repeated runs.
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgramThreaded(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    int32_t num_threads) {
    using C = typename Evaluator::Ciphertext;
    detail::ValidateRunArgs(program, inputs.size(), num_threads);
    if (num_threads == 1) return RunProgram(program, eval, inputs);

    const Schedule schedule = ComputeSchedule(program);
    const uint64_t end_gate = program.FirstGateIndex() + program.NumGates();
    detail::SlotBuffer<C> value(end_gate);
    for (uint64_t i = 0; i < inputs.size(); ++i) value[1 + i] = inputs[i];

    for (const auto& wave : schedule.levels) {
        // Submit the whole ready set, then barrier before the next wave.
        std::atomic<size_t> cursor{0};
        auto worker = [&]() {
            // One scratch per participating thread, local to its call.
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            while (true) {
                const size_t i = cursor.fetch_add(1);
                if (i >= wave.size()) break;
                const uint64_t idx = wave[i];
                const pasm::DecodedGate g = program.GateAt(idx);
                value[idx] = detail::ApplyGate(
                    eval, g.type, value[g.in0],
                    program.ProducesLinearDomain(g.in0), value[g.in1],
                    program.ProducesLinearDomain(g.in1), scratch);
            }
        };
        if (wave.size() == 1) {
            worker();
        } else {
            std::vector<std::thread> threads;
            const int32_t n = std::min<int32_t>(
                num_threads, static_cast<int32_t>(wave.size()));
            threads.reserve(n);
            for (int32_t t = 0; t < n; ++t) threads.emplace_back(worker);
            for (auto& t : threads) t.join();
        }
    }

    std::vector<C> out;
    out.reserve(program.OutputIndices().size());
    for (uint64_t src : program.OutputIndices())
        out.push_back(value[src]);
    return out;
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_INTERPRETER_H
