/**
 * @file
 * Program interpreters: run a PyTFHE binary against any evaluator.
 *
 * RunProgram executes single-threaded in instruction order (indices are
 * topological by construction). RunProgramThreaded executes the BFS
 * schedule with worker threads synchronized per wave — the same discipline
 * the distributed backend uses, on local threads; it is kept as the
 * reference implementation of Algorithm 1 and as the comparison baseline
 * for the dependency-counting Executor (executor.h), which production
 * paths use instead. Both are the *functional* backends; wall-clock
 * modeling of clusters/GPUs lives in cluster_sim.h and gpu_sim.h.
 *
 * Prefer the unified dispatcher backend::Execute (execute.h) over calling
 * these entry points directly. Its ExecOptions select the path:
 *   - mode == kSequential, or kAuto with num_threads == 1
 *       -> RunProgram (this file): in-order interpretation, bit-identical
 *          reference results, RunControl honored per gate.
 *   - mode == kWaveBarrier
 *       -> RunProgramThreaded (this file): per-wave barrier, fresh threads
 *          each wave; legacy Algorithm-1 reference. No RunControl support.
 *   - mode == kDependencyCounting, or kAuto with num_threads > 1
 *       -> Executor::Run (executor.h): persistent pool, gates start the
 *          moment their inputs exist, RunControl honored per gate. Passing
 *          ExecOptions::executor reuses a caller-owned pool; otherwise a
 *          transient pool is created for the call.
 * Multi-job serving (many programs interleaved on one pool) is a separate
 * substrate: backend/serving.h.
 */
#ifndef PYTFHE_BACKEND_INTERPRETER_H
#define PYTFHE_BACKEND_INTERPRETER_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backend/arena.h"
#include "backend/checkpoint.h"
#include "backend/evaluator.h"
#include "backend/fault.h"
#include "backend/run_control.h"
#include "backend/scheduler.h"
#include "pasm/memory_plan.h"
#include "pasm/program.h"

namespace pytfhe::backend {

namespace detail {

/**
 * Rejects malformed run requests. A plain assert would vanish in release
 * builds and let the interpreter silently read default-constructed
 * ciphertexts, so misuse throws instead.
 */
inline void ValidateRunArgs(const pasm::Program& program, size_t num_inputs,
                            int32_t num_threads) {
    if (num_inputs != program.NumInputs())
        throw std::invalid_argument(
            "RunProgram: program expects " +
            std::to_string(program.NumInputs()) + " inputs, got " +
            std::to_string(num_inputs));
    if (num_threads < 1)
        throw std::invalid_argument("RunProgram: num_threads must be >= 1, "
                                    "got " +
                                    std::to_string(num_threads));
}

}  // namespace detail

/**
 * Executes `program` on `inputs` (one ciphertext per input instruction).
 * Returns one ciphertext per output instruction. Throws
 * std::invalid_argument if inputs.size() != program.NumInputs();
 * CancelledError / DeadlineExceededError when `control` triggers mid-run;
 * GateExecutionError when a gate evaluation throws (including faults
 * injected by `fault` — a disengaged hook costs one branch per gate).
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgram(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    const RunControl& control = {}, const FaultHook& fault = {}) {
    detail::ValidateRunArgs(program, inputs.size(), 1);
    const bool guarded = control.Engaged();

    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    // In-order execution tolerates any memory plan (a value's slot is not
    // overwritten before its last in-order reader by plan validity).
    ValuePlane<Evaluator> plane;
    plane.Reset(program, inputs);
    // Injected stalls respect this run's cancel/deadline token.
    FaultHook hook = fault;
    if (hook.control == nullptr) hook.control = &control;
    typename detail::WorkerScratchOf<Evaluator>::type scratch{};
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        if (guarded) {
            const RunControl::Abort abort = control.Check();
            if (abort != RunControl::Abort::kNone) RunControl::Raise(abort);
        }
        try {
            hook.OnGate(idx - first_gate);
            plane.Apply(eval, program, idx, scratch);
        } catch (...) {
            RethrowAsGateError(idx - first_gate, fault.attempt);
        }
    }
    return plane.Harvest(program);
}

/**
 * Checkpoint-aware sequential interpreter. Behaves like RunProgram, plus:
 *
 *  - If `store` holds a record, it is decoded (CRC + fingerprint
 *    verified); on success the run restores the snapshotted live set and
 *    skips every gate at or below the cut. A corrupt or mismatched
 *    record is cleared from the store, counted in
 *    `stats->corrupt_discarded`, and the run falls back to executing
 *    from gate zero — a bad checkpoint can cost time, never correctness.
 *  - When `policy` is enabled, a fresh ordinal-cut record is written
 *    into `store` at wave boundaries (all levels <= L complete) selected
 *    by the policy knobs. A fault that aborts the run (thrown
 *    GateExecutionError, cancel, deadline) leaves the last record in the
 *    store for the caller's retry.
 *
 * The checkpoint cadence is level-based even though the cut is ordinal:
 * a boundary is considered each time every gate of some wave level has
 * retired, which is when the live set is at its narrowest.
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgramCheckpointed(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    const CheckpointPolicy& policy, JobCheckpoint* store,
    const RunControl& control = {}, const FaultHook& fault = {},
    CheckpointRunStats* stats = nullptr) {
    using C = typename Evaluator::Ciphertext;
    detail::ValidateRunArgs(program, inputs.size(), 1);
    if constexpr (!CiphertextCodec<C>::kSupported) {
        if (store != nullptr) store->Clear();
        return RunProgram(program, eval, inputs, control, fault);
    } else {
        const bool guarded = control.Engaged();
        const uint64_t first_gate = program.FirstGateIndex();
        const uint64_t end_gate = first_gate + program.NumGates();
        const bool capture = policy.Enabled() && store != nullptr;

        ValuePlane<Evaluator> plane;
        plane.Reset(program, inputs);

        std::optional<DecodedCheckpoint<C>> resume;
        if (store != nullptr && !store->Empty()) {
            std::string error;
            resume = DecodeCheckpoint<C>(store->record,
                                         ProgramFingerprint(program),
                                         end_gate, &error);
            if (resume && !CutValidForProgram(resume->cut, program))
                resume.reset();
            if (!resume) {
                store->Clear();
                if (stats) ++stats->corrupt_discarded;
            }
        }

        std::vector<uint64_t> level;
        std::vector<uint64_t> suffmin;  // Min level over instrs >= idx.
        pasm::ValueLiveness liveness;
        if (capture || (resume && resume->cut == CheckpointCut::kLevel))
            level = program.ValueLevels();
        if (capture) {
            liveness = pasm::ComputeValueLiveness(program);
            suffmin.assign(end_gate + 1, ~UINT64_C(0));
            for (uint64_t idx = end_gate; idx > first_gate; --idx)
                suffmin[idx - 1] = std::min(suffmin[idx], level[idx - 1]);
        }

        uint64_t done_count = 0;
        uint64_t last_ckpt_level = 0;
        if (resume) {
            RestoreCheckpoint(plane, *resume);
            done_count = resume->gates_completed;
            if (stats) {
                ++stats->resumes;
                stats->gates_resumed += resume->gates_completed;
            }
            if (capture)
                last_ckpt_level =
                    resume->cut == CheckpointCut::kLevel
                        ? resume->boundary - 1
                        : suffmin[std::min(resume->boundary + 1,
                                           end_gate)] - 1;
        }
        auto is_done = [&](uint64_t idx) {
            if (!resume) return false;
            return resume->cut == CheckpointCut::kOrdinal
                       ? idx <= resume->boundary
                       : level[idx] < resume->boundary;
        };

        typename detail::WorkerScratchOf<Evaluator>::type scratch{};
        // Injected stalls respect this run's cancel/deadline token.
        FaultHook hook = fault;
        if (hook.control == nullptr) hook.control = &control;
        uint64_t gates_since_ckpt = 0;
        for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
            if (is_done(idx)) continue;
            if (guarded) {
                const RunControl::Abort abort = control.Check();
                if (abort != RunControl::Abort::kNone)
                    RunControl::Raise(abort);
            }
            try {
                hook.OnGate(idx - first_gate);
                plane.Apply(eval, program, idx, scratch);
            } catch (...) {
                RethrowAsGateError(idx - first_gate, fault.attempt);
            }
            ++done_count;
            ++gates_since_ckpt;
            // A checkpoint is worthwhile only strictly mid-run: after the
            // last gate the outputs are about to be harvested anyway.
            if (capture && idx + 1 < end_gate) {
                const uint64_t completed = suffmin[idx + 1] - 1;
                if (completed >= last_ckpt_level + policy.every_n_levels &&
                    gates_since_ckpt >= policy.min_gates_between) {
                    const std::vector<uint64_t> live =
                        pasm::LiveValuesAtOrdinalCut(liveness, idx);
                    std::string record = EncodeCheckpoint(
                        program, plane, live, CheckpointCut::kOrdinal, idx,
                        done_count);
                    if (policy.max_bytes == 0 ||
                        record.size() <= policy.max_bytes) {
                        store->gates_completed = done_count;
                        store->record = std::move(record);
                        last_ckpt_level = completed;
                        gates_since_ckpt = 0;
                        if (stats) {
                            ++stats->checkpoints_taken;
                            stats->checkpoint_bytes = store->record.size();
                        }
                    }
                }
            }
        }
        return plane.Harvest(program);
    }
}

/**
 * Level-parallel execution with `num_threads` workers and a barrier
 * between waves (Algorithm 1's Compute(C - finished) discipline). The
 * evaluator's Apply must be safe to call concurrently; profile counters
 * are atomic, so accounting stays exact. num_threads == 1 bypasses
 * scheduling entirely and runs the sequential interpreter — the outputs
 * are bit-identical. A throwing gate evaluation (or an injected fault)
 * stops the remaining waves and rethrows as GateExecutionError after the
 * in-flight wave drains — worker threads are always joined.
 *
 * Spawns fresh threads per wave; prefer Executor (executor.h) for
 * repeated runs.
 *
 * `resume` optionally names a decoded checkpoint (frame already
 * verified): the snapshotted values are restored and every gate at or
 * below the cut is skipped. Capture is not supported on this legacy
 * path — checkpoints come from the sequential interpreter or the
 * serving executor.
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgramThreaded(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    int32_t num_threads, const FaultHook& fault = {},
    const DecodedCheckpoint<typename Evaluator::Ciphertext>* resume =
        nullptr) {
    detail::ValidateRunArgs(program, inputs.size(), num_threads);
    if (num_threads == 1 && resume == nullptr)
        return RunProgram(program, eval, inputs, {}, fault);

    const Schedule schedule = ComputeSchedule(program);
    const uint64_t first_gate = program.FirstGateIndex();
    // Wave-barrier execution may only reuse slots across a level boundary,
    // so plans not flagged level-safe are ignored (identity layout).
    const pasm::MemoryPlan* plan = program.Plan();
    ValuePlane<Evaluator> plane;
    plane.Reset(program, inputs, plan != nullptr && plan->level_safe);

    std::vector<uint8_t> done;
    if (resume != nullptr) {
        RestoreCheckpoint(plane, *resume);
        done.assign(program.NumGates(), 0);
        if (resume->cut == CheckpointCut::kOrdinal) {
            const uint64_t last =
                std::min(resume->boundary + 1,
                         first_gate + program.NumGates());
            for (uint64_t idx = first_gate; idx < last; ++idx)
                done[idx - first_gate] = 1;
        } else {
            const std::vector<uint64_t> level = program.ValueLevels();
            for (uint64_t g = 0; g < program.NumGates(); ++g)
                done[g] = level[first_gate + g] < resume->boundary ? 1 : 0;
        }
    }

    // First failure wins; later workers observe the flag and stop picking.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::optional<GateExecutionError> error;

    for (const auto& wave : schedule.levels) {
        // Submit the whole ready set, then barrier before the next wave.
        std::atomic<size_t> cursor{0};
        auto worker = [&]() {
            // One scratch per participating thread, local to its call.
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            while (!failed.load(std::memory_order_relaxed)) {
                const size_t i = cursor.fetch_add(1);
                if (i >= wave.size()) break;
                const uint64_t idx = wave[i];
                if (!done.empty() && done[idx - first_gate]) continue;
                try {
                    fault.OnGate(idx - first_gate);
                    plane.Apply(eval, program, idx, scratch);
                } catch (...) {
                    try {
                        RethrowAsGateError(idx - first_gate, fault.attempt);
                    } catch (const GateExecutionError& e) {
                        std::lock_guard<std::mutex> lock(error_mu);
                        if (!error) error = e;
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        };
        if (wave.size() == 1) {
            worker();
        } else {
            std::vector<std::thread> threads;
            const int32_t n = std::min<int32_t>(
                num_threads, static_cast<int32_t>(wave.size()));
            threads.reserve(n);
            for (int32_t t = 0; t < n; ++t) threads.emplace_back(worker);
            for (auto& t : threads) t.join();
        }
        if (failed.load(std::memory_order_relaxed)) break;
    }
    if (error) throw *error;

    return plane.Harvest(program);
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_INTERPRETER_H
