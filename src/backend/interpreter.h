/**
 * @file
 * Program interpreters: run a PyTFHE binary against any evaluator.
 *
 * RunProgram executes single-threaded in instruction order (indices are
 * topological by construction). RunProgramThreaded executes the BFS
 * schedule with worker threads synchronized per wave — the same discipline
 * the distributed backend uses, on local threads; it is kept as the
 * reference implementation of Algorithm 1 and as the comparison baseline
 * for the dependency-counting Executor (executor.h), which production
 * paths use instead. Both are the *functional* backends; wall-clock
 * modeling of clusters/GPUs lives in cluster_sim.h and gpu_sim.h.
 *
 * Prefer the unified dispatcher backend::Execute (execute.h) over calling
 * these entry points directly. Its ExecOptions select the path:
 *   - mode == kSequential, or kAuto with num_threads == 1
 *       -> RunProgram (this file): in-order interpretation, bit-identical
 *          reference results, RunControl honored per gate.
 *   - mode == kWaveBarrier
 *       -> RunProgramThreaded (this file): per-wave barrier, fresh threads
 *          each wave; legacy Algorithm-1 reference. No RunControl support.
 *   - mode == kDependencyCounting, or kAuto with num_threads > 1
 *       -> Executor::Run (executor.h): persistent pool, gates start the
 *          moment their inputs exist, RunControl honored per gate. Passing
 *          ExecOptions::executor reuses a caller-owned pool; otherwise a
 *          transient pool is created for the call.
 * Multi-job serving (many programs interleaved on one pool) is a separate
 * substrate: backend/serving.h.
 */
#ifndef PYTFHE_BACKEND_INTERPRETER_H
#define PYTFHE_BACKEND_INTERPRETER_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backend/arena.h"
#include "backend/evaluator.h"
#include "backend/fault.h"
#include "backend/scheduler.h"
#include "pasm/program.h"

namespace pytfhe::backend {

/** A run was abandoned because its RunControl cancel flag was raised. */
class CancelledError : public std::runtime_error {
  public:
    CancelledError() : std::runtime_error("run cancelled") {}
};

/** A run was abandoned because its RunControl deadline passed. */
class DeadlineExceededError : public std::runtime_error {
  public:
    DeadlineExceededError() : std::runtime_error("run deadline exceeded") {}
};

/**
 * Cooperative mid-run controls, checked at gate granularity: a run stops
 * between gates once the deadline passes or the (caller-owned) cancel flag
 * is raised, and the interpreter throws the matching typed error after the
 * in-flight gates drain. Defaults are fully disengaged and add a single
 * branch to the hot loop. Partial results are discarded — an aborted run
 * produces no outputs.
 */
struct RunControl {
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    const std::atomic<bool>* cancel = nullptr;

    bool Engaged() const {
        return cancel != nullptr ||
               deadline != std::chrono::steady_clock::time_point::max();
    }

    /** 0 = keep going, else the abort reason observed right now. */
    enum class Abort { kNone, kCancelled, kDeadline };
    Abort Check() const {
        if (cancel != nullptr &&
            cancel->load(std::memory_order_relaxed))
            return Abort::kCancelled;
        if (deadline != std::chrono::steady_clock::time_point::max() &&
            std::chrono::steady_clock::now() >= deadline)
            return Abort::kDeadline;
        return Abort::kNone;
    }

    /** Throws the typed error for a non-kNone abort reason. */
    [[noreturn]] static void Raise(Abort reason) {
        if (reason == Abort::kDeadline) throw DeadlineExceededError();
        throw CancelledError();
    }
};

namespace detail {

/**
 * Rejects malformed run requests. A plain assert would vanish in release
 * builds and let the interpreter silently read default-constructed
 * ciphertexts, so misuse throws instead.
 */
inline void ValidateRunArgs(const pasm::Program& program, size_t num_inputs,
                            int32_t num_threads) {
    if (num_inputs != program.NumInputs())
        throw std::invalid_argument(
            "RunProgram: program expects " +
            std::to_string(program.NumInputs()) + " inputs, got " +
            std::to_string(num_inputs));
    if (num_threads < 1)
        throw std::invalid_argument("RunProgram: num_threads must be >= 1, "
                                    "got " +
                                    std::to_string(num_threads));
}

}  // namespace detail

/**
 * Executes `program` on `inputs` (one ciphertext per input instruction).
 * Returns one ciphertext per output instruction. Throws
 * std::invalid_argument if inputs.size() != program.NumInputs();
 * CancelledError / DeadlineExceededError when `control` triggers mid-run;
 * GateExecutionError when a gate evaluation throws (including faults
 * injected by `fault` — a disengaged hook costs one branch per gate).
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgram(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    const RunControl& control = {}, const FaultHook& fault = {}) {
    detail::ValidateRunArgs(program, inputs.size(), 1);
    const bool guarded = control.Engaged();

    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    // In-order execution tolerates any memory plan (a value's slot is not
    // overwritten before its last in-order reader by plan validity).
    ValuePlane<Evaluator> plane;
    plane.Reset(program, inputs);
    typename detail::WorkerScratchOf<Evaluator>::type scratch{};
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        if (guarded) {
            const RunControl::Abort abort = control.Check();
            if (abort != RunControl::Abort::kNone) RunControl::Raise(abort);
        }
        try {
            fault.OnGate(idx - first_gate);
            plane.Apply(eval, program, idx, scratch);
        } catch (...) {
            RethrowAsGateError(idx - first_gate, fault.attempt);
        }
    }
    return plane.Harvest(program);
}

/**
 * Level-parallel execution with `num_threads` workers and a barrier
 * between waves (Algorithm 1's Compute(C - finished) discipline). The
 * evaluator's Apply must be safe to call concurrently; profile counters
 * are atomic, so accounting stays exact. num_threads == 1 bypasses
 * scheduling entirely and runs the sequential interpreter — the outputs
 * are bit-identical. A throwing gate evaluation (or an injected fault)
 * stops the remaining waves and rethrows as GateExecutionError after the
 * in-flight wave drains — worker threads are always joined.
 *
 * Spawns fresh threads per wave; prefer Executor (executor.h) for
 * repeated runs.
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> RunProgramThreaded(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    int32_t num_threads, const FaultHook& fault = {}) {
    using C = typename Evaluator::Ciphertext;
    detail::ValidateRunArgs(program, inputs.size(), num_threads);
    if (num_threads == 1) return RunProgram(program, eval, inputs, {}, fault);

    const Schedule schedule = ComputeSchedule(program);
    const uint64_t first_gate = program.FirstGateIndex();
    // Wave-barrier execution may only reuse slots across a level boundary,
    // so plans not flagged level-safe are ignored (identity layout).
    const pasm::MemoryPlan* plan = program.Plan();
    ValuePlane<Evaluator> plane;
    plane.Reset(program, inputs, plan != nullptr && plan->level_safe);

    // First failure wins; later workers observe the flag and stop picking.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::optional<GateExecutionError> error;

    for (const auto& wave : schedule.levels) {
        // Submit the whole ready set, then barrier before the next wave.
        std::atomic<size_t> cursor{0};
        auto worker = [&]() {
            // One scratch per participating thread, local to its call.
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            while (!failed.load(std::memory_order_relaxed)) {
                const size_t i = cursor.fetch_add(1);
                if (i >= wave.size()) break;
                const uint64_t idx = wave[i];
                try {
                    fault.OnGate(idx - first_gate);
                    plane.Apply(eval, program, idx, scratch);
                } catch (...) {
                    try {
                        RethrowAsGateError(idx - first_gate, fault.attempt);
                    } catch (const GateExecutionError& e) {
                        std::lock_guard<std::mutex> lock(error_mu);
                        if (!error) error = e;
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        };
        if (wave.size() == 1) {
            worker();
        } else {
            std::vector<std::thread> threads;
            const int32_t n = std::min<int32_t>(
                num_threads, static_cast<int32_t>(wave.size()));
            threads.reserve(n);
            for (int32_t t = 0; t < n; ++t) threads.emplace_back(worker);
            for (auto& t : threads) t.join();
        }
        if (failed.load(std::memory_order_relaxed)) break;
    }
    if (error) throw *error;

    return plane.Harvest(program);
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_INTERPRETER_H
