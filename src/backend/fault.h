/**
 * @file
 * Deterministic fault injection and typed execution failures.
 *
 * The cloud protocol ships hour-long gate programs to untrusted, failure-
 * prone machines; the serving runtime must survive a crashing gate
 * evaluation, a stalled worker, and a job that needs re-execution. This
 * module provides the three pieces the executors and the serving layer
 * share:
 *
 *  - FaultInjector: a seedable source of injected faults (gate-eval
 *    exceptions, worker stalls) whose decisions are a pure function of
 *    (seed, job, attempt, gate) — the same plan replays the same fault
 *    schedule regardless of thread interleaving, so fault-recovery tests
 *    and benchmarks are reproducible. Threaded through Executor,
 *    ServingExecutor, and backend::Execute behind a null-pointer check:
 *    a disabled injector costs one predictable branch per gate.
 *
 *  - GateExecutionError: the typed failure every executor throws when a
 *    gate evaluation raises (injected or real). Carries the gate ordinal,
 *    the attempt number, and whether the underlying fault was transient —
 *    the signal the retry machinery keys on.
 *
 *  - RetryPolicy: exponential backoff with deterministic jitter, consumed
 *    by ServingExecutor to transparently re-run jobs killed by transient
 *    faults (serving.h documents the degradation ladder).
 */
#ifndef PYTFHE_BACKEND_FAULT_H
#define PYTFHE_BACKEND_FAULT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "backend/run_control.h"

namespace pytfhe::backend {

/**
 * The deterministic hash every fault decision in this module is built on:
 * a splitmix64 mix of (seed, key, site, salt). Exposed so other
 * deterministic failure models (the cluster simulator's worker-failure
 * model) draw from the same reproducible source.
 */
uint64_t FaultSiteHash(uint64_t seed, uint64_t key, uint64_t site,
                       uint64_t salt);

/** Maps a FaultSiteHash to a uniform double in [0, 1). */
double FaultHashUnit(uint64_t h);

/**
 * The exception a FaultInjector raises in place of a gate evaluation.
 * `permanent` faults fire on every attempt at the same site; transient
 * ones clear after FaultPlan::transient_clears_after attempts.
 */
class FaultInjectedError : public std::runtime_error {
  public:
    FaultInjectedError(const std::string& what, bool permanent)
        : std::runtime_error(what), permanent_(permanent) {}

    bool permanent() const { return permanent_; }

  private:
    bool permanent_;
};

/**
 * A gate evaluation threw (injected fault or a real evaluator exception).
 * The executors translate any exception escaping an Apply call into this
 * type: the failing job resolves with it while the worker pool stays
 * healthy. `transient()` is true only for injected transient faults —
 * the retry machinery re-runs those; real exceptions and permanent
 * injected faults fail the job immediately.
 */
class GateExecutionError : public std::runtime_error {
  public:
    GateExecutionError(uint64_t gate_ordinal, uint32_t attempt,
                       const std::string& cause, bool transient)
        : std::runtime_error("gate " + std::to_string(gate_ordinal) +
                             " failed (attempt " + std::to_string(attempt) +
                             "): " + cause),
          gate_ordinal_(gate_ordinal),
          attempt_(attempt),
          transient_(transient) {}

    /** 0-based index of the failing gate within the program's gate list. */
    uint64_t gate_ordinal() const { return gate_ordinal_; }
    /** 0-based execution attempt the failure occurred on. */
    uint32_t attempt() const { return attempt_; }
    /** True when re-execution can be expected to succeed. */
    bool transient() const { return transient_; }

  private:
    uint64_t gate_ordinal_;
    uint32_t attempt_;
    bool transient_;
};

/**
 * Rethrows the in-flight exception as a GateExecutionError, preserving an
 * already-typed error. Call from a catch block only.
 */
[[noreturn]] inline void RethrowAsGateError(uint64_t gate_ordinal,
                                            uint32_t attempt) {
    try {
        throw;
    } catch (const GateExecutionError&) {
        throw;
    } catch (const FaultInjectedError& e) {
        throw GateExecutionError(gate_ordinal, attempt, e.what(),
                                 /*transient=*/!e.permanent());
    } catch (const std::exception& e) {
        throw GateExecutionError(gate_ordinal, attempt, e.what(),
                                 /*transient=*/false);
    } catch (...) {
        throw GateExecutionError(gate_ordinal, attempt, "unknown exception",
                                 /*transient=*/false);
    }
}

/**
 * One deterministic fault schedule. All decisions hash (seed, job,
 * attempt, gate); two injectors built from equal plans inject identical
 * faults. Rates are probabilities in [0, 1] evaluated per gate site.
 */
struct FaultPlan {
    uint64_t seed = 1;

    /** Per-gate probability that evaluation throws FaultInjectedError. */
    double gate_fault_rate = 0.0;

    /**
     * Deterministic schedule: fault gate `fault_gate_ordinal` of every
     * nth job (job ids n-1, 2n-1, ...). 0 disables. Composes with
     * gate_fault_rate; handy for "exactly 25% of jobs fail" acceptance
     * runs.
     */
    uint32_t fault_every_nth_job = 0;

    /**
     * The gate the fault_every_nth_job schedule fires at (0-based gate
     * ordinal). Faulting a late gate makes the cost of a retry visible:
     * a job killed at gate 0 loses nothing to re-execution, one killed at
     * 3N/4 loses three quarters of its work — the scenario checkpointed
     * retry exists for.
     */
    uint64_t fault_gate_ordinal = 0;

    /**
     * Of the faulted sites, the fraction whose fault is permanent
     * (fires on every attempt). The rest are transient.
     */
    double permanent_fraction = 0.0;

    /**
     * Attempt number from which a transient site stops faulting: with the
     * default 1, a transient fault fires on attempt 0 only and the first
     * retry succeeds.
     */
    uint32_t transient_clears_after = 1;

    /** Per-gate probability of an injected stall (straggling worker). */
    double stall_rate = 0.0;
    /** Duration of one injected stall. */
    double stall_microseconds = 0.0;

    bool Enabled() const {
        return gate_fault_rate > 0.0 || fault_every_nth_job != 0 ||
               stall_rate > 0.0;
    }
};

/**
 * Executes a FaultPlan. Thread-safe; decisions are pure functions of the
 * plan and the (job, attempt, gate) site, counters are relaxed atomics.
 */
class FaultInjector {
  public:
    struct Counters {
        uint64_t transient_faults = 0;
        uint64_t permanent_faults = 0;
        uint64_t stalls = 0;
        uint64_t Total() const { return transient_faults + permanent_faults; }
    };

    explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

    /**
     * The per-gate hook: may sleep (injected stall) and/or throw
     * FaultInjectedError according to the plan. `gate_ordinal` is the
     * 0-based gate index within the program (stable across schedules and
     * thread interleavings, unlike evaluation order). A non-null
     * `control` makes injected stalls cooperative: the sleep runs in
     * <= 1 ms slices and stops early once the control reports an abort
     * (cancel raised or deadline passed), so an abandoned run is not
     * pinned down by its own injected stragglers.
     */
    void OnGate(uint64_t job, uint32_t attempt, uint64_t gate_ordinal,
                const RunControl* control = nullptr);

    /**
     * Pure decision: would this site fault at this attempt? Sets
     * *permanent when returning true. Exposed so tests and schedulers can
     * predict the schedule without triggering it.
     */
    bool WouldFault(uint64_t job, uint32_t attempt, uint64_t gate_ordinal,
                    bool* permanent) const;

    Counters counters() const {
        Counters c;
        c.transient_faults = transient_faults_.load(std::memory_order_relaxed);
        c.permanent_faults = permanent_faults_.load(std::memory_order_relaxed);
        c.stalls = stalls_.load(std::memory_order_relaxed);
        return c;
    }

    /** Fresh job id for anonymous (non-serving) runs. */
    uint64_t NextRunId() {
        return next_run_id_.fetch_add(1, std::memory_order_relaxed);
    }

    const FaultPlan& plan() const { return plan_; }

  private:
    const FaultPlan plan_;
    std::atomic<uint64_t> transient_faults_{0};
    std::atomic<uint64_t> permanent_faults_{0};
    std::atomic<uint64_t> stalls_{0};
    std::atomic<uint64_t> next_run_id_{0};
};

/**
 * The value the executors thread through a run: which injector (null =
 * disabled, zero work), the (job, attempt) identity of this execution,
 * and optionally the run's control token so injected stalls respect
 * cancellation and deadlines (the executors wire their own RunControl in
 * before the hot loop; callers constructing hooks by hand may leave it
 * null).
 */
struct FaultHook {
    FaultInjector* injector = nullptr;
    uint64_t job = 0;
    uint32_t attempt = 0;
    const RunControl* control = nullptr;

    void OnGate(uint64_t gate_ordinal) const {
        if (injector != nullptr)
            injector->OnGate(job, attempt, gate_ordinal, control);
    }
};

/**
 * Exponential backoff with deterministic jitter for re-running jobs
 * killed by transient faults. max_attempts == 1 disables retries.
 */
struct RetryPolicy {
    /** Total executions of a job, first attempt included. */
    uint32_t max_attempts = 1;
    /** Delay before the first retry (attempt 1). */
    double initial_backoff_seconds = 0.0;
    /** Backoff growth per further attempt. */
    double backoff_multiplier = 2.0;
    /**
     * Jitter as a fraction of the backoff, in [0, 1]: the delay is scaled
     * by a deterministic factor in [1 - jitter, 1 + jitter] hashed from
     * (job, attempt), de-synchronizing retry storms reproducibly.
     */
    double jitter = 0.0;

    /** Delay before executing `attempt` (>= 1) of `job`. */
    double BackoffSeconds(uint64_t job, uint32_t attempt) const;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_FAULT_H
