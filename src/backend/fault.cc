#include "backend/fault.h"

#include <chrono>
#include <thread>

namespace pytfhe::backend {

namespace {

/** splitmix64 finalizer: a high-quality 64-bit bit mixer. */
uint64_t Mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

constexpr uint64_t kSaltFault = 0xFA17ull;
constexpr uint64_t kSaltPermanent = 0x9E24ull;
constexpr uint64_t kSaltStall = 0x57A1ull;
constexpr uint64_t kSaltJitter = 0x317Eull;

}  // namespace

uint64_t FaultSiteHash(uint64_t seed, uint64_t key, uint64_t site,
                       uint64_t salt) {
    return Mix(Mix(seed ^ Mix(key)) ^ Mix(site) ^ salt);
}

double FaultHashUnit(uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {

/** Local aliases: every decision below draws from the shared hash. */
uint64_t SiteHash(uint64_t seed, uint64_t job, uint64_t gate, uint64_t salt) {
    return FaultSiteHash(seed, job, gate, salt);
}

double Unit(uint64_t h) { return FaultHashUnit(h); }

}  // namespace

bool FaultInjector::WouldFault(uint64_t job, uint32_t attempt,
                               uint64_t gate_ordinal, bool* permanent) const {
    bool fires = false;
    if (plan_.fault_every_nth_job != 0 &&
        gate_ordinal == plan_.fault_gate_ordinal &&
        job % plan_.fault_every_nth_job == plan_.fault_every_nth_job - 1)
        fires = true;
    if (!fires && plan_.gate_fault_rate > 0.0 &&
        Unit(SiteHash(plan_.seed, job, gate_ordinal, kSaltFault)) <
            plan_.gate_fault_rate)
        fires = true;
    if (!fires) return false;
    // Permanence is a property of the site, not of the attempt: a
    // permanent site fails identically on every re-execution.
    *permanent = Unit(SiteHash(plan_.seed, job, gate_ordinal,
                               kSaltPermanent)) < plan_.permanent_fraction;
    if (!*permanent && attempt >= plan_.transient_clears_after)
        return false;  // Transient fault has cleared.
    return true;
}

void FaultInjector::OnGate(uint64_t job, uint32_t attempt,
                           uint64_t gate_ordinal,
                           const RunControl* control) {
    if (plan_.stall_rate > 0.0 &&
        Unit(SiteHash(plan_.seed, job, gate_ordinal, kSaltStall)) <
            plan_.stall_rate) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        const auto total =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::duration<double, std::micro>(
                    plan_.stall_microseconds));
        if (control == nullptr || !control->Engaged()) {
            std::this_thread::sleep_for(total);
        } else {
            // Cooperative stall: sleep in short slices so a cancelled or
            // expired run sheds the injected straggler promptly instead
            // of serving out the full sentence.
            constexpr auto kSlice = std::chrono::milliseconds(1);
            auto remaining = total;
            while (remaining.count() > 0 &&
                   control->Check() == RunControl::Abort::kNone) {
                const auto step = remaining < kSlice
                                      ? remaining
                                      : std::chrono::microseconds(kSlice);
                std::this_thread::sleep_for(step);
                remaining -= step;
            }
        }
    }
    bool permanent = false;
    if (!WouldFault(job, attempt, gate_ordinal, &permanent)) return;
    if (permanent) {
        permanent_faults_.fetch_add(1, std::memory_order_relaxed);
        throw FaultInjectedError(
            "injected permanent fault (job " + std::to_string(job) +
                ", gate " + std::to_string(gate_ordinal) + ")",
            /*permanent=*/true);
    }
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(
        "injected transient fault (job " + std::to_string(job) + ", gate " +
            std::to_string(gate_ordinal) + ", attempt " +
            std::to_string(attempt) + ")",
        /*permanent=*/false);
}

double RetryPolicy::BackoffSeconds(uint64_t job, uint32_t attempt) const {
    if (attempt == 0 || initial_backoff_seconds <= 0.0) return 0.0;
    double backoff = initial_backoff_seconds;
    for (uint32_t a = 1; a < attempt; ++a) backoff *= backoff_multiplier;
    if (jitter > 0.0) {
        const double u =
            Unit(SiteHash(0x6A77ull, job, attempt, kSaltJitter));
        backoff *= 1.0 + jitter * (2.0 * u - 1.0);
    }
    return backoff;
}

}  // namespace pytfhe::backend
