/**
 * @file
 * Persistent dependency-counting executor.
 *
 * The wave-barrier interpreter (RunProgramThreaded) spawns fresh threads
 * per wave and makes every gate wait for the slowest gate in its level.
 * The Executor keeps one worker pool alive across waves and across program
 * runs, and schedules by dependency counting instead of levels: each gate
 * carries a remaining-predecessor count, workers pop ready gates from a
 * shared queue, and finishing a gate decrements its successors' counts —
 * a gate starts the moment its inputs exist. The wave Schedule remains the
 * reference discipline consumed by the cluster/GPU simulators; this is the
 * substrate local execution actually runs on.
 */
#ifndef PYTFHE_BACKEND_EXECUTOR_H
#define PYTFHE_BACKEND_EXECUTOR_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "backend/interpreter.h"
#include "pasm/program.h"

namespace pytfhe::backend {

/**
 * A persistent pool of worker threads that execute "parallel regions":
 * RunOnWorkers(n, fn) runs `fn` on n pool workers plus the calling thread
 * and returns when all participants finish. Workers are created on demand,
 * kept across calls (no per-wave thread churn), and joined on destruction.
 */
class ThreadPool {
  public:
    ThreadPool() = default;
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Runs `fn` concurrently on `workers` pool threads and on the calling
     * thread; blocks until every participant has returned. `workers == 0`
     * degenerates to a plain inline call.
     */
    void RunOnWorkers(int32_t workers, const std::function<void()>& fn);

    /** Number of pool threads created so far. */
    int32_t NumWorkers() const;

  private:
    void EnsureWorkersLocked(int32_t n);
    void WorkerLoop();

    std::mutex region_mu_;  ///< Serializes RunOnWorkers callers.
    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< Workers wait here for a region.
    std::condition_variable done_cv_;  ///< Caller waits here for completion.
    std::vector<std::thread> threads_;
    const std::function<void()>* job_ = nullptr;
    uint64_t generation_ = 0;  ///< Bumped per region so workers join once.
    int32_t target_ = 0;       ///< Workers wanted for the current region.
    int32_t started_ = 0;
    int32_t finished_ = 0;
    bool shutdown_ = false;
};

namespace detail {

/** Sentinel for "no gate held locally" in the worker loop. */
inline constexpr uint64_t kNoGate = ~UINT64_C(0);

/**
 * Shared ready-queue with completion-count termination: Pop blocks until a
 * gate is available or every gate in the program has been executed.
 */
class ReadyQueue {
  public:
    ReadyQueue(std::vector<uint64_t> initial, uint64_t total_gates)
        : ready_(std::move(initial)), remaining_(total_gates) {}

    void Push(uint64_t idx) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ready_.push_back(idx);
        }
        cv_.notify_one();
    }

    /** Returns false once all gates have executed and the queue drained. */
    bool Pop(uint64_t* idx) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return !ready_.empty() || remaining_ == 0; });
        if (ready_.empty()) return false;
        *idx = ready_.back();
        ready_.pop_back();
        return true;
    }

    /**
     * Pops up to `max_batch` ready gates in FIFO order (from the front).
     * The single-gate Pop keeps its stack discipline — popping the
     * most-recently published successor is the cache-friendly order for
     * one-gate-at-a-time workers and preserves the batch_size == 1
     * behavior exactly. Batches are served oldest-first instead: gates of
     * one level that became ready together stay adjacent and land in one
     * kernel call, rather than being interleaved with successors pushed
     * while the batch accumulated.
     */
    bool PopBatch(std::vector<uint64_t>* out, int32_t max_batch) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return !ready_.empty() || remaining_ == 0; });
        if (ready_.empty()) return false;
        const size_t k = std::min(ready_.size(),
                                  static_cast<size_t>(max_batch));
        out->assign(ready_.begin(), ready_.begin() + k);
        ready_.erase(ready_.begin(), ready_.begin() + k);
        return true;
    }

    /** Records one executed gate; wakes all waiters when none remain. */
    void MarkDone() {
        std::unique_lock<std::mutex> lock(mu_);
        if (--remaining_ == 0) {
            lock.unlock();
            cv_.notify_all();
        }
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<uint64_t> ready_;
    uint64_t remaining_;
};

}  // namespace detail

/**
 * Reusable program executor: owns a persistent ThreadPool and runs
 * programs with dependency-counting scheduling. One Executor per server
 * (or per process) amortizes thread creation over every Run call.
 * The evaluator's Apply must be safe to call concurrently.
 */
class Executor {
  public:
    Executor() = default;

    /**
     * Executes `program` on `inputs` with `num_threads` total workers
     * (including the calling thread). num_threads == 1 bypasses scheduling
     * entirely and runs the sequential interpreter; results are
     * bit-identical either way. Throws std::invalid_argument on input
     * count mismatch or num_threads < 1, and CancelledError /
     * DeadlineExceededError when `control` triggers mid-run (workers stop
     * evaluating and drain the remaining dependency counts without
     * touching the evaluator, so an aborted run returns promptly).
     *
     * A gate evaluation that throws — a real evaluator exception or a
     * fault injected through `fault` — fails only this Run call: the
     * first error is latched, every worker drains the remaining counts
     * without evaluating, and the call rethrows the typed
     * GateExecutionError. The pool stays healthy; subsequent Run calls
     * on this Executor behave normally.
     *
     * batch_size > 1 turns on batch-aware dispatch: each worker pops up
     * to batch_size simultaneously ready gates (FIFO within the ready
     * set), groups the bootstrapped ones into one ApplyBatch kernel call
     * when the evaluator supports it (detail::kSupportsApplyBatch), and
     * runs linear/NOT gates on the scalar fast path. Fault hooks fire per
     * gate: a gate faulted inside a batch is excluded from the kernel and
     * attributed individually, and a throwing kernel falls back to
     * per-gate scalar evaluation so the error names the right gate.
     * Results are bit-identical to batch_size == 1 for every evaluator.
     *
     * `resume` optionally names a decoded checkpoint (frame already
     * verified by the caller): the snapshotted values are restored into
     * the plane and the dependency counters start past the cut, so only
     * the gates beyond it execute. Capture is not supported here — the
     * standalone executor has no quiesce point; checkpoints come from
     * the sequential interpreter or the serving executor.
     */
    template <typename Evaluator>
    std::vector<typename Evaluator::Ciphertext> Run(
        const pasm::Program& program, Evaluator& eval,
        const std::vector<typename Evaluator::Ciphertext>& inputs,
        int32_t num_threads, const RunControl& control = {},
        const FaultHook& fault = {}, int32_t batch_size = 1,
        const DecodedCheckpoint<typename Evaluator::Ciphertext>* resume =
            nullptr) {
        detail::ValidateRunArgs(program, inputs.size(), num_threads);
        if (((num_threads == 1 && batch_size <= 1) ||
             program.NumGates() <= 1) &&
            resume == nullptr)
            return RunProgram(program, eval, inputs, control, fault);

        // Plan-aware dependencies: anti-dependency edges serialize every
        // reader of a slot before its overwriter, so any valid memory plan
        // is safe under dependency counting (and hazardous pairs are never
        // simultaneously ready, hence never co-batched).
        const pasm::GateDependencies deps =
            program.BuildGateDependencies(program.Plan());
        const uint64_t first_gate = program.FirstGateIndex();

        ValuePlane<Evaluator> plane;
        plane.Reset(program, inputs);

        // Remaining-predecessor counts, one atomic per gate. The final
        // decrement of a gate's count transfers ownership of its inputs to
        // the thread that saw zero, hence acq_rel below.
        std::vector<std::atomic<uint32_t>> pending(program.NumGates());
        std::vector<uint64_t> roots;
        uint64_t remaining = program.NumGates();
        if (resume != nullptr) {
            RestoreCheckpoint(plane, *resume);
            ResumeState state = BuildResumeState(program, deps, resume->cut,
                                                 resume->boundary);
            for (uint64_t g = 0; g < program.NumGates(); ++g)
                pending[g].store(state.pending[g],
                                 std::memory_order_relaxed);
            roots = std::move(state.ready);
            remaining = state.remaining;
        } else {
            for (uint64_t g = 0; g < program.NumGates(); ++g)
                pending[g].store(deps.pred_count[g],
                                 std::memory_order_relaxed);
            roots = deps.RootGates();
        }

        detail::ReadyQueue queue(std::move(roots), remaining);

        // Abort reason, latched once by whichever worker first observes the
        // control trigger; every worker then drains without evaluating.
        // Likewise the first gate failure: latch, drain, rethrow after the
        // region so the pool survives a throwing evaluator.
        const bool guarded = control.Engaged();
        // Injected stalls honor this run's cancel/deadline token.
        FaultHook hook = fault;
        if (hook.control == nullptr) hook.control = &control;
        std::atomic<RunControl::Abort> abort{RunControl::Abort::kNone};
        std::atomic<bool> failed{false};
        std::mutex error_mu;
        std::optional<GateExecutionError> error;

        auto worker = [&]() {
            // Per-worker scratch: buffers live for the whole run, so every
            // gate after the first on this thread is allocation-free.
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            uint64_t idx = detail::kNoGate;
            while (idx != detail::kNoGate || queue.Pop(&idx)) {
                bool skip = failed.load(std::memory_order_relaxed);
                if (!skip && guarded) {
                    skip = abort.load(std::memory_order_relaxed) !=
                           RunControl::Abort::kNone;
                    if (!skip) {
                        const RunControl::Abort a = control.Check();
                        if (a != RunControl::Abort::kNone) {
                            abort.store(a, std::memory_order_relaxed);
                            skip = true;
                        }
                    }
                }
                if (!skip) {
                    try {
                        hook.OnGate(idx - first_gate);
                        plane.Apply(eval, program, idx, scratch);
                    } catch (...) {
                        try {
                            RethrowAsGateError(idx - first_gate,
                                               fault.attempt);
                        } catch (const GateExecutionError& e) {
                            std::lock_guard<std::mutex> lock(error_mu);
                            if (!error) error = e;
                        }
                        failed.store(true, std::memory_order_relaxed);
                    }
                }
                // Decrement successors; run one newly ready gate ourselves
                // (depth-first along the chain, no queue round-trip) and
                // publish the rest.
                uint64_t next = detail::kNoGate;
                const auto [s, e] = deps.SuccessorsOf(idx);
                for (const uint64_t* p = s; p != e; ++p) {
                    if (pending[*p - first_gate].fetch_sub(
                            1, std::memory_order_acq_rel) == 1) {
                        if (next == detail::kNoGate) {
                            next = *p;
                        } else {
                            queue.Push(*p);
                        }
                    }
                }
                queue.MarkDone();
                idx = next;
            }
        };

        // Batch-aware worker: pops up to batch_size ready gates at once,
        // fuses the batchable bootstraps into one kernel call, and
        // publishes every newly ready successor (no depth-first chaining —
        // a full ready set is what makes the next batch wide).
        auto batch_worker = [&]() {
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            typename detail::BatchScratchOf<Evaluator>::type batch_scratch{};
            (void)batch_scratch;
            std::vector<uint64_t> batch;
            std::vector<uint64_t> kernel_gates;
            std::vector<typename ValuePlane<Evaluator>::BatchItem> items;
            auto run_scalar = [&](uint64_t idx) {
                plane.Apply(eval, program, idx, scratch);
            };
            auto latch = [&](uint64_t idx) {
                try {
                    RethrowAsGateError(idx - first_gate, fault.attempt);
                } catch (const GateExecutionError& e) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!error) error = e;
                }
                failed.store(true, std::memory_order_relaxed);
            };
            while (queue.PopBatch(&batch, batch_size)) {
                bool skip = failed.load(std::memory_order_relaxed);
                if (!skip && guarded) {
                    skip = abort.load(std::memory_order_relaxed) !=
                           RunControl::Abort::kNone;
                    if (!skip) {
                        const RunControl::Abort a = control.Check();
                        if (a != RunControl::Abort::kNone) {
                            abort.store(a, std::memory_order_relaxed);
                            skip = true;
                        }
                    }
                }
                if (!skip) {
                    kernel_gates.clear();
                    // Per-gate fault hooks and the scalar fast path; a
                    // faulted gate is latched individually and never
                    // reaches the kernel, so later gates in this batch and
                    // every other batch drain cleanly.
                    for (uint64_t idx : batch) {
                        if (failed.load(std::memory_order_relaxed)) break;
                        const pasm::DecodedGate g = program.GateAt(idx);
                        bool batchable = false;
                        if constexpr (detail::kSupportsApplyBatch<Evaluator>)
                            batchable = Evaluator::Batchable(g.type);
                        try {
                            hook.OnGate(idx - first_gate);
                            if (batchable) {
                                kernel_gates.push_back(idx);
                            } else {
                                run_scalar(idx);
                            }
                        } catch (...) {
                            latch(idx);
                        }
                    }
                    if constexpr (detail::kSupportsApplyBatch<Evaluator>) {
                        if (!kernel_gates.empty() &&
                            !failed.load(std::memory_order_relaxed)) {
                            items.resize(kernel_gates.size());
                            for (size_t i = 0; i < kernel_gates.size(); ++i)
                                items[i] = plane.BatchItemFor(
                                    program, kernel_gates[i]);
                            try {
                                eval.ApplyBatch(
                                    items.data(),
                                    static_cast<int32_t>(items.size()),
                                    batch_scratch);
                            } catch (...) {
                                // Attribute precisely: replay each gate
                                // scalar so the latched error names the
                                // gate that actually fails.
                                for (uint64_t idx : kernel_gates) {
                                    try {
                                        run_scalar(idx);
                                    } catch (...) {
                                        latch(idx);
                                    }
                                }
                            }
                        }
                    }
                }
                for (uint64_t idx : batch) {
                    const auto [s, e] = deps.SuccessorsOf(idx);
                    for (const uint64_t* p = s; p != e; ++p) {
                        if (pending[*p - first_gate].fetch_sub(
                                1, std::memory_order_acq_rel) == 1)
                            queue.Push(*p);
                    }
                    queue.MarkDone();
                }
            }
        };

        const int32_t workers = static_cast<int32_t>(std::min<uint64_t>(
            num_threads - 1, program.NumGates() - 1));
        const std::function<void()> fn =
            batch_size > 1 ? std::function<void()>(batch_worker)
                           : std::function<void()>(worker);
        pool_.RunOnWorkers(workers, fn);

        if (error) throw *error;
        const RunControl::Abort reason =
            abort.load(std::memory_order_relaxed);
        if (reason != RunControl::Abort::kNone) RunControl::Raise(reason);

        return plane.Harvest(program);
    }

    /** The underlying pool, exposed for reuse by other parallel backends. */
    ThreadPool& pool() { return pool_; }

  private:
    ThreadPool pool_;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_EXECUTOR_H
