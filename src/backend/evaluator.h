/**
 * @file
 * Gate evaluators: the pluggable execution substrate of every backend.
 *
 * An evaluator provides a Ciphertext type plus Constant/Apply operations
 * with TFHE gate semantics. Backends are templates over the evaluator so
 * the same scheduler runs functionally on plaintext bits (fast, used for
 * validation), on real TFHE ciphertexts (the actual FHE execution), or on
 * a counting stub (used by the simulators).
 */
#ifndef PYTFHE_BACKEND_EVALUATOR_H
#define PYTFHE_BACKEND_EVALUATOR_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "circuit/gate_type.h"
#include "tfhe/gates.h"
#include "tfhe/multibit.h"

namespace pytfhe::backend {

using circuit::GateType;

/**
 * One gate inside a batched evaluator call: inputs by pointer (so
 * dispatchers can gather scattered value slots without copies), output by
 * pointer, operand encoding-domain flags as in the scalar Apply. Only
 * bootstrapped gate types (circuit::NeedsBootstrap) are batchable; linear
 * and NOT gates stay on the scalar fast path.
 */
template <typename C>
struct BatchGate {
    GateType type = GateType::kNot;
    const C* a = nullptr;
    bool a_linear = false;
    const C* b = nullptr;
    bool b_linear = false;
    C* out = nullptr;
};

/**
 * View flavor of BatchGate for arena-resident ciphertexts (backend/arena.h):
 * operands and output are spans into a ciphertext slab rather than pointers
 * to LweSample objects. The kernel consumes every lane's inputs before
 * writing any lane's output, so `out` may alias any input view of the same
 * call — which is exactly what an in-place memory plan produces.
 */
struct BatchGateView {
    GateType type = GateType::kNot;
    tfhe::LweCView a;
    bool a_linear = false;
    tfhe::LweCView b;
    bool b_linear = false;
    tfhe::LweView out;
};

namespace detail {

/**
 * The linear prelude of each bootstrapped gate kind: the gate evaluates as
 * sign-bootstrap(coef_a*a + coef_b*b + offset). Returns false for gate
 * kinds that are not bootstrapped (NOT and the elided kLin* family), which
 * must take the scalar linear path instead. This is the single coefficient
 * table shared by every batched and view-based dispatch.
 */
inline bool GatePrelude(GateType t, bool a_linear, bool b_linear,
                        int32_t* coef_a, int32_t* coef_b,
                        tfhe::Torus32* offset) {
    switch (t) {
        case GateType::kAnd:
            *coef_a = +1; *coef_b = +1; *offset = -tfhe::kGateMu;
            return true;
        case GateType::kNand:
            *coef_a = -1; *coef_b = -1; *offset = tfhe::kGateMu;
            return true;
        case GateType::kOr:
            *coef_a = +1; *coef_b = +1; *offset = tfhe::kGateMu;
            return true;
        case GateType::kNor:
            *coef_a = -1; *coef_b = -1; *offset = -tfhe::kGateMu;
            return true;
        case GateType::kXor:
            *coef_a = a_linear ? 1 : 2;
            *coef_b = b_linear ? 1 : 2;
            *offset = tfhe::kGateQuarter;
            return true;
        case GateType::kXnor:
            *coef_a = a_linear ? 1 : 2;
            *coef_b = b_linear ? 1 : 2;
            *offset = -tfhe::kGateQuarter;
            return true;
        case GateType::kAndNY:
            *coef_a = -1; *coef_b = +1; *offset = -tfhe::kGateMu;
            return true;
        case GateType::kAndYN:
            *coef_a = +1; *coef_b = -1; *offset = -tfhe::kGateMu;
            return true;
        case GateType::kOrNY:
            *coef_a = -1; *coef_b = +1; *offset = tfhe::kGateMu;
            return true;
        case GateType::kOrYN:
            *coef_a = +1; *coef_b = -1; *offset = tfhe::kGateMu;
            return true;
        default:
            return false;
    }
}

}  // namespace detail

/** Evaluates gates on plaintext booleans (reference semantics). */
class PlainEvaluator {
  public:
    using Ciphertext = bool;

    Ciphertext Constant(bool value) const { return value; }
    Ciphertext Apply(GateType t, Ciphertext a, Ciphertext b) const {
        return circuit::EvalGate(t, a, b);
    }
};

/** Evaluates gates on real TFHE ciphertexts via bootstrapped gates. */
class TfheEvaluator {
  public:
    using Ciphertext = tfhe::LweSample;
    /**
     * Interpreters construct one of these per worker thread and pass it to
     * the scratch-aware Apply overload, making gate evaluation
     * allocation-free in steady state.
     */
    using WorkerScratch = tfhe::BootstrapScratch;
    /**
     * Per-worker scratch of the batched path (bootstrap_batch.h): sized on
     * first use, reused across batches — including ragged tails.
     */
    using BatchScratch = tfhe::BatchScratch;

    explicit TfheEvaluator(tfhe::GateEvaluator& gates) : gates_(&gates) {}

    Ciphertext Constant(bool value) const { return gates_->Constant(value); }

    Ciphertext Apply(GateType t, const Ciphertext& a,
                     const Ciphertext& b) const {
        WorkerScratch scratch;
        return Apply(t, a, false, b, false, scratch);
    }

    Ciphertext Apply(GateType t, const Ciphertext& a, const Ciphertext& b,
                     WorkerScratch& s) const {
        return Apply(t, a, false, b, false, s);
    }

    /**
     * Domain-aware dispatch: `a_linear`/`b_linear` say whether each operand
     * carries the linear (+-1/4) encoding, i.e. was produced by an elided
     * kLin* gate. Interpreters derive the flags statically from the
     * producing opcode (pasm::Program::ProducesLinearDomain). Linear gates
     * never touch the bootstrap scratch — they are pure sample arithmetic.
     */
    Ciphertext Apply(GateType t, const Ciphertext& a, bool a_linear,
                     const Ciphertext& b, bool b_linear,
                     WorkerScratch& s) const {
        switch (t) {
            case GateType::kNot: return gates_->Not(a);
            case GateType::kAnd: return gates_->And(a, b, &s);
            case GateType::kNand: return gates_->Nand(a, b, &s);
            case GateType::kOr: return gates_->Or(a, b, &s);
            case GateType::kNor: return gates_->Nor(a, b, &s);
            case GateType::kXnor:
                return gates_->Xnor(a, a_linear, b, b_linear, &s);
            case GateType::kXor:
                return gates_->Xor(a, a_linear, b, b_linear, &s);
            case GateType::kAndNY: return gates_->AndNY(a, b, &s);
            case GateType::kAndYN: return gates_->AndYN(a, b, &s);
            case GateType::kOrNY: return gates_->OrNY(a, b, &s);
            case GateType::kOrYN: return gates_->OrYN(a, b, &s);
            case GateType::kLinXor:
                return gates_->LinXor(a, a_linear, b, b_linear);
            case GateType::kLinXnor:
                return gates_->LinXnor(a, a_linear, b, b_linear);
            case GateType::kLinNot: return gates_->LinNot(a);
        }
        return a;  // Unreachable for valid gate types.
    }

    /**
     * True iff `t` may be placed in an ApplyBatch call. LUT gates bootstrap
     * but carry a per-gate test vector and variable arity, which the fused
     * sign-bootstrap kernel cannot express — they dispatch through
     * ApplyLutInto on the scalar path instead.
     */
    static bool Batchable(GateType t) {
        return circuit::NeedsBootstrap(t) && t != GateType::kLut;
    }

    /**
     * Evaluates one weighted LUT gate (multi-bit programs, format v4):
     * linear prelude over the operand views, one programmable bootstrap
     * through the table-valued test vector, one key switch into `out`.
     * Operands are fully read before `out` is written, so `out` may alias
     * any operand view — the in-place shape a memory plan produces.
     */
    void ApplyLutInto(const tfhe::LutKernel& lut,
                      std::span<const tfhe::LweCView> ops, tfhe::LweView out,
                      WorkerScratch& s) const {
        tfhe::LutBootstrapInto(*gates_, lut, ops, out, &s);
    }

    /**
     * Evaluates `count` bootstrapped gates through one batched blind
     * rotation. Every item's type must satisfy Batchable(); gate kinds may
     * be mixed freely — each kind is only a different linear prelude into
     * the shared +-1/8 bootstrap. Bit-exact per gate vs the scalar Apply.
     * Staging lives in the scratch, so a warm scratch makes dispatch
     * allocation-free.
     */
    void ApplyBatch(const BatchGate<Ciphertext>* items, int32_t count,
                    BatchScratch& s) const {
        s.specs.resize(count);
        for (int32_t i = 0; i < count; ++i) {
            const BatchGate<Ciphertext>& g = items[i];
            tfhe::BatchGateSpec& spec = s.specs[i];
            spec.a = g.a;
            spec.b = g.b;
            spec.out = g.out;
            if (!detail::GatePrelude(g.type, g.a_linear, g.b_linear,
                                     &spec.coef_a, &spec.coef_b,
                                     &spec.offset))
                throw std::invalid_argument(
                    "TfheEvaluator::ApplyBatch: non-bootstrapped gate "
                    "type in batch");
        }
        gates_->BatchedLinearBootstrap(s.specs.data(), count, &s);
    }

    /**
     * View flavor of ApplyBatch for arena-resident lanes: gathers operand
     * slots and scatters output slots directly, no LweSample objects in
     * the loop. Same batching contract and bit-exactness as above.
     */
    void ApplyBatch(const BatchGateView* items, int32_t count,
                    BatchScratch& s) const {
        s.view_specs.resize(count);
        for (int32_t i = 0; i < count; ++i) {
            const BatchGateView& g = items[i];
            tfhe::BatchGateViewSpec& spec = s.view_specs[i];
            spec.a = g.a;
            spec.b = g.b;
            spec.out = g.out;
            if (!detail::GatePrelude(g.type, g.a_linear, g.b_linear,
                                     &spec.coef_a, &spec.coef_b,
                                     &spec.offset))
                throw std::invalid_argument(
                    "TfheEvaluator::ApplyBatch: non-bootstrapped gate "
                    "type in batch");
        }
        gates_->BatchedLinearBootstrap(s.view_specs.data(), count, &s);
    }

    /**
     * Zero-copy scalar dispatch: evaluates one gate from operand views
     * straight into the destination view (typically all three are arena
     * slots). Inputs are fully consumed before `out` is written, so `out`
     * may alias either input — the in-place shape a memory plan produces.
     * Bit-exact vs the object-based Apply for every gate kind.
     */
    void ApplyInto(GateType t, tfhe::LweCView a, bool a_linear,
                   tfhe::LweCView b, bool b_linear, tfhe::LweView out,
                   WorkerScratch& s) const {
        int32_t coef_a = 0, coef_b = 0;
        tfhe::Torus32 offset = 0;
        if (detail::GatePrelude(t, a_linear, b_linear, &coef_a, &coef_b,
                                &offset)) {
            gates_->LinearBootstrapInto(coef_a, a, coef_b, b, offset, out,
                                        &s);
            return;
        }
        switch (t) {
            case GateType::kNot:
                gates_->NotInto(a, out);
                return;
            case GateType::kLinNot:
                gates_->LinNotInto(a, out);
                return;
            case GateType::kLinXor:
                gates_->LinCombineInto(a_linear ? 1 : 2, a, b_linear ? 1 : 2,
                                       b, tfhe::kGateQuarter, out);
                return;
            case GateType::kLinXnor:
                gates_->LinCombineInto(a_linear ? 1 : 2, a, b_linear ? 1 : 2,
                                       b, -tfhe::kGateQuarter, out);
                return;
            default:
                throw std::invalid_argument(
                    "TfheEvaluator::ApplyInto: unknown gate type");
        }
    }

  private:
    tfhe::GateEvaluator* gates_;
};

/** Counts gate evaluations; Ciphertext is a placeholder byte. */
class CountingEvaluator {
  public:
    using Ciphertext = uint8_t;

    Ciphertext Constant(bool value) const { return value; }
    Ciphertext Apply(GateType t, Ciphertext a, Ciphertext b) {
        ++counts_[static_cast<int32_t>(t)];
        ++total_;
        return circuit::EvalGate(t, a, b) ? 1 : 0;
    }

    /**
     * Accounting hook for LUT gates (multi-bit programs). The plane
     * evaluates the digit semantics itself — a placeholder byte cannot be
     * threaded through a weighted sum — and reports each gate here; one
     * LUT gate costs exactly one bootstrap, like any bootstrapped gate.
     */
    void OnLutGate() {
        ++counts_[static_cast<int32_t>(GateType::kLut)];
        ++total_;
    }

    uint64_t Total() const { return total_; }
    uint64_t CountOf(GateType t) const {
        return counts_[static_cast<int32_t>(t)];
    }

  private:
    uint64_t counts_[circuit::kNumGateTypes] = {};
    uint64_t total_ = 0;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_EVALUATOR_H
