/**
 * @file
 * Gate evaluators: the pluggable execution substrate of every backend.
 *
 * An evaluator provides a Ciphertext type plus Constant/Apply operations
 * with TFHE gate semantics. Backends are templates over the evaluator so
 * the same scheduler runs functionally on plaintext bits (fast, used for
 * validation), on real TFHE ciphertexts (the actual FHE execution), or on
 * a counting stub (used by the simulators).
 */
#ifndef PYTFHE_BACKEND_EVALUATOR_H
#define PYTFHE_BACKEND_EVALUATOR_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "circuit/gate_type.h"
#include "tfhe/gates.h"

namespace pytfhe::backend {

using circuit::GateType;

/**
 * One gate inside a batched evaluator call: inputs by pointer (so
 * dispatchers can gather scattered value slots without copies), output by
 * pointer, operand encoding-domain flags as in the scalar Apply. Only
 * bootstrapped gate types (circuit::NeedsBootstrap) are batchable; linear
 * and NOT gates stay on the scalar fast path.
 */
template <typename C>
struct BatchGate {
    GateType type = GateType::kNot;
    const C* a = nullptr;
    bool a_linear = false;
    const C* b = nullptr;
    bool b_linear = false;
    C* out = nullptr;
};

/** Evaluates gates on plaintext booleans (reference semantics). */
class PlainEvaluator {
  public:
    using Ciphertext = bool;

    Ciphertext Constant(bool value) const { return value; }
    Ciphertext Apply(GateType t, Ciphertext a, Ciphertext b) const {
        return circuit::EvalGate(t, a, b);
    }
};

/** Evaluates gates on real TFHE ciphertexts via bootstrapped gates. */
class TfheEvaluator {
  public:
    using Ciphertext = tfhe::LweSample;
    /**
     * Interpreters construct one of these per worker thread and pass it to
     * the scratch-aware Apply overload, making gate evaluation
     * allocation-free in steady state.
     */
    using WorkerScratch = tfhe::BootstrapScratch;
    /**
     * Per-worker scratch of the batched path (bootstrap_batch.h): sized on
     * first use, reused across batches — including ragged tails.
     */
    using BatchScratch = tfhe::BatchScratch;

    explicit TfheEvaluator(tfhe::GateEvaluator& gates) : gates_(&gates) {}

    Ciphertext Constant(bool value) const { return gates_->Constant(value); }

    Ciphertext Apply(GateType t, const Ciphertext& a,
                     const Ciphertext& b) const {
        WorkerScratch scratch;
        return Apply(t, a, false, b, false, scratch);
    }

    Ciphertext Apply(GateType t, const Ciphertext& a, const Ciphertext& b,
                     WorkerScratch& s) const {
        return Apply(t, a, false, b, false, s);
    }

    /**
     * Domain-aware dispatch: `a_linear`/`b_linear` say whether each operand
     * carries the linear (+-1/4) encoding, i.e. was produced by an elided
     * kLin* gate. Interpreters derive the flags statically from the
     * producing opcode (pasm::Program::ProducesLinearDomain). Linear gates
     * never touch the bootstrap scratch — they are pure sample arithmetic.
     */
    Ciphertext Apply(GateType t, const Ciphertext& a, bool a_linear,
                     const Ciphertext& b, bool b_linear,
                     WorkerScratch& s) const {
        switch (t) {
            case GateType::kNot: return gates_->Not(a);
            case GateType::kAnd: return gates_->And(a, b, &s);
            case GateType::kNand: return gates_->Nand(a, b, &s);
            case GateType::kOr: return gates_->Or(a, b, &s);
            case GateType::kNor: return gates_->Nor(a, b, &s);
            case GateType::kXnor:
                return gates_->Xnor(a, a_linear, b, b_linear, &s);
            case GateType::kXor:
                return gates_->Xor(a, a_linear, b, b_linear, &s);
            case GateType::kAndNY: return gates_->AndNY(a, b, &s);
            case GateType::kAndYN: return gates_->AndYN(a, b, &s);
            case GateType::kOrNY: return gates_->OrNY(a, b, &s);
            case GateType::kOrYN: return gates_->OrYN(a, b, &s);
            case GateType::kLinXor:
                return gates_->LinXor(a, a_linear, b, b_linear);
            case GateType::kLinXnor:
                return gates_->LinXnor(a, a_linear, b, b_linear);
            case GateType::kLinNot: return gates_->LinNot(a);
        }
        return a;  // Unreachable for valid gate types.
    }

    /** True iff `t` may be placed in an ApplyBatch call. */
    static bool Batchable(GateType t) { return circuit::NeedsBootstrap(t); }

    /**
     * Evaluates `count` bootstrapped gates through one batched blind
     * rotation. Every item's type must satisfy Batchable(); gate kinds may
     * be mixed freely — each kind is only a different linear prelude into
     * the shared +-1/8 bootstrap. Bit-exact per gate vs the scalar Apply.
     */
    void ApplyBatch(const BatchGate<Ciphertext>* items, int32_t count,
                    BatchScratch& s) const {
        std::vector<tfhe::BatchGateSpec> specs(count);
        for (int32_t i = 0; i < count; ++i) {
            const BatchGate<Ciphertext>& g = items[i];
            tfhe::BatchGateSpec& spec = specs[i];
            spec.a = g.a;
            spec.b = g.b;
            spec.out = g.out;
            switch (g.type) {
                case GateType::kAnd:
                    spec.coef_a = +1; spec.coef_b = +1;
                    spec.offset = -tfhe::kGateMu;
                    break;
                case GateType::kNand:
                    spec.coef_a = -1; spec.coef_b = -1;
                    spec.offset = tfhe::kGateMu;
                    break;
                case GateType::kOr:
                    spec.coef_a = +1; spec.coef_b = +1;
                    spec.offset = tfhe::kGateMu;
                    break;
                case GateType::kNor:
                    spec.coef_a = -1; spec.coef_b = -1;
                    spec.offset = -tfhe::kGateMu;
                    break;
                case GateType::kXor:
                    spec.coef_a = g.a_linear ? 1 : 2;
                    spec.coef_b = g.b_linear ? 1 : 2;
                    spec.offset = tfhe::kGateQuarter;
                    break;
                case GateType::kXnor:
                    spec.coef_a = g.a_linear ? 1 : 2;
                    spec.coef_b = g.b_linear ? 1 : 2;
                    spec.offset = -tfhe::kGateQuarter;
                    break;
                case GateType::kAndNY:
                    spec.coef_a = -1; spec.coef_b = +1;
                    spec.offset = -tfhe::kGateMu;
                    break;
                case GateType::kAndYN:
                    spec.coef_a = +1; spec.coef_b = -1;
                    spec.offset = -tfhe::kGateMu;
                    break;
                case GateType::kOrNY:
                    spec.coef_a = -1; spec.coef_b = +1;
                    spec.offset = tfhe::kGateMu;
                    break;
                case GateType::kOrYN:
                    spec.coef_a = +1; spec.coef_b = -1;
                    spec.offset = tfhe::kGateMu;
                    break;
                default:
                    throw std::invalid_argument(
                        "TfheEvaluator::ApplyBatch: non-bootstrapped gate "
                        "type in batch");
            }
        }
        gates_->BatchedLinearBootstrap(specs.data(), count, &s);
    }

  private:
    tfhe::GateEvaluator* gates_;
};

/** Counts gate evaluations; Ciphertext is a placeholder byte. */
class CountingEvaluator {
  public:
    using Ciphertext = uint8_t;

    Ciphertext Constant(bool value) const { return value; }
    Ciphertext Apply(GateType t, Ciphertext a, Ciphertext b) {
        ++counts_[static_cast<int32_t>(t)];
        ++total_;
        return circuit::EvalGate(t, a, b) ? 1 : 0;
    }

    uint64_t Total() const { return total_; }
    uint64_t CountOf(GateType t) const {
        return counts_[static_cast<int32_t>(t)];
    }

  private:
    uint64_t counts_[circuit::kNumGateTypes] = {};
    uint64_t total_ = 0;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_EVALUATOR_H
