#include "backend/cost_model.h"

namespace pytfhe::backend {

GpuConfig A5000() {
    GpuConfig g;
    g.name = "RTX A5000";
    g.sms = 64;
    g.sms_per_gate = 2;        // 32 concurrent bootstrap kernels.
    g.kernel_seconds = 6.5e-3;
    g.launch_seconds = 20e-6;
    g.transfer_sync_seconds = 2.0e-3;  // Fig. 8: copies rival the kernel.
    g.pcie_bandwidth = 12e9;
    g.graph_launch_seconds = 50e-6;
    g.graph_build_per_gate = 5e-6;
    g.batch_gates = 200000;  // "up to around hundreds of thousands of nodes".
    return g;
}

GpuConfig Rtx4090() {
    GpuConfig g;
    g.name = "RTX 4090";
    g.sms = 128;
    g.sms_per_gate = 2;        // 64 concurrent bootstrap kernels.
    g.kernel_seconds = 5.0e-3;
    g.launch_seconds = 20e-6;
    g.transfer_sync_seconds = 1.6e-3;
    g.pcie_bandwidth = 24e9;
    g.graph_launch_seconds = 50e-6;
    g.graph_build_per_gate = 4e-6;
    g.batch_gates = 200000;
    return g;
}

}  // namespace pytfhe::backend
