/**
 * @file
 * Cost models for the simulated execution platforms.
 *
 * The paper evaluates on hardware this repository does not have: a 4-node
 * Ray cluster of 2x Xeon Gold 5215 servers (Table II) and NVIDIA RTX
 * A5000 / RTX 4090 GPUs running cuFHE kernels under CUDA Graphs
 * (Table III). The simulators in cluster_sim.h / gpu_sim.h execute the real
 * schedules of real compiled programs against the parameter sets below.
 *
 * Calibration: per-gate CPU cost defaults to the paper's Fig. 7 scale
 * (~15 ms per bootstrapped gate on one core) and can be overridden with a
 * locally measured value (bench_fig07 measures it). GPU parameters are
 * chosen so that the modeled platform reproduces the paper's *relative*
 * throughputs (Table IV: A5000 ~72x and 4090 ~146x a single CPU core;
 * cuFHE's per-gate discipline per Fig. 8). Absolute times are modeled
 * milliseconds, not measurements — EXPERIMENTS.md tracks paper-vs-model.
 */
#ifndef PYTFHE_BACKEND_COST_MODEL_H
#define PYTFHE_BACKEND_COST_MODEL_H

#include <cmath>
#include <cstdint>
#include <string>

namespace pytfhe::backend {

/** TFHE ciphertext size on the wire (Section IV-D: 2.46 KB). */
constexpr double kCiphertextBytes = 2460.0;

/** Cost of one gate on one CPU core. */
struct CpuCostModel {
    double bootstrap_gate_seconds = 0.015;  ///< Bootstrapped gate.
    /**
     * Non-bootstrapped gate: NOT/COPY and the elided linear gates
     * (LXOR/LXNOR/LNOT), all O(n) sample arithmetic — four orders of
     * magnitude below a bootstrap, which is the entire point of elision.
     */
    double linear_gate_seconds = 2e-6;

    /**
     * Measured batched-bootstrap throughput gains of the SoA kernel
     * (bench_micro_tfhe's `batched` block): speedup of per-gate time at
     * batch 2/4/8 over the scalar path. Defaults match the committed
     * BENCH_micro_tfhe.json sweep (AVX-512 host); override from a local
     * bench run via MeasureBatchSpeedups. Batch 2 only upgrades the
     * remainder loops to SSE width — near-parity with the autovectorized
     * scalar path — while batches 4 and 8 run the full 512-bit kernels;
     * batch 8's larger working set gives back a little of batch 4's win,
     * so the curve saturates (and slightly dips) past B=4.
     */
    double batch2_speedup = 1.1;
    double batch4_speedup = 2.1;
    double batch8_speedup = 2.05;

    /**
     * Per-gate cost of a bootstrapped gate evaluated inside a batch of
     * `b`: scalar cost scaled by the calibrated speedup, piecewise-linear
     * between the measured points, with the batch-8 gain held flat beyond
     * B = 8 (the kernel saturates once key streaming is amortized).
     * b <= 1 is exactly the scalar cost.
     */
    double BatchedGateSeconds(int32_t b) const {
        if (b <= 1) return bootstrap_gate_seconds;
        auto lerp = [](double lo, double hi, double t) {
            return lo + (hi - lo) * t;
        };
        double speedup;
        if (b >= 8) {
            speedup = batch8_speedup;
        } else if (b >= 4) {
            speedup = lerp(batch4_speedup, batch8_speedup, (b - 4) / 4.0);
        } else {
            speedup = lerp(batch2_speedup, batch4_speedup, (b - 2) / 2.0);
        }
        if (speedup < 1.0) speedup = 1.0;
        return bootstrap_gate_seconds / speedup;
    }
};

/** The distributed CPU platform (Table II + Section IV-D). */
struct ClusterConfig {
    std::string name = "xeon-cluster";
    int32_t nodes = 1;
    int32_t workers_per_node = 18;  ///< Ray actors per node (paper: ideal 18).
    CpuCostModel cpu;

    /** Driver-side serial cost to submit one Ray task. */
    double submit_seconds = 100e-6;
    /** Wave barrier cost within one node. */
    double barrier_local_seconds = 2e-3;
    /** Additional wave barrier cost once tasks span nodes. */
    double barrier_remote_seconds = 8e-3;
    /** NIC bandwidth in bytes/second (Table II: gigabit NIC). */
    double net_bandwidth = 125e6;
    /** Ciphertexts moved per remote task (result ship-back; inputs are
     *  pipelined with compute, matching the 0.094 % share of Fig. 7). */
    double ciphertexts_per_task = 1.0;
    /**
     * Bootstrapped gates fused into one worker task via the SoA batched
     * kernel (bootstrap_batch.h). Each task costs
     * `batch_size * cpu.BatchedGateSeconds(batch_size)` and one submit /
     * ship-back, so batching amortizes both the FFT-domain key streaming
     * and the driver-side submission cost. 1 reproduces the unbatched
     * model exactly.
     */
    int32_t batch_size = 1;

    int32_t TotalWorkers() const { return nodes * workers_per_node; }
};

/**
 * Worker failure and straggler model for the cluster simulator. A Ray
 * task on a failure-prone node may die mid-bootstrap (the driver detects
 * the loss after `detect_seconds` and re-executes, losing the partial
 * work) or land on a straggling worker (the task runs
 * `straggler_slowdown` times slower). Decisions are deterministic hashes
 * of (seed, wave, task, attempt) — the same model replays the same
 * failure schedule, like backend::FaultInjector.
 */
struct ClusterFaultModel {
    uint64_t seed = 1;
    /** Per-task-attempt probability the task dies before completing. */
    double task_failure_rate = 0.0;
    /** Driver-side delay to detect a lost task and resubmit it. */
    double detect_seconds = 0.5;
    /** Per-task probability of landing on a straggling worker. */
    double straggler_rate = 0.0;
    /** Execution-time multiplier for a straggling task. */
    double straggler_slowdown = 4.0;
    /**
     * Re-execution budget per task. After this many failed attempts the
     * next attempt always completes — the simulator models a driver that
     * reschedules onto a healthy worker rather than an unbounded loop.
     */
    int32_t max_reexecutions = 3;

    /**
     * Checkpoint interval in task-seconds: a failed attempt loses only
     * the work past its last multiple of this interval instead of the
     * whole attempt. 0 disables checkpointing (a failure restarts the
     * task from zero — the pre-checkpoint behavior, bit-exactly).
     */
    double checkpoint_interval_seconds = 0.0;
    /** Cost of writing one checkpoint (added per interval crossed). */
    double checkpoint_write_seconds = 0.0;

    bool Enabled() const {
        return task_failure_rate > 0.0 || straggler_rate > 0.0;
    }

    /**
     * Young/Daly optimal checkpoint interval for a task of
     * `task_seconds`: tau = sqrt(2 * C * MTBF) with C the checkpoint
     * write cost and MTBF the mean time between failures, here
     * task_seconds / task_failure_rate (one failure opportunity per
     * attempt). Returns 0 — checkpointing cannot pay off — when the
     * failure rate or the write cost is zero.
     */
    double OptimalCheckpointIntervalSeconds(double task_seconds) const {
        if (task_failure_rate <= 0.0 || checkpoint_write_seconds <= 0.0 ||
            task_seconds <= 0.0)
            return 0.0;
        return std::sqrt(2.0 * checkpoint_write_seconds *
                         (task_seconds / task_failure_rate));
    }
};

/** A GPU platform for the cuFHE / PyTFHE backend simulation. */
struct GpuConfig {
    std::string name;
    int32_t sms;                   ///< Streaming multiprocessors.
    int32_t sms_per_gate;          ///< SMs one bootstrap kernel occupies.
    double kernel_seconds;         ///< One bootstrapped gate kernel.
    double launch_seconds;         ///< Per-kernel-launch CPU cost (cuFHE).
    double transfer_sync_seconds;  ///< Per-transfer PCIe+sync latency.
    double pcie_bandwidth;         ///< Bytes/second.
    double graph_launch_seconds;   ///< Per CUDA-graph launch.
    double graph_build_per_gate;   ///< Host-side graph construction per gate.
    uint64_t batch_gates;          ///< Max sub-DAG batch size (GPU memory).
    /**
     * One elided linear gate (LXOR/LXNOR/LNOT) inside a CUDA graph: an
     * elementwise vector add over n+1 coefficients, bandwidth-bound and
     * ~1000x cheaper than a bootstrap kernel. Not subject to the
     * sms_per_gate occupancy limit.
     */
    double linear_kernel_seconds = 3e-6;

    /** Concurrent gate kernels the device sustains. */
    int32_t Concurrency() const { return sms / sms_per_gate; }
};

/** NVIDIA RTX A5000 24 GB (Table III). */
GpuConfig A5000();
/** NVIDIA RTX 4090 24 GB (Table III). */
GpuConfig Rtx4090();

/** Single-core runtime of a program under the CPU cost model. */
struct GateMix {
    uint64_t bootstrap_gates = 0;
    uint64_t linear_gates = 0;
};

inline double SingleCoreSeconds(const GateMix& mix, const CpuCostModel& cpu) {
    return mix.bootstrap_gates * cpu.bootstrap_gate_seconds +
           mix.linear_gates * cpu.linear_gate_seconds;
}


}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_COST_MODEL_H
