/**
 * @file
 * Job-level checkpoint/resume for program execution.
 *
 * A long encrypted job (umul32 is ~2.8k gates at ~42 ms per bootstrap)
 * that hits a transient fault near the end re-executes everything from
 * gate zero under plain retry. A checkpoint bounds that loss: at a wave
 * boundary the executor snapshots the minimal ciphertext set that is
 * still needed — pinned program outputs plus every value whose death
 * level lies at or beyond the boundary, exactly the liveness facts the
 * memory plan is computed from (pasm::ComputeValueLiveness) — and retry
 * restores those slots and re-executes only the gates past the cut.
 *
 * Two cut kinds share one wire record:
 *  - kLevel: every gate at wave level < boundary is done, none at or
 *    beyond it has started. Produced by the serving executor's quiesce
 *    barrier; valid to resume on any backend when the program carries no
 *    plan or a level-safe plan (all data and anti-dependency edges cross
 *    the cut forward).
 *  - kOrdinal: every instruction at index <= boundary is done. Produced
 *    by the sequential interpreter; valid on every backend and plan the
 *    loader accepts, since plan validity already forces all edges
 *    forward in instruction order.
 *
 * The record rides the tfhe/serialization version-3 frame (magic "CHTP",
 * CRC32C over the body), so any bit flip or truncation is detected at
 * decode time; a corrupt checkpoint is discarded and the job falls back
 * to full re-execution — never a wrong answer. A program fingerprint in
 * the body guards against restoring a checkpoint into a different
 * program.
 */
#ifndef PYTFHE_BACKEND_CHECKPOINT_H
#define PYTFHE_BACKEND_CHECKPOINT_H

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "backend/arena.h"
#include "pasm/memory_plan.h"
#include "pasm/program.h"
#include "tfhe/lwe.h"
#include "tfhe/serialization.h"

namespace pytfhe::backend {

/** Wire magic of the job-checkpoint record ("CHTP"). */
inline constexpr uint32_t kCheckpointMagic = 0x50544843;

/**
 * When to snapshot. Disabled by default (every_n_levels == 0): a
 * checkpoint costs one live-set copy, which only pays off when gates are
 * expensive (real bootstraps) or fault rates are non-trivial — the
 * Young/Daly interval math in ClusterFaultModel quantifies the
 * tradeoff.
 */
struct CheckpointPolicy {
    /** Snapshot every N wave levels; 0 disables checkpointing. */
    uint64_t every_n_levels = 0;
    /** Skip a boundary until at least this many gates ran since the
     * last snapshot (avoids checkpoint spam on deep, narrow DAGs). */
    uint64_t min_gates_between = 0;
    /** Skip snapshots whose record exceeds this; 0 = unlimited. */
    uint64_t max_bytes = 0;

    bool Enabled() const { return every_n_levels > 0; }
};

enum class CheckpointCut : uint8_t { kLevel = 0, kOrdinal = 1 };

/**
 * The latest checkpoint of one job, held serialized: the CRC32C frame is
 * the integrity story, so the bytes stay framed until a resume actually
 * decodes (and thereby verifies) them.
 */
struct JobCheckpoint {
    std::string record;            ///< Framed bytes; empty = no checkpoint.
    uint64_t gates_completed = 0;  ///< Mirror of the record field.

    bool Empty() const { return record.empty(); }
    size_t ByteSize() const { return record.size(); }
    void Clear() {
        record.clear();
        gates_completed = 0;
    }
};

/** Checkpoint identity guard: mixes the instruction stream, outputs, and
 * plan shape so a record never restores into a different program. */
uint64_t ProgramFingerprint(const pasm::Program& program);

/** A decoded (frame-verified) checkpoint record. */
template <typename C>
struct DecodedCheckpoint {
    CheckpointCut cut = CheckpointCut::kLevel;
    uint64_t boundary = 0;
    uint64_t gates_completed = 0;
    std::vector<std::pair<uint64_t, C>> values;  ///< (instr index, ct).
    std::vector<std::pair<uint64_t, uint8_t>> digits;  ///< Multibit plane.
};

/**
 * Execution state reconstructed from a cut: enough to restart any
 * dispatcher (sequential skip-loop, dependency-counting executor,
 * serving pickers) past the done set.
 */
struct ResumeState {
    std::vector<uint8_t> done;     ///< Per gate ordinal: already executed.
    std::vector<uint32_t> pending; ///< Per gate ordinal: preds left.
    std::vector<uint64_t> ready;   ///< Instruction indices ready to run.
    uint64_t gates_done = 0;
    uint64_t remaining = 0;
};

/**
 * Rebuilds dependency-counter state for resuming past `cut`/`boundary`.
 * `deps` must be the same dependency view the dispatcher schedules on
 * (plan anti-edges included) so the counts balance.
 */
ResumeState BuildResumeState(const pasm::Program& program,
                             const pasm::GateDependencies& deps,
                             CheckpointCut cut, uint64_t boundary);

/**
 * Whether a checkpoint of this cut kind may resume under `program`'s
 * plan. Ordinal cuts are always resumable (plan validity forces every
 * edge forward in instruction order); level cuts need a level-safe plan
 * (or none), since a sequential-tight plan may place an overwriter below
 * a cut its victim's readers sit above.
 */
inline bool CutValidForProgram(CheckpointCut cut,
                               const pasm::Program& program) {
    if (cut == CheckpointCut::kOrdinal) return true;
    const pasm::MemoryPlan* plan = program.Plan();
    return plan == nullptr || plan->level_safe;
}

/** Counters from checkpoint-aware runs, aggregated by the caller. */
struct CheckpointRunStats {
    uint64_t checkpoints_taken = 0;
    uint64_t checkpoint_bytes = 0;   ///< Size of the last record taken.
    uint64_t resumes = 0;            ///< Runs started from a checkpoint.
    uint64_t gates_resumed = 0;      ///< Gates skipped thanks to resume.
    uint64_t corrupt_discarded = 0;  ///< Records rejected at decode time.
};

namespace ckpt_detail {

inline void PutU8(std::string& out, uint8_t v) {
    out.push_back(static_cast<char>(v));
}
inline void PutU32(std::string& out, uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
inline void PutU64(std::string& out, uint64_t v) {
    PutU32(out, static_cast<uint32_t>(v));
    PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline bool GetU8(const std::string& body, size_t& pos, uint8_t* v) {
    if (body.size() - pos < 1) return false;
    *v = static_cast<uint8_t>(body[pos++]);
    return true;
}
inline bool GetU32(const std::string& body, size_t& pos, uint32_t* v) {
    if (body.size() - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
        *v |= static_cast<uint32_t>(static_cast<uint8_t>(body[pos + i]))
              << (8 * i);
    pos += 4;
    return true;
}
inline bool GetU64(const std::string& body, size_t& pos, uint64_t* v) {
    uint32_t lo, hi;
    if (!GetU32(body, pos, &lo) || !GetU32(body, pos, &hi)) return false;
    *v = lo | (static_cast<uint64_t>(hi) << 32);
    return true;
}

}  // namespace ckpt_detail

/**
 * Per-ciphertext-type body codec. Evaluators whose ciphertext has no
 * specialization compile but cannot checkpoint (kSupported == false);
 * dispatchers gate on it with `if constexpr`.
 */
template <typename C>
struct CiphertextCodec {
    static constexpr bool kSupported = false;
};

template <>
struct CiphertextCodec<bool> {
    static constexpr bool kSupported = true;
    static void Encode(std::string& out, bool v) {
        ckpt_detail::PutU8(out, v ? 1 : 0);
    }
    static bool Decode(const std::string& body, size_t& pos, bool* v) {
        uint8_t b;
        if (!ckpt_detail::GetU8(body, pos, &b) || b > 1) return false;
        *v = b != 0;
        return true;
    }
};

template <>
struct CiphertextCodec<tfhe::LweSample> {
    static constexpr bool kSupported = true;
    static void Encode(std::string& out, const tfhe::LweSample& s) {
        ckpt_detail::PutU64(out, s.a.size());
        for (tfhe::Torus32 t : s.a) ckpt_detail::PutU32(out, t);
        ckpt_detail::PutU32(out, s.b);
    }
    static bool Decode(const std::string& body, size_t& pos,
                       tfhe::LweSample* s) {
        uint64_t n;
        if (!ckpt_detail::GetU64(body, pos, &n) || n > (UINT64_C(1) << 24))
            return false;
        s->a.resize(n);
        for (auto& t : s->a)
            if (!ckpt_detail::GetU32(body, pos, &t)) return false;
        return ckpt_detail::GetU32(body, pos, &s->b);
    }
};

/**
 * Serializes the live slot set of `plane` at a cut into a framed
 * checkpoint record. `live` is the instruction-index list from
 * pasm::LiveValuesAtLevelCut / LiveValuesAtOrdinalCut.
 */
template <typename Evaluator>
std::string EncodeCheckpoint(const pasm::Program& program,
                             const ValuePlane<Evaluator>& plane,
                             std::span<const uint64_t> live,
                             CheckpointCut cut, uint64_t boundary,
                             uint64_t gates_completed) {
    using C = typename Evaluator::Ciphertext;
    static_assert(CiphertextCodec<C>::kSupported,
                  "no checkpoint codec for this ciphertext type");
    std::string body;
    ckpt_detail::PutU64(body, ProgramFingerprint(program));
    ckpt_detail::PutU8(body, static_cast<uint8_t>(cut));
    ckpt_detail::PutU64(body, boundary);
    ckpt_detail::PutU64(body, gates_completed);
    ckpt_detail::PutU64(body, live.size());
    for (uint64_t idx : live) {
        ckpt_detail::PutU64(body, idx);
        CiphertextCodec<C>::Encode(body, plane.CopyValue(idx));
    }
    ckpt_detail::PutU8(body, plane.HasDigits() ? 1 : 0);
    if (plane.HasDigits()) {
        ckpt_detail::PutU64(body, live.size());
        for (uint64_t idx : live) {
            ckpt_detail::PutU64(body, idx);
            ckpt_detail::PutU8(body, plane.DigitOf(idx));
        }
    }
    std::ostringstream os;
    tfhe::SaveFramedRecord(os, kCheckpointMagic, body);
    return std::move(os).str();
}

/**
 * Verifies the frame (CRC32C), the fingerprint, and the body structure
 * of `record`; nullopt with a diagnostic in `error` on any mismatch —
 * the caller discards the checkpoint and re-executes from scratch.
 * `end_index` bounds the stored instruction indices (one past the last
 * valid index of the target program).
 */
template <typename C>
std::optional<DecodedCheckpoint<C>> DecodeCheckpoint(
    const std::string& record, uint64_t fingerprint, uint64_t end_index,
    std::string* error = nullptr) {
    auto fail = [&](const char* message) -> std::optional<DecodedCheckpoint<C>> {
        if (error) *error = std::string("load JobCheckpoint: ") + message;
        return std::nullopt;
    };
    std::istringstream is(record);
    std::optional<std::string> body =
        tfhe::LoadFramedRecord(is, kCheckpointMagic, "JobCheckpoint", error);
    if (!body) return std::nullopt;
    size_t pos = 0;
    DecodedCheckpoint<C> out;
    uint64_t fp, count;
    uint8_t cut;
    if (!ckpt_detail::GetU64(*body, pos, &fp))
        return fail("truncated fingerprint");
    if (fp != fingerprint)
        return fail("program fingerprint mismatch (checkpoint belongs to "
                    "a different program)");
    if (!ckpt_detail::GetU8(*body, pos, &cut) || cut > 1)
        return fail("bad cut kind");
    out.cut = static_cast<CheckpointCut>(cut);
    if (!ckpt_detail::GetU64(*body, pos, &out.boundary) ||
        !ckpt_detail::GetU64(*body, pos, &out.gates_completed))
        return fail("truncated cut header");
    if (!ckpt_detail::GetU64(*body, pos, &count) || count > end_index)
        return fail("bad value count");
    out.values.resize(count);
    for (auto& [idx, value] : out.values) {
        if (!ckpt_detail::GetU64(*body, pos, &idx) || idx == 0 ||
            idx >= end_index)
            return fail("bad value index");
        if (!CiphertextCodec<C>::Decode(*body, pos, &value))
            return fail("truncated ciphertext");
    }
    uint8_t has_digits;
    if (!ckpt_detail::GetU8(*body, pos, &has_digits) || has_digits > 1)
        return fail("bad digit-plane flag");
    if (has_digits) {
        if (!ckpt_detail::GetU64(*body, pos, &count) || count > end_index)
            return fail("bad digit count");
        out.digits.resize(count);
        for (auto& [idx, digit] : out.digits) {
            if (!ckpt_detail::GetU64(*body, pos, &idx) || idx == 0 ||
                idx >= end_index)
                return fail("bad digit index");
            if (!ckpt_detail::GetU8(*body, pos, &digit))
                return fail("truncated digit");
        }
    }
    if (pos != body->size()) return fail("trailing bytes after checkpoint");
    return out;
}

/** Writes a decoded checkpoint's values back into a freshly Reset plane. */
template <typename Evaluator>
void RestoreCheckpoint(
    ValuePlane<Evaluator>& plane,
    const DecodedCheckpoint<typename Evaluator::Ciphertext>& decoded) {
    for (const auto& [idx, value] : decoded.values)
        plane.RestoreValue(idx, value);
    for (const auto& [idx, digit] : decoded.digits)
        plane.RestoreDigit(idx, digit);
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CHECKPOINT_H
