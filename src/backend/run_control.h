/**
 * @file
 * Cooperative run control: the cancel/deadline token threaded through
 * every execution path, plus the typed errors an aborted run raises.
 *
 * Split out of interpreter.h so low-level modules (fault injection, which
 * must interrupt injected stalls when the surrounding run is being
 * abandoned) can consume RunControl without pulling in the interpreter
 * templates — fault.h is included BY interpreter.h, so the control type
 * has to live below both.
 */
#ifndef PYTFHE_BACKEND_RUN_CONTROL_H
#define PYTFHE_BACKEND_RUN_CONTROL_H

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace pytfhe::backend {

/** A run was abandoned because its RunControl cancel flag was raised. */
class CancelledError : public std::runtime_error {
  public:
    CancelledError() : std::runtime_error("run cancelled") {}
};

/** A run was abandoned because its RunControl deadline passed. */
class DeadlineExceededError : public std::runtime_error {
  public:
    DeadlineExceededError() : std::runtime_error("run deadline exceeded") {}
};

/**
 * Cooperative mid-run controls, checked at gate granularity: a run stops
 * between gates once the deadline passes or the (caller-owned) cancel flag
 * is raised, and the interpreter throws the matching typed error after the
 * in-flight gates drain. Defaults are fully disengaged and add a single
 * branch to the hot loop. Partial results are discarded — an aborted run
 * produces no outputs.
 */
struct RunControl {
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    const std::atomic<bool>* cancel = nullptr;

    bool Engaged() const {
        return cancel != nullptr ||
               deadline != std::chrono::steady_clock::time_point::max();
    }

    /** 0 = keep going, else the abort reason observed right now. */
    enum class Abort { kNone, kCancelled, kDeadline };
    Abort Check() const {
        if (cancel != nullptr &&
            cancel->load(std::memory_order_relaxed))
            return Abort::kCancelled;
        if (deadline != std::chrono::steady_clock::time_point::max() &&
            std::chrono::steady_clock::now() >= deadline)
            return Abort::kDeadline;
        return Abort::kNone;
    }

    /** Throws the typed error for a non-kNone abort reason. */
    [[noreturn]] static void Raise(Abort reason) {
        if (reason == Abort::kDeadline) throw DeadlineExceededError();
        throw CancelledError();
    }
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_RUN_CONTROL_H
