/**
 * @file
 * The BFS DAG-traversal scheduler of Algorithm 1.
 *
 * Starting from the inputs, each wave ("level") collects every gate whose
 * predecessors have all been computed; waves are what the distributed
 * backend submits to the worker pool and what the GPU backend packs into
 * CUDA-graph batches. The schedule is computed once per program and shared
 * by every backend and simulator.
 */
#ifndef PYTFHE_BACKEND_SCHEDULER_H
#define PYTFHE_BACKEND_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "pasm/program.h"

namespace pytfhe::backend {

/** The level-by-level schedule of a program's gate instructions. */
struct Schedule {
    /** levels[i] = instruction indices of gates ready in wave i. */
    std::vector<std::vector<uint64_t>> levels;

    uint64_t NumLevels() const { return levels.size(); }
    uint64_t TotalGates() const {
        uint64_t n = 0;
        for (const auto& l : levels) n += l.size();
        return n;
    }
    /** Widest wave — the parallelism ceiling. */
    uint64_t MaxWidth() const {
        uint64_t w = 0;
        for (const auto& l : levels) w = std::max<uint64_t>(w, l.size());
        return w;
    }
    /** Average gates per wave. */
    double AvgWidth() const {
        return levels.empty()
                   ? 0.0
                   : static_cast<double>(TotalGates()) / levels.size();
    }
};

/**
 * Computes the BFS schedule (Algorithm 1): a gate's level is one more than
 * the deepest of its gate predecessors; inputs are level 0.
 */
Schedule ComputeSchedule(const pasm::Program& program);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_SCHEDULER_H
