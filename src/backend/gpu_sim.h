/**
 * @file
 * Event-driven simulation of the GPU backend (Section IV-E).
 *
 * Two submission disciplines are modeled over the same compiled program:
 *
 *  - cuFHE mode (Fig. 8): every gate is an individual API call — copy the
 *    input ciphertexts host-to-device, launch the bootstrap kernel, copy
 *    the result back, with the CPU blocked throughout. No overlap between
 *    gates.
 *
 *  - PyTFHE mode (Fig. 9): the program is cut into sub-DAG batches of up to
 *    GpuConfig::batch_gates gates, each compiled into one CUDA-Graph
 *    launch. Intermediate values stay on the device; independent gates in a
 *    wave run concurrently across SMs; and the CPU builds batch i+1 while
 *    the GPU executes batch i.
 *
 * Substitution note (DESIGN.md): no physical GPU is present; the simulator
 * executes the real schedule against the GpuConfig cost model, and the
 * cuFHE-vs-PyTFHE gap emerges from the modeled serialization, which is the
 * mechanism the paper identifies.
 */
#ifndef PYTFHE_BACKEND_GPU_SIM_H
#define PYTFHE_BACKEND_GPU_SIM_H

#include <string>
#include <vector>

#include "backend/cost_model.h"
#include "backend/scheduler.h"

namespace pytfhe::backend {

/** One lane interval for timeline rendering (Figs. 8 and 9). */
struct TimelineEvent {
    double start;
    double end;
    std::string lane;   ///< "H2D", "Kernel", "D2H", "CPU".
    std::string label;
};

/** Aggregate result of a simulated GPU execution. */
struct GpuResult {
    double seconds = 0;
    double h2d_seconds = 0;
    double kernel_seconds = 0;   ///< Busy-time of the kernel lane.
    double d2h_seconds = 0;
    double launch_seconds = 0;
    double host_build_seconds = 0;  ///< CPU batch construction (overlapped).
    uint64_t batches = 0;
    uint64_t gates = 0;

    /** Timeline (populated only for small programs, <= max_events). */
    std::vector<TimelineEvent> timeline;
};

/** Simulates the cuFHE per-gate discipline. */
GpuResult SimulateCuFhe(const pasm::Program& program, const GpuConfig& gpu,
                        size_t max_events = 64);

/** Simulates the PyTFHE CUDA-Graph batched discipline. */
GpuResult SimulatePyTfhe(const pasm::Program& program, const GpuConfig& gpu,
                         size_t max_events = 64);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_GPU_SIM_H
