/**
 * @file
 * Calibration: derive simulator cost models from real measurements on the
 * local machine, instead of the paper-scale defaults in cost_model.h.
 */
#ifndef PYTFHE_BACKEND_CALIBRATE_H
#define PYTFHE_BACKEND_CALIBRATE_H

#include "backend/cost_model.h"
#include "tfhe/gates.h"

namespace pytfhe::backend {

/**
 * Times `samples` bootstrapped gates (and noiseless NOTs) through the
 * given evaluator and returns a cost model with the measured means.
 */
CpuCostModel MeasureCpuCostModel(tfhe::GateEvaluator& gates,
                                 tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                                 int32_t samples = 10);

/**
 * Measures the batched-bootstrap speedups of the SoA kernel
 * (GateEvaluator::BatchedLinearBootstrap) at batch 2/4/8 relative to
 * batch 1 on this machine, and overwrites `model`'s batchN_speedup
 * fields. `samples` batches are timed per size. Speedups below 1 are
 * clamped to 1 so a noisy measurement never makes the simulators model
 * batching as a slowdown.
 */
void MeasureBatchSpeedups(tfhe::GateEvaluator& gates,
                          tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                          CpuCostModel* model, int32_t samples = 3);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CALIBRATE_H
