/**
 * @file
 * Calibration: derive simulator cost models from real measurements on the
 * local machine, instead of the paper-scale defaults in cost_model.h.
 */
#ifndef PYTFHE_BACKEND_CALIBRATE_H
#define PYTFHE_BACKEND_CALIBRATE_H

#include "backend/cost_model.h"
#include "tfhe/gates.h"

namespace pytfhe::backend {

/**
 * Times `samples` bootstrapped gates (and noiseless NOTs) through the
 * given evaluator and returns a cost model with the measured means.
 */
CpuCostModel MeasureCpuCostModel(tfhe::GateEvaluator& gates,
                                 tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                                 int32_t samples = 10);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CALIBRATE_H
