/**
 * @file
 * Multi-job serving substrate: many programs interleaved gate-by-gate on
 * one persistent worker pool.
 *
 * Executor::Run multiplexes the gates of ONE program; a server under load
 * has many small encrypted jobs whose individual dependency chains leave
 * most workers idle (a ripple adder keeps ~1.3 threads busy no matter how
 * many it is given). ServingExecutor keeps the dependency-counting
 * discipline per job but lets the shared workers pick ready gates from
 * every admitted job, so independent jobs fill each other's pipeline
 * bubbles.
 *
 * Scheduling policy, in order:
 *   - Admission: at most `max_active_jobs` jobs execute concurrently;
 *     excess submissions wait in a FIFO queue. Submissions beyond
 *     `max_pending_jobs` (queued + active) are rejected immediately with
 *     the typed OverloadedError — bounded memory, no silent growth.
 *   - Fairness: workers scan active jobs round-robin and each job holds at
 *     most `per_job_inflight_cap` gates in flight, so one wide job cannot
 *     monopolize the pool while narrow jobs starve.
 *   - Chaining: a worker finishing a gate runs one newly ready successor
 *     of the same job directly (no queue round-trip), which preserves the
 *     in-flight count it already holds — depth-first within a job, fair
 *     across jobs.
 *
 * Cancellation and deadlines are cooperative at gate granularity: a
 * cancelled or expired job stops evaluating gates but still drains its
 * dependency counts (skipped gates cost a counter decrement, not a
 * bootstrap), so it terminates promptly without special-casing the
 * scheduler. Queued jobs check the deadline at admission; there is no
 * timer thread.
 *
 * Fault tolerance (fault.h): a throwing gate evaluation — a real
 * evaluator exception or one injected by ServingOptions::fault_injector —
 * fails only its own job. The first error is latched as a typed
 * GateExecutionError, the job's remaining gates skip-and-drain exactly
 * like a cancellation, and the pool keeps serving every other job. When
 * the failure is transient and ServingOptions::retry allows another
 * attempt, the job is re-queued with exponential backoff (it waits in the
 * queue until its backoff elapses; later submissions may be admitted
 * ahead of it) and re-executed from its retained inputs. The degradation
 * ladder: the final permitted attempt runs isolated on the sequential
 * interpreter instead of the interleaved pool, so a job repeatedly killed
 * by the parallel substrate still gets one clean shot. Jobs that exhaust
 * their attempts (or hit a permanent fault) resolve kFailed and
 * Outputs() rethrows the latched error.
 *
 * Checkpointed execution (checkpoint.h): with ServingOptions::checkpoint
 * enabled, each job quiesces at every Nth wave level — newly ready gates
 * at or beyond the armed boundary are held back instead of published, so
 * once every gate below the boundary has drained the job is provably
 * quiescent — and the live slot set (pasm::ComputeValueLiveness: pinned
 * outputs plus values whose death level reaches the boundary) is
 * snapshotted into a CRC32C-framed record. A retry then resumes from the
 * last valid checkpoint and re-executes only the gates past the cut; a
 * corrupt record is discarded (counted) and the retry falls back to full
 * re-execution — never a wrong answer. Jobs that keep dying after
 * resuming are quarantined after max_resume_failures resumed attempts
 * (typed JobQuarantinedError) so a poison job cannot burn pool time
 * forever.
 *
 * Stall watchdog: with stall_timeout_seconds > 0 a dedicated thread
 * compares each active job's progress heartbeat (bumped per processed
 * gate) against the timeout. A stalled job is flagged (jobs_stalled),
 * its in-flight gates are asked to abandon injected stalls early (the
 * abort hint feeds the FaultInjector's cooperative sleep), and the job is
 * preempted at the next gate boundary — retried from its checkpoint like
 * any transient failure, or failed with the typed StalledError once
 * attempts run out.
 */
#ifndef PYTFHE_BACKEND_SERVING_H
#define PYTFHE_BACKEND_SERVING_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "backend/checkpoint.h"
#include "backend/executor.h"
#include "backend/fault.h"
#include "backend/interpreter.h"
#include "circuit/gate_type.h"
#include "pasm/memory_plan.h"
#include "pasm/program.h"

namespace pytfhe::backend {

/**
 * Typed admission rejection: queued + active jobs hit the bound. Carries
 * a machine-readable retry-after hint — the queue depth at rejection and
 * an estimate of how long the backlog takes to drain (average completed-
 * job run time x backlog / active slots; 0 until history exists) — so a
 * client can back off proportionally instead of parsing "retry later".
 */
class OverloadedError : public std::runtime_error {
  public:
    OverloadedError(uint32_t queue_depth, double estimated_drain_seconds)
        : std::runtime_error(
              "ServingExecutor: overloaded (" +
              std::to_string(queue_depth) + " jobs pending; estimated " +
              "drain " + std::to_string(estimated_drain_seconds) +
              " s); retry later"),
          queue_depth_(queue_depth),
          estimated_drain_seconds_(estimated_drain_seconds) {}

    /** Jobs pending (queued + active) at rejection time. */
    uint32_t queue_depth() const { return queue_depth_; }
    /** Retry-after hint: estimated seconds until the backlog drains. */
    double estimated_drain_seconds() const {
        return estimated_drain_seconds_;
    }

  private:
    uint32_t queue_depth_;
    double estimated_drain_seconds_;
};

/**
 * Typed admission rejection for ServingOptions::max_job_arena_bytes: the
 * job's ciphertext plane would exceed the per-job arena budget. Unlike
 * OverloadedError this is not transient — resubmitting the same program
 * against the same budget always fails; the client must split the job or
 * the operator must raise the budget.
 */
class ArenaBudgetError : public std::runtime_error {
  public:
    ArenaBudgetError(size_t required_bytes, size_t budget_bytes)
        : std::runtime_error(
              "ServingExecutor: job ciphertext arena needs " +
              std::to_string(required_bytes) + " bytes, budget is " +
              std::to_string(budget_bytes)),
          required_bytes_(required_bytes),
          budget_bytes_(budget_bytes) {}

    size_t required_bytes() const { return required_bytes_; }
    size_t budget_bytes() const { return budget_bytes_; }

  private:
    size_t required_bytes_;
    size_t budget_bytes_;
};

/**
 * A job made no progress for ServingOptions::stall_timeout_seconds and
 * every permitted re-execution also stalled or failed. Thrown by
 * Outputs() of a kFailed job whose terminal attempt was killed by the
 * watchdog without a latched gate error.
 */
class StalledError : public std::runtime_error {
  public:
    StalledError(uint64_t job_seq, double timeout_seconds)
        : std::runtime_error("job " + std::to_string(job_seq) +
                             " stalled (no progress for " +
                             std::to_string(timeout_seconds) +
                             " s) and retries ran out"),
          job_seq_(job_seq),
          timeout_seconds_(timeout_seconds) {}

    uint64_t job_seq() const { return job_seq_; }
    double timeout_seconds() const { return timeout_seconds_; }

  private:
    uint64_t job_seq_;
    double timeout_seconds_;
};

/**
 * Poison-job quarantine: a job kept failing even after resuming from its
 * checkpoint ServingOptions::max_resume_failures times. Retrying further
 * would burn pool time deterministically; the job is failed with this
 * typed error instead.
 */
class JobQuarantinedError : public std::runtime_error {
  public:
    JobQuarantinedError(uint64_t job_seq, uint32_t resume_failures)
        : std::runtime_error("job " + std::to_string(job_seq) +
                             " quarantined after " +
                             std::to_string(resume_failures) +
                             " failed resume(s) from checkpoint"),
          job_seq_(job_seq),
          resume_failures_(resume_failures) {}

    uint64_t job_seq() const { return job_seq_; }
    uint32_t resume_failures() const { return resume_failures_; }

  private:
    uint64_t job_seq_;
    uint32_t resume_failures_;
};

/** Lifecycle of one submitted job. */
enum class JobStatus {
    kQueued,    ///< Admitted to the service, waiting for an active slot.
    kRunning,   ///< Gates executing (or draining after cancel/expiry).
    kDone,      ///< All gates executed; outputs available.
    kCancelled, ///< Cancel() landed before completion; no outputs.
    kDeadlineExceeded,  ///< Deadline passed before completion; no outputs.
    kFailed,    ///< A gate evaluation threw and retries ran out; no outputs.
};

inline bool IsTerminal(JobStatus s) {
    return s == JobStatus::kDone || s == JobStatus::kCancelled ||
           s == JobStatus::kDeadlineExceeded || s == JobStatus::kFailed;
}

/** Per-job accounting, final once the job reaches a terminal status. */
struct JobMetrics {
    double queue_seconds = 0.0;  ///< Submit -> first active (admission).
    double run_seconds = 0.0;    ///< Admission -> terminal.
    double wall_seconds = 0.0;   ///< Submit -> terminal.
    uint64_t total_gates = 0;    ///< Gates in the program.
    uint64_t gates_executed = 0; ///< Gates actually evaluated.
    uint64_t gates_skipped = 0;  ///< Drained without evaluation.
    /** Executed kLin* gates: bootstraps the elision pass saved this job. */
    uint64_t bootstraps_elided = 0;
    /** Executions of the job: 1 = first attempt succeeded, no retries. */
    uint32_t attempts = 1;
    /** Gate evaluations that threw, across all attempts. */
    uint64_t gate_failures = 0;
    /** True when the final attempt ran on the isolated sequential path. */
    bool degraded_sequential = false;
    /** Wave-boundary snapshots captured across all attempts. */
    uint64_t checkpoints_taken = 0;
    /** Retry attempts that restored a checkpoint instead of starting over. */
    uint64_t checkpoint_resumes = 0;
    /** Gates skipped on resume: work a checkpoint saved this job. */
    uint64_t gates_resumed = 0;
    /** Gates evaluated more than once across attempts (kDone jobs only):
     *  the retry waste checkpointing exists to bound. */
    uint64_t gates_reexecuted = 0;
    /** Times the watchdog flagged this job as making no progress. */
    uint64_t stalls = 0;
    /** True when the job was failed by the poison-job quarantine. */
    bool quarantined = false;
};

/** Serving-wide counters; a consistent snapshot is taken under the lock. */
struct ServingStats {
    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t jobs_cancelled = 0;
    uint64_t jobs_deadline_exceeded = 0;
    uint64_t jobs_failed = 0;    ///< Terminal kFailed (retries exhausted).
    uint64_t jobs_rejected = 0;  ///< Backpressure rejections (Overloaded).
    /** Rejections by the per-tenant admission quota (also Overloaded). */
    uint64_t jobs_rejected_tenant_quota = 0;
    uint64_t job_retries = 0;    ///< Re-executions after transient faults.
    uint64_t jobs_degraded = 0;  ///< Final attempts on the sequential path.
    uint64_t gates_executed = 0;
    uint64_t bootstraps_elided = 0;
    double total_queue_seconds = 0.0;
    double total_run_seconds = 0.0;
    uint32_t max_active_observed = 0;  ///< Peak concurrently active jobs.
    // Checkpoint/resume accounting (ServingOptions::checkpoint).
    uint64_t checkpoints_taken = 0;    ///< Wave-boundary snapshots captured.
    uint64_t checkpoint_bytes = 0;     ///< Cumulative captured record bytes.
    uint64_t checkpoint_resumes = 0;   ///< Retries restored from a snapshot.
    /** Records rejected at decode (CRC/fingerprint/structure mismatch). */
    uint64_t checkpoints_corrupt_discarded = 0;
    uint64_t gates_resumed = 0;        ///< Gates resume skipped re-running.
    /** Gates evaluated more than once across attempts of completed jobs:
     *  the re-execution waste the faulted-serving bench reports. */
    uint64_t gates_reexecuted = 0;
    uint64_t jobs_stalled = 0;         ///< Watchdog no-progress flags.
    uint64_t jobs_quarantined = 0;     ///< Poison jobs failed terminally.
};

/** Knobs for one ServingExecutor; all bounds must be >= 1. */
struct ServingOptions {
    int32_t num_workers = 4;
    /** Jobs executing concurrently; the rest queue FIFO. */
    uint32_t max_active_jobs = 8;
    /** Queued + active bound; submissions beyond it throw Overloaded. */
    uint32_t max_pending_jobs = 64;
    /** Fairness cap: gates of one job in flight at once (scaled by the
     *  job's SubmitOptions::weight — a weight-2 tenant holds up to twice
     *  the in-flight gates of a weight-1 tenant under contention). */
    uint32_t per_job_inflight_cap = 4;
    /**
     * Per-tenant admission quota: pending (queued + active) jobs one
     * tenant (SubmitOptions::tenant) may hold; submissions beyond it
     * throw OverloadedError so one tenant cannot fill the whole service
     * queue. 0 = unlimited. Jobs with tenant 0 share one anonymous pool.
     */
    uint32_t max_pending_jobs_per_tenant = 0;
    /**
     * Per-tenant concurrency quota: jobs of one tenant executing at once;
     * excess jobs wait in the queue (FIFO among eligible jobs, exactly
     * like retry backoff) without blocking other tenants' admissions.
     * 0 = unlimited.
     */
    uint32_t max_active_jobs_per_tenant = 0;
    /**
     * Re-execution of jobs killed by transient gate failures. The default
     * (max_attempts 1) fails a job on its first error; with more
     * attempts, inputs are retained per job and the last permitted
     * attempt runs on the isolated sequential path (degradation ladder).
     */
    RetryPolicy retry;
    /**
     * Optional deterministic fault injection applied to every gate of
     * every job (caller-owned, must outlive the executor). Null = no
     * injection, zero overhead beyond one branch per gate.
     */
    FaultInjector* fault_injector = nullptr;
    /**
     * Maximum simultaneously ready gates one worker claims at a time and
     * fuses into one batched bootstrap kernel call (evaluators opt in via
     * ApplyBatch; others run the claim gate-by-gate). Gates are gathered
     * round-robin across active jobs — batching composes with fairness —
     * but only from jobs sharing the first picked job's evaluator, since
     * one batched blind rotation uses one bootstrapping key. Within a job,
     * batch mode serves the ready list FIFO. Fault injection stays per
     * gate: a faulted gate inside a batch fails only its own job.
     * 1 disables batching and leaves the scalar pick/chain path untouched.
     */
    int32_t batch_size = 1;
    /**
     * Per-job ciphertext arena budget in bytes: a submission whose value
     * plane (ValuePlane::RequiredBytes — the memory-planned slot count
     * times the ciphertext stride) would exceed this throws the typed
     * ArenaBudgetError at Submit time, before any state is allocated.
     * 0 = unlimited. Memory planning shrinks a job's plane from one slot
     * per instruction to one per peak-live value, so planned programs fit
     * budgets their unplanned forms would blow through.
     */
    size_t max_job_arena_bytes = 0;
    /**
     * Wave-boundary checkpointing (checkpoint.h): every
     * checkpoint.every_n_levels wave levels a job quiesces and its live
     * ciphertext set is snapshotted, so a retry resumes from the cut
     * instead of gate zero. Disabled by default. Requires a level-safe
     * memory plan (or none) and a checkpoint codec for the evaluator's
     * ciphertext type; jobs that qualify for neither simply run
     * uncheckpointed. The degraded sequential attempt checkpoints too
     * (ordinal cuts, via RunProgramCheckpointed).
     */
    CheckpointPolicy checkpoint;
    /**
     * Stall watchdog: a job making no gate progress for this long is
     * flagged stalled, preempted at the next gate boundary (its injected
     * stalls are interrupted cooperatively), and retried from its last
     * checkpoint. 0 disables the watchdog. Choose a timeout comfortably
     * above the slowest legitimate gate — at bootstrap granularity a
     * false positive costs a retry, not a wrong answer.
     */
    double stall_timeout_seconds = 0.0;
    /** Watchdog poll period; 0 derives one from the timeout (~1/4, clamped
     *  to [1 ms, 250 ms]). */
    double stall_poll_seconds = 0.0;
    /**
     * Poison-job quarantine: after this many failed attempts that had
     * resumed from a checkpoint, the job is failed with the typed
     * JobQuarantinedError instead of retried again. 0 disables (plain
     * RetryPolicy::max_attempts still bounds the total attempts).
     */
    uint32_t max_resume_failures = 0;
};

/**
 * The multi-job scheduler. One instance per service; workers are the
 * persistent pool of a caller-owned Executor (the executor must outlive
 * this object, and its pool is occupied for this object's whole lifetime).
 * Evaluators passed to Submit must be safe to call concurrently and must
 * outlive their jobs — a serving registry typically owns one evaluator per
 * tenant key.
 *
 * Thread-safety: Submit, Stop, stats and every Job method may be called
 * from any thread.
 */
template <typename Evaluator>
class ServingExecutor {
  public:
    using Ciphertext = typename Evaluator::Ciphertext;

    /** Per-submission options (service-wide knobs live in ServingOptions). */
    struct SubmitOptions {
        /** Absolute wall deadline; time_point::max() = none. */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
        /**
         * Tenant identity for the per-tenant quotas (a serving registry
         * passes the KeyId value). 0 = anonymous; anonymous jobs share
         * one quota pool.
         */
        uint64_t tenant = 0;
        /**
         * Fairness weight: scales this job's share of the in-flight gate
         * cap (per_job_inflight_cap * weight). Clamped to >= 1.
         */
        uint32_t weight = 1;
        /**
         * Opaque lifetime token held by the job until it is destroyed.
         * A serving registry pins the evaluator's owning entry here so a
         * key-cache eviction cannot free key material under an in-flight
         * job — the evaluator passed to Submit must stay alive while any
         * job references it, and this is how the registry guarantees it.
         */
        std::shared_ptr<void> pin;
    };

    class Job;

  private:
    using Clock = std::chrono::steady_clock;
    using JobPtr = std::shared_ptr<Job>;

    /**
     * All shared scheduler state, one mutex. Shared-ptr-owned so a Job
     * handle outliving the ServingExecutor keeps the synchronization
     * primitives its methods lock alive.
     */
    struct Core {
        explicit Core(ServingOptions o) : opts(o) {}

        const ServingOptions opts;

        std::mutex mu;
        std::condition_variable work_cv;  ///< Workers wait for ready gates.
        std::condition_variable watchdog_cv;  ///< Wakes the stall watchdog.
        std::vector<JobPtr> active;
        std::deque<JobPtr> queued;
        size_t rr = 0;  ///< Round-robin cursor into `active`.
        bool shutdown = false;
        ServingStats stats;

        /** Live per-tenant job counts, for the admission quotas. */
        struct TenantLoad {
            uint32_t pending = 0;  ///< Queued + active jobs.
            uint32_t active = 0;   ///< Jobs in the active set.
        };
        std::map<uint64_t, TenantLoad> tenant_load;

        /** Pending-count bump at submission (quota already checked). */
        void TenantSubmittedLocked(uint64_t tenant) {
            ++tenant_load[tenant].pending;
        }

        /** A job left the system entirely (any terminal transition). */
        void TenantFinishedLocked(uint64_t tenant) {
            auto it = tenant_load.find(tenant);
            if (it == tenant_load.end()) return;
            if (it->second.pending > 0) --it->second.pending;
            if (it->second.pending == 0 && it->second.active == 0)
                tenant_load.erase(it);
        }

        /** A job left the active set (finished or re-queued for retry). */
        void TenantDeactivatedLocked(uint64_t tenant) {
            auto it = tenant_load.find(tenant);
            if (it == tenant_load.end()) return;
            if (it->second.active > 0) --it->second.active;
            if (it->second.pending == 0 && it->second.active == 0)
                tenant_load.erase(it);
        }

        /** True when the tenant may occupy another active slot. */
        bool TenantMayActivateLocked(uint64_t tenant) const {
            if (opts.max_active_jobs_per_tenant == 0) return true;
            auto it = tenant_load.find(tenant);
            return it == tenant_load.end() ||
                   it->second.active < opts.max_active_jobs_per_tenant;
        }

        /**
         * Arms the next checkpoint boundary of a checkpoint-enabled job,
         * given that every gate at wave level <= done_level is complete
         * and no gate above done_level has started (true at job start, at
         * a fresh retry, after a capture at level done_level + 1, and
         * after a level-cut resume at boundary done_level + 1). Newly
         * ready gates at or beyond the boundary are held back until the
         * capture fires, which is what makes the boundary a quiesce
         * point: once every gate below it drains, nothing of the job is
         * running. Past the last level the barrier is dropped entirely.
         * Ready/held lists are re-partitioned against the new boundary.
         */
        void ArmBarrierLocked(Job& job, uint64_t done_level) {
            const uint64_t boundary =
                done_level + opts.checkpoint.every_n_levels + 1;
            if (!job.ckpt_enabled || boundary > job.max_level) {
                ReleaseBarrierLocked(job);
                return;
            }
            job.ckpt_boundary = boundary;
            // Gate levels are contiguous 1..max_level (ASAP levels), so
            // at least one unfinished gate sits below every armed
            // boundary — the capture trigger cannot starve.
            job.below_remaining = job.cum_gates[boundary] -
                                  job.cum_gates[done_level + 1];
            std::vector<uint64_t> ready, held;
            for (uint64_t g : job.ready)
                (job.liveness.level[g] < boundary ? ready : held)
                    .push_back(g);
            for (uint64_t g : job.held)
                (job.liveness.level[g] < boundary ? ready : held)
                    .push_back(g);
            job.ready.swap(ready);
            job.held.swap(held);
        }

        /** Drops the quiesce barrier and publishes every held gate (drain,
         *  stall preemption, shutdown, or no boundary left to arm). */
        void ReleaseBarrierLocked(Job& job) {
            job.ckpt_boundary = 0;
            if (job.held.empty()) return;
            job.ready.insert(job.ready.end(), job.held.begin(),
                             job.held.end());
            job.held.clear();
            work_cv.notify_all();
        }

        /**
         * Fires the armed checkpoint once the job quiesces at its
         * boundary: every gate below it processed (below_remaining == 0)
         * and no gate in flight. Called whenever a job's in-flight count
         * drops. A draining job (cancel, failure, deadline, shutdown)
         * drops its barrier instead — held gates must flow for the drain
         * to terminate, and a snapshot of a dying attempt has no value.
         */
        void MaybeCaptureLocked(Job& job) {
            if (job.ckpt_boundary == 0) return;
            if (job.cancel_requested.load(std::memory_order_relaxed) ||
                job.fail_requested.load(std::memory_order_relaxed) ||
                job.deadline_hit || shutdown) {
                ReleaseBarrierLocked(job);
                return;
            }
            if (job.below_remaining != 0 || job.in_flight != 0 ||
                job.remaining == 0)
                return;
            const uint64_t boundary = job.ckpt_boundary;
            if constexpr (CiphertextCodec<Ciphertext>::kSupported) {
                if (opts.checkpoint.min_gates_between == 0 ||
                    job.gates_since_ckpt >=
                        opts.checkpoint.min_gates_between ||
                    job.checkpoint.Empty()) {
                    // Encoding under the lock keeps the quiesce invariant
                    // trivially true; the records are small (live set at
                    // a wave boundary, not the whole plane).
                    const std::vector<uint64_t> live =
                        pasm::LiveValuesAtLevelCut(job.liveness, boundary);
                    std::string record = EncodeCheckpoint(
                        *job.program, job.values, live,
                        CheckpointCut::kLevel, boundary,
                        job.cum_gates[boundary]);
                    if (opts.checkpoint.max_bytes == 0 ||
                        record.size() <= opts.checkpoint.max_bytes) {
                        job.checkpoint.gates_completed =
                            job.cum_gates[boundary];
                        job.checkpoint.record = std::move(record);
                        job.gates_since_ckpt = 0;
                        ++job.ckpt_taken;
                        ++stats.checkpoints_taken;
                        stats.checkpoint_bytes +=
                            job.checkpoint.record.size();
                    }
                }
            }
            ArmBarrierLocked(job, boundary - 1);
            work_cv.notify_all();
        }

        /**
         * Pops the next ready gate, fair round-robin under the cap. A job
         * marked run_sequential (degraded final attempt) is claimed whole:
         * the picker returns it with detail::kNoGate once no other worker
         * holds any of its gates, and the claimer runs the entire program
         * on the sequential interpreter.
         */
        bool PickLocked(JobPtr* job, uint64_t* gate) {
            const size_t n = active.size();
            for (size_t i = 0; i < n; ++i) {
                const size_t j = (rr + i) % n;
                Job& cand = *active[j];
                if (cand.run_sequential) {
                    if (cand.in_flight > 0) continue;
                    *gate = detail::kNoGate;
                    *job = active[j];
                    rr = (j + 1) % n;
                    return true;
                }
                if (cand.ready.empty() ||
                    cand.in_flight >= opts.per_job_inflight_cap * cand.weight)
                    continue;
                *gate = cand.ready.back();
                cand.ready.pop_back();
                *job = active[j];
                rr = (j + 1) % n;
                return true;
            }
            return false;
        }

        /** One gate claimed by a batch worker, with its attempt stamp. */
        struct Picked {
            JobPtr job;
            uint64_t gate = 0;
            uint32_t attempt = 0;
        };

        /**
         * Batch-mode pick: claims up to opts.batch_size ready gates,
         * round-robin across active jobs under the per-job in-flight cap,
         * FIFO within each job's ready list. All gates of one claim come
         * from jobs sharing the first picked job's evaluator (one batch =
         * one bootstrapping key). In-flight counts are taken at pick time,
         * one per gate. A run_sequential job is still claimed whole and
         * alone (gate == detail::kNoGate), exactly like PickLocked.
         */
        bool PickBatchLocked(std::vector<Picked>* out) {
            const size_t n = active.size();
            const size_t want = static_cast<size_t>(opts.batch_size);
            const Evaluator* anchor = nullptr;
            size_t last = rr;
            for (size_t i = 0; i < n && out->size() < want; ++i) {
                const size_t j = (rr + i) % n;
                Job& cand = *active[j];
                if (cand.run_sequential) {
                    if (!out->empty() || cand.in_flight > 0) continue;
                    ++cand.in_flight;
                    out->push_back(
                        Picked{active[j], detail::kNoGate, cand.attempt});
                    rr = (j + 1) % n;
                    return true;
                }
                if (anchor != nullptr && cand.eval != anchor) continue;
                const uint32_t cap =
                    opts.per_job_inflight_cap * cand.weight;
                while (out->size() < want && !cand.ready.empty() &&
                       cand.in_flight < cap) {
                    out->push_back(Picked{active[j], cand.ready.front(),
                                          cand.attempt});
                    cand.ready.erase(cand.ready.begin());
                    ++cand.in_flight;
                    anchor = cand.eval;
                    last = j;
                }
            }
            if (out->empty()) return false;
            rr = (last + 1) % n;
            return true;
        }

        /**
         * Terminal transition: fills metrics, harvests outputs on kDone,
         * updates stats, wakes waiters. Container removal is the caller's
         * job (the job may live in `queued` or `active`).
         */
        void FinishLocked(Job& job, JobStatus status) {
            const Clock::time_point end = Clock::now();
            job.status = status;
            job.metrics.total_gates = job.program->NumGates();
            job.metrics.wall_seconds = Seconds(job.submit_time, end);
            if (job.started) {
                job.metrics.queue_seconds =
                    Seconds(job.submit_time, job.start_time);
                job.metrics.run_seconds = Seconds(job.start_time, end);
            } else {
                job.metrics.queue_seconds = job.metrics.wall_seconds;
            }
            job.metrics.gates_executed = job.gates_executed;
            job.metrics.gates_skipped = job.gates_skipped;
            job.metrics.bootstraps_elided = job.linear_executed;
            job.metrics.attempts = job.attempt + 1;
            job.metrics.gate_failures = job.gate_failures;
            job.metrics.degraded_sequential = job.degraded;
            job.metrics.checkpoints_taken = job.ckpt_taken;
            job.metrics.checkpoint_resumes = job.ckpt_resumes;
            job.metrics.gates_resumed = job.ckpt_gates_resumed;
            job.metrics.stalls = job.stall_count;
            job.metrics.quarantined = job.quarantined;
            if (status == JobStatus::kDone) {
                // Re-execution waste: every evaluation beyond the one the
                // program needed was retry work a checkpoint could have
                // saved. gates_executed accumulates across attempts and a
                // resume skips its covered prefix, so the difference is
                // exact (and provably non-negative for completed jobs).
                const uint64_t n = job.program->NumGates();
                job.metrics.gates_reexecuted =
                    job.gates_executed > n ? job.gates_executed - n : 0;
                stats.gates_reexecuted += job.metrics.gates_reexecuted;
                // The sequential degraded path harvests its own outputs.
                if (job.outputs.empty())
                    job.outputs = job.values.Harvest(*job.program);
                ++stats.jobs_completed;
            } else if (status == JobStatus::kCancelled) {
                ++stats.jobs_cancelled;
            } else if (status == JobStatus::kFailed) {
                ++stats.jobs_failed;
            } else {
                ++stats.jobs_deadline_exceeded;
            }
            stats.gates_executed += job.gates_executed;
            stats.bootstraps_elided += job.linear_executed;
            stats.total_queue_seconds += job.metrics.queue_seconds;
            stats.total_run_seconds += job.metrics.run_seconds;
            TenantFinishedLocked(job.tenant);
            job.done_cv.notify_all();
            // Wakes idle workers so shutdown drain can complete, and lets
            // a blocked Submit-side admission happen below via AdmitLocked.
            work_cv.notify_all();
        }

        /**
         * Moves queued jobs into active slots while capacity allows.
         * Jobs whose retry backoff has not elapsed (eligible_at in the
         * future) or whose tenant is at its concurrency quota are skipped
         * in place — FIFO among eligible jobs, so a backing-off retry or
         * a throttled tenant never blocks fresh admissions behind it.
         */
        void AdmitLocked() {
            const Clock::time_point now = Clock::now();
            // Expired deadlines fail promptly even when every active slot
            // is taken or the job is parked in retry backoff: neither a
            // full service nor an unelapsed backoff extends a deadline.
            for (size_t i = 0; i < queued.size();) {
                if (now >= queued[i]->deadline) {
                    JobPtr job = std::move(queued[i]);
                    queued.erase(queued.begin() + i);
                    FinishLocked(*job, JobStatus::kDeadlineExceeded);
                    continue;
                }
                ++i;
            }
            size_t i = 0;
            while (active.size() < opts.max_active_jobs &&
                   i < queued.size()) {
                if (now < queued[i]->eligible_at ||
                    !TenantMayActivateLocked(queued[i]->tenant)) {
                    ++i;
                    continue;
                }
                JobPtr job = std::move(queued[i]);
                queued.erase(queued.begin() + i);
                if (job->cancel_requested.load(std::memory_order_relaxed)) {
                    FinishLocked(*job, JobStatus::kCancelled);
                    continue;
                }
                if (Clock::now() >= job->deadline) {
                    FinishLocked(*job, JobStatus::kDeadlineExceeded);
                    continue;
                }
                if (!job->started) {
                    job->started = true;
                    job->start_time = Clock::now();
                }
                // Fresh watchdog lease on (re)activation: queue time is
                // not a stall.
                job->watchdog_mark = Clock::now();
                job->watchdog_epoch = job->progress_epoch;
                job->status = JobStatus::kRunning;
                ++tenant_load[job->tenant].active;
                active.push_back(std::move(job));
                stats.max_active_observed =
                    std::max(stats.max_active_observed,
                             static_cast<uint32_t>(active.size()));
                work_cv.notify_all();
            }
        }

        /**
         * Earliest instant time alone could change a queued job's fate —
         * a retry backoff elapsing (job becomes admittable) or a deadline
         * expiring (job must fail) — for the worker idle wait.
         * time_point::max() when neither applies (a plain cv wait
         * suffices — any state change notifies). Tenant-quota-blocked
         * jobs contribute only their deadline: time does not unblock
         * them, the finishing job's notify_all does.
         */
        Clock::time_point NextEligibleLocked() const {
            Clock::time_point next = Clock::time_point::max();
            // Queued deadlines bound the idle wait even when no active
            // slot is free: a job whose deadline expires while parked
            // (backoff, full service, tenant quota) must fail at the
            // deadline, not whenever a slot happens to open.
            for (const JobPtr& job : queued)
                next = std::min(next, job->deadline);
            if (active.size() >= opts.max_active_jobs) return next;
            for (const JobPtr& job : queued) {
                if (!TenantMayActivateLocked(job->tenant)) continue;
                next = std::min(next, job->eligible_at);
            }
            return next;
        }

        /**
         * Restores the job's last checkpoint for a retry: decodes (and
         * thereby CRC-verifies) the record, re-seeds the plane, restores
         * the snapshotted slots, and rebuilds the dependency counters past
         * the cut. Returns false — and the caller falls back to a full
         * reset — when no usable record exists; a record that fails
         * verification is additionally discarded and counted, never
         * trusted.
         */
        bool ResumeFromCheckpointLocked(Job& job) {
            if (!job.ckpt_enabled || job.checkpoint.Empty()) return false;
            if constexpr (CiphertextCodec<Ciphertext>::kSupported) {
                std::string error;
                std::optional<DecodedCheckpoint<Ciphertext>> decoded =
                    DecodeCheckpoint<Ciphertext>(job.checkpoint.record,
                                                 job.fingerprint,
                                                 job.liveness.end_index,
                                                 &error);
                // The parallel pickers only resume level cuts (the kind
                // this executor captures); an ordinal record — possible
                // only by construction error, since the sequential path
                // is the final attempt — is unusable here.
                if (!decoded || decoded->cut != CheckpointCut::kLevel ||
                    !CutValidForProgram(decoded->cut, *job.program)) {
                    job.checkpoint.Clear();
                    ++stats.checkpoints_corrupt_discarded;
                    return false;
                }
                job.values.Reset(*job.program, job.inputs);
                RestoreCheckpoint(job.values, *decoded);
                ResumeState state = BuildResumeState(
                    *job.program, job.deps, decoded->cut,
                    decoded->boundary);
                for (uint64_t g = 0; g < job.program->NumGates(); ++g)
                    job.pending[g].store(state.pending[g],
                                         std::memory_order_relaxed);
                job.ready = std::move(state.ready);
                job.held.clear();
                job.remaining = state.remaining;
                ArmBarrierLocked(job, decoded->boundary - 1);
                job.resumed_attempt = true;
                ++job.ckpt_resumes;
                ++stats.checkpoint_resumes;
                job.ckpt_gates_resumed += state.gates_done;
                stats.gates_resumed += state.gates_done;
                return true;
            }
            return false;
        }

        /**
         * Terminal resolution of a job whose drain completed with
         * fail_requested set: retry (possibly resuming from checkpoint),
         * quarantine, or fail. A watchdog preemption without a latched
         * gate error counts as transient — the next attempt may well
         * progress. Quarantine fires when resumed attempts keep dying:
         * at that point the checkpoint is not helping and the job is
         * deterministically burning pool time.
         */
        void ResolveFailureLocked(Job& job) {
            const bool stalled = job.stalled_attempt && !job.failure;
            const bool transient =
                (job.failure && job.failure->transient()) || stalled;
            const bool poisoned =
                opts.max_resume_failures > 0 && job.resumed_attempt &&
                job.resume_failures + 1 >= opts.max_resume_failures;
            if (job.resumed_attempt) ++job.resume_failures;
            if (transient && !poisoned && !shutdown &&
                job.attempt + 1 < opts.retry.max_attempts) {
                RequeueForRetryLocked(job);
                return;
            }
            if (poisoned) {
                job.quarantined = true;
                ++stats.jobs_quarantined;
                job.terminal_error = std::make_exception_ptr(
                    JobQuarantinedError(job.seq, job.resume_failures));
            } else if (stalled) {
                job.terminal_error = std::make_exception_ptr(StalledError(
                    job.seq, opts.stall_timeout_seconds));
            }
            FinishActiveLocked(job, JobStatus::kFailed);
        }

        /**
         * Re-queues a failed job for another attempt: moves it out of
         * `active`, resets its gate state from the retained inputs (or
         * from the last valid checkpoint — only the gates past the cut
         * re-execute), and stamps the backoff eligibility time. On the
         * last permitted attempt the job is flagged run_sequential
         * instead — the degradation ladder's isolated clean shot.
         */
        void RequeueForRetryLocked(Job& job) {
            JobPtr self;
            for (size_t i = 0; i < active.size(); ++i) {
                if (active[i].get() == &job) {
                    self = std::move(active[i]);
                    active.erase(active.begin() + i);
                    break;
                }
            }
            TenantDeactivatedLocked(job.tenant);
            ++stats.job_retries;
            ++job.attempt;
            job.fail_requested.store(false, std::memory_order_relaxed);
            job.abort_hint.store(false, std::memory_order_relaxed);
            job.failure.reset();
            job.deadline_hit = false;
            job.stalled_attempt = false;
            job.resumed_attempt = false;
            job.gates_since_ckpt = 0;
            job.status = JobStatus::kQueued;
            job.remaining = job.program->NumGates();
            if (job.attempt + 1 >= opts.retry.max_attempts) {
                job.run_sequential = true;
                job.degraded = true;
                ++stats.jobs_degraded;
                // The sequential path owns the whole job; held-back gates
                // and the quiesce barrier are parallel-path state.
                job.ckpt_boundary = 0;
                job.held.clear();
                job.ready.clear();
            } else if (!ResumeFromCheckpointLocked(job)) {
                // Reset the dependency-counted state for a parallel
                // re-run in place: the value plane keeps its slab/slots
                // (a retry re-seeds the inputs without reallocating). No
                // worker holds gates of this job any more (remaining hit
                // zero under the lock), so the resets are ordered before
                // any future reader.
                job.values.Reset(*job.program, job.inputs);
                for (uint64_t g = 0; g < job.program->NumGates(); ++g)
                    job.pending[g].store(job.deps.pred_count[g],
                                         std::memory_order_relaxed);
                job.ready = job.deps.RootGates();
                job.held.clear();
                if (job.ckpt_enabled) ArmBarrierLocked(job, 0);
            }
            const double backoff =
                opts.retry.BackoffSeconds(job.seq, job.attempt);
            job.eligible_at =
                backoff > 0.0
                    ? Clock::now() +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(backoff))
                    : Clock::time_point::min();
            queued.push_back(self);
            AdmitLocked();
            work_cv.notify_all();
        }

        /** Removes a finished job from `active` and admits successors. */
        void FinishActiveLocked(Job& job, JobStatus status) {
            TenantDeactivatedLocked(job.tenant);
            FinishLocked(job, status);
            for (size_t i = 0; i < active.size(); ++i) {
                if (active[i].get() == &job) {
                    active.erase(active.begin() + i);
                    break;
                }
            }
            AdmitLocked();
        }

        static double Seconds(Clock::time_point a, Clock::time_point b) {
            return std::chrono::duration<double>(b - a).count();
        }

        /**
         * The stall watchdog (its own thread, started only when
         * stall_timeout_seconds > 0): compares each active job's progress
         * heartbeat — bumped once per processed gate — against the last
         * observation. A job whose heartbeat has not moved for the
         * timeout is flagged stalled and preempted like a transient
         * failure: fail_requested drains its remaining gates, the abort
         * hint interrupts injected stalls cooperatively (the stalled
         * worker sheds its sleep at the next 1 ms slice), and terminal
         * resolution retries from the last checkpoint. run_sequential
         * jobs are exempt — the isolated final attempt emits no gate
         * heartbeats and must be left to finish.
         */
        void WatchdogLoop() {
            const double timeout = opts.stall_timeout_seconds;
            double poll = opts.stall_poll_seconds;
            if (poll <= 0.0)
                poll = std::min(0.250, std::max(0.001, timeout / 4.0));
            const auto poll_for = std::chrono::duration_cast<
                Clock::duration>(std::chrono::duration<double>(poll));
            std::unique_lock<std::mutex> lock(mu);
            while (!shutdown) {
                watchdog_cv.wait_for(lock, poll_for);
                if (shutdown) return;
                const Clock::time_point now = Clock::now();
                for (const JobPtr& jp : active) {
                    Job& job = *jp;
                    if (job.run_sequential) continue;
                    if (job.progress_epoch != job.watchdog_epoch) {
                        job.watchdog_epoch = job.progress_epoch;
                        job.watchdog_mark = now;
                        continue;
                    }
                    if (Seconds(job.watchdog_mark, now) < timeout)
                        continue;
                    job.stalled_attempt = true;
                    ++job.stall_count;
                    ++stats.jobs_stalled;
                    job.fail_requested.store(true,
                                             std::memory_order_relaxed);
                    job.abort_hint.store(true, std::memory_order_relaxed);
                    job.watchdog_mark = now;
                    ReleaseBarrierLocked(job);
                    work_cv.notify_all();
                }
            }
        }

        /**
         * One worker of the shared pool: pick a ready gate from any job,
         * execute (or drain) it, propagate dependency counts, chain into
         * at most one newly ready successor.
         */
        void WorkerLoop() {
            typename detail::WorkerScratchOf<Evaluator>::type scratch{};
            typename detail::BatchScratchOf<Evaluator>::type batch_scratch{};
            (void)batch_scratch;
            std::vector<uint64_t> publish;
            std::vector<Picked> batch;
            const bool batching = opts.batch_size > 1;
            std::unique_lock<std::mutex> lock(mu);
            while (true) {
                // Backoff expiries do not generate notifications, so idle
                // workers re-scan the queue and sleep only until the next
                // job becomes eligible.
                if (!queued.empty()) AdmitLocked();
                if (batching) {
                    batch.clear();
                    if (!PickBatchLocked(&batch)) {
                        if (shutdown && active.empty() && queued.empty())
                            return;
                        const Clock::time_point next = NextEligibleLocked();
                        if (next == Clock::time_point::max()) {
                            work_cv.wait(lock);
                        } else {
                            work_cv.wait_until(lock, next);
                        }
                        continue;
                    }
                    if (batch.front().gate == detail::kNoGate) {
                        RunSequentialJob(*batch.front().job,
                                         batch.front().attempt, lock);
                        continue;
                    }
                    RunBatch(batch, scratch, batch_scratch, lock);
                    // RunBatch returns with the lock re-held.
                    continue;
                }
                JobPtr job;
                uint64_t gate = 0;
                if (!PickLocked(&job, &gate)) {
                    if (shutdown && active.empty() && queued.empty())
                        return;
                    const Clock::time_point next = NextEligibleLocked();
                    if (next == Clock::time_point::max()) {
                        work_cv.wait(lock);
                    } else {
                        work_cv.wait_until(lock, next);
                    }
                    continue;
                }
                const uint32_t attempt = job->attempt;
                ++job->in_flight;
                if (gate == detail::kNoGate) {
                    RunSequentialJob(*job, attempt, lock);
                    continue;
                }
                lock.unlock();
                RunChain(*job, gate, attempt, scratch, publish, lock);
                // RunChain returns with the lock re-held.
            }
        }

        /**
         * Degraded final attempt: the whole program on the isolated
         * sequential interpreter, from the retained inputs. Cooperative
         * cancel/deadline still apply (RunControl); a throw here is final
         * — by construction this is the last permitted attempt.
         */
        void RunSequentialJob(Job& job, uint32_t attempt,
                              std::unique_lock<std::mutex>& lock) {
            lock.unlock();
            JobStatus status = JobStatus::kDone;
            std::optional<GateExecutionError> caught;
            std::vector<Ciphertext> outs;
            CheckpointRunStats cstats;
            try {
                RunControl rc;
                rc.cancel = &job.cancel_requested;
                rc.deadline = job.deadline;
                FaultHook hook{opts.fault_injector, job.seq, attempt};
                // Touching job.checkpoint unlocked is safe: a
                // run_sequential job is claimed whole and alone, so this
                // worker is the only actor on the job until it re-locks.
                if (opts.checkpoint.Enabled()) {
                    outs = RunProgramCheckpointed(
                        *job.program, *job.eval, job.inputs,
                        opts.checkpoint, &job.checkpoint, rc, hook,
                        &cstats);
                } else {
                    outs = RunProgram(*job.program, *job.eval, job.inputs,
                                      rc, hook);
                }
            } catch (const CancelledError&) {
                status = JobStatus::kCancelled;
            } catch (const DeadlineExceededError&) {
                status = JobStatus::kDeadlineExceeded;
            } catch (const GateExecutionError& e) {
                status = JobStatus::kFailed;
                caught = e;
            }
            lock.lock();
            --job.in_flight;
            job.ckpt_taken += cstats.checkpoints_taken;
            stats.checkpoints_taken += cstats.checkpoints_taken;
            if (cstats.resumes > 0) {
                job.resumed_attempt = true;
                job.ckpt_resumes += cstats.resumes;
                stats.checkpoint_resumes += cstats.resumes;
                job.ckpt_gates_resumed += cstats.gates_resumed;
                stats.gates_resumed += cstats.gates_resumed;
            }
            stats.checkpoints_corrupt_discarded += cstats.corrupt_discarded;
            if (status == JobStatus::kDone) {
                job.gates_executed +=
                    job.program->NumGates() - cstats.gates_resumed;
                for (uint64_t idx = job.first_gate;
                     idx < job.first_gate + job.program->NumGates(); ++idx)
                    if (circuit::IsLinearGate(job.program->GateAt(idx).type))
                        ++job.linear_executed;
                job.outputs = std::move(outs);
            } else {
                job.gates_skipped += job.program->NumGates();
                if (caught) {
                    ++job.gate_failures;
                    job.failure = std::move(caught);
                }
            }
            FinishActiveLocked(job, status);
        }

        template <typename Scratch>
        void RunChain(Job& job, uint64_t gate, uint32_t attempt,
                      Scratch& scratch, std::vector<uint64_t>& publish,
                      std::unique_lock<std::mutex>& lock) {
            while (true) {
                publish.clear();
                bool skip =
                    job.cancel_requested.load(std::memory_order_relaxed) ||
                    job.fail_requested.load(std::memory_order_relaxed);
                bool expired = false;
                if (!skip && Clock::now() >= job.deadline) {
                    expired = true;
                    skip = true;
                }
                bool linear = false;
                std::optional<GateExecutionError> caught;
                if (!skip) {
                    const pasm::DecodedGate g = job.program->GateAt(gate);
                    try {
                        if (opts.fault_injector != nullptr) {
                            // Injected stalls shed early once the job is
                            // being abandoned (cancel, watchdog
                            // preemption) or its deadline passes.
                            RunControl stall_rc;
                            stall_rc.cancel = &job.abort_hint;
                            stall_rc.deadline = job.deadline;
                            opts.fault_injector->OnGate(
                                job.seq, attempt, gate - job.first_gate,
                                &stall_rc);
                        }
                        job.values.Apply(*job.eval, *job.program, gate,
                                         scratch);
                        linear = circuit::IsLinearGate(g.type);
                    } catch (...) {
                        try {
                            RethrowAsGateError(gate - job.first_gate,
                                               attempt);
                        } catch (const GateExecutionError& e) {
                            caught = e;
                        }
                        // Dependents of this gate skip-and-drain like a
                        // cancellation; other jobs are untouched.
                        job.fail_requested.store(
                            true, std::memory_order_relaxed);
                    }
                }
                // The final decrement transfers ownership of the successor's
                // inputs to whoever saw zero, hence acq_rel.
                uint64_t next = detail::kNoGate;
                const auto [s, e] = job.deps.SuccessorsOf(gate);
                for (const uint64_t* p = s; p != e; ++p) {
                    if (job.pending[*p - job.first_gate].fetch_sub(
                            1, std::memory_order_acq_rel) == 1) {
                        if (next == detail::kNoGate) {
                            next = *p;
                        } else {
                            publish.push_back(*p);
                        }
                    }
                }
                lock.lock();
                if (expired) job.deadline_hit = true;
                if (caught) {
                    ++job.gate_failures;
                    if (!job.failure) job.failure = std::move(caught);
                } else if (skip) {
                    ++job.gates_skipped;
                } else {
                    ++job.gates_executed;
                    ++job.gates_since_ckpt;
                    if (linear) ++job.linear_executed;
                }
                // Every processed gate (run or drained) is progress the
                // watchdog can see and, below an armed boundary, one step
                // toward the quiesce point.
                ++job.progress_epoch;
                if (job.ckpt_boundary != 0 &&
                    job.liveness.level[gate] < job.ckpt_boundary)
                    --job.below_remaining;
                if (!publish.empty()) {
                    size_t published = 0;
                    for (uint64_t g : publish) {
                        if (job.ckpt_boundary != 0 &&
                            job.liveness.level[g] >= job.ckpt_boundary) {
                            job.held.push_back(g);
                        } else {
                            job.ready.push_back(g);
                            ++published;
                        }
                    }
                    if (published == 1) {
                        work_cv.notify_one();
                    } else if (published > 1) {
                        work_cv.notify_all();
                    }
                }
                if (--job.remaining == 0) {
                    --job.in_flight;
                    if (job.cancel_requested.load(
                            std::memory_order_relaxed)) {
                        FinishActiveLocked(job, JobStatus::kCancelled);
                    } else if (job.deadline_hit) {
                        FinishActiveLocked(job,
                                           JobStatus::kDeadlineExceeded);
                    } else if (job.fail_requested.load(
                                   std::memory_order_relaxed)) {
                        ResolveFailureLocked(job);
                    } else {
                        FinishActiveLocked(job, JobStatus::kDone);
                    }
                    return;
                }
                if (next != detail::kNoGate && job.ckpt_boundary != 0 &&
                    job.liveness.level[next] >= job.ckpt_boundary) {
                    // The chain candidate sits beyond the armed quiesce
                    // boundary: hold it back and drop the chain.
                    job.held.push_back(next);
                    next = detail::kNoGate;
                }
                if (next != detail::kNoGate) {
                    // Keep the in-flight slot and chain depth-first.
                    lock.unlock();
                    gate = next;
                    continue;
                }
                --job.in_flight;
                MaybeCaptureLocked(job);
                if (!job.ready.empty()) work_cv.notify_one();
                return;
            }
        }

        /**
         * Executes one batch claim: per-gate skip/deadline checks and
         * fault hooks (a faulted gate fails only its own job), one fused
         * ApplyBatch kernel call for the batchable bootstraps, scalar
         * evaluation for everything else, then locked bookkeeping that
         * handles any number of jobs reaching terminal state at once.
         * Enters unlocked work with `lock` held; returns with it re-held.
         */
        template <typename Scratch, typename BatchScratchT>
        void RunBatch(std::vector<Picked>& batch, Scratch& scratch,
                      BatchScratchT& batch_scratch,
                      std::unique_lock<std::mutex>& lock) {
            lock.unlock();
            struct GateState {
                bool skip = false;
                bool expired = false;
                bool linear = false;
                bool executed = false;
                std::optional<GateExecutionError> caught;
            };
            std::vector<GateState> st(batch.size());
            std::vector<size_t> kernel;

            auto run_scalar = [&](size_t i) {
                Job& job = *batch[i].job;
                const uint64_t gate = batch[i].gate;
                job.values.Apply(*job.eval, *job.program, gate, scratch);
                st[i].linear = circuit::IsLinearGate(
                    job.program->GateAt(gate).type);
                st[i].executed = true;
            };
            auto latch = [&](size_t i) {
                Job& job = *batch[i].job;
                try {
                    RethrowAsGateError(batch[i].gate - job.first_gate,
                                       batch[i].attempt);
                } catch (const GateExecutionError& e) {
                    st[i].caught = e;
                }
                job.fail_requested.store(true, std::memory_order_relaxed);
            };

            for (size_t i = 0; i < batch.size(); ++i) {
                Job& job = *batch[i].job;
                GateState& gs = st[i];
                gs.skip =
                    job.cancel_requested.load(std::memory_order_relaxed) ||
                    job.fail_requested.load(std::memory_order_relaxed);
                if (!gs.skip && Clock::now() >= job.deadline) {
                    gs.expired = true;
                    gs.skip = true;
                }
                if (gs.skip) continue;
                const pasm::DecodedGate g =
                    job.program->GateAt(batch[i].gate);
                bool batchable = false;
                if constexpr (detail::kSupportsApplyBatch<Evaluator>)
                    batchable = Evaluator::Batchable(g.type);
                try {
                    if (opts.fault_injector != nullptr) {
                        RunControl stall_rc;
                        stall_rc.cancel = &job.abort_hint;
                        stall_rc.deadline = job.deadline;
                        opts.fault_injector->OnGate(
                            job.seq, batch[i].attempt,
                            batch[i].gate - job.first_gate, &stall_rc);
                    }
                    if (batchable) {
                        kernel.push_back(i);
                    } else {
                        run_scalar(i);
                    }
                } catch (...) {
                    latch(i);
                }
            }

            if constexpr (detail::kSupportsApplyBatch<Evaluator>) {
                if (!kernel.empty()) {
                    std::vector<typename ValuePlane<Evaluator>::BatchItem>
                        items(kernel.size());
                    for (size_t k = 0; k < kernel.size(); ++k) {
                        const Picked& p = batch[kernel[k]];
                        items[k] = p.job->values.BatchItemFor(
                            *p.job->program, p.gate);
                    }
                    try {
                        batch.front().job->eval->ApplyBatch(
                            items.data(),
                            static_cast<int32_t>(items.size()),
                            batch_scratch);
                        for (size_t i : kernel) st[i].executed = true;
                    } catch (...) {
                        // Kernel failure: replay each gate scalar so the
                        // error is attributed to the gate — and only the
                        // job — that actually fails.
                        for (size_t i : kernel) {
                            try {
                                run_scalar(i);
                            } catch (...) {
                                latch(i);
                            }
                        }
                    }
                }
            }

            // Dependency propagation happens lock-free (acq_rel transfers
            // input ownership); newly ready gates are published under the
            // lock together with all terminal transitions.
            std::vector<std::pair<Job*, uint64_t>> publish;
            for (const Picked& p : batch) {
                Job& job = *p.job;
                const auto [s, e] = job.deps.SuccessorsOf(p.gate);
                for (const uint64_t* q = s; q != e; ++q) {
                    if (job.pending[*q - job.first_gate].fetch_sub(
                            1, std::memory_order_acq_rel) == 1)
                        publish.emplace_back(&job, *q);
                }
            }

            lock.lock();
            for (const auto& [job, gate] : publish) {
                if (job->ckpt_boundary != 0 &&
                    job->liveness.level[gate] >= job->ckpt_boundary) {
                    job->held.push_back(gate);
                } else {
                    job->ready.push_back(gate);
                }
            }
            if (!publish.empty()) work_cv.notify_all();
            for (size_t i = 0; i < batch.size(); ++i) {
                Job& job = *batch[i].job;
                if (st[i].expired) job.deadline_hit = true;
                if (st[i].caught) {
                    ++job.gate_failures;
                    if (!job.failure)
                        job.failure = std::move(st[i].caught);
                } else if (st[i].executed) {
                    ++job.gates_executed;
                    ++job.gates_since_ckpt;
                    if (st[i].linear) ++job.linear_executed;
                } else {
                    ++job.gates_skipped;
                }
                ++job.progress_epoch;
                if (job.ckpt_boundary != 0 &&
                    job.liveness.level[batch[i].gate] < job.ckpt_boundary)
                    --job.below_remaining;
                --job.in_flight;
                if (--job.remaining == 0) {
                    if (job.cancel_requested.load(
                            std::memory_order_relaxed)) {
                        FinishActiveLocked(job, JobStatus::kCancelled);
                    } else if (job.deadline_hit) {
                        FinishActiveLocked(job,
                                           JobStatus::kDeadlineExceeded);
                    } else if (job.fail_requested.load(
                                   std::memory_order_relaxed)) {
                        ResolveFailureLocked(job);
                    } else {
                        FinishActiveLocked(job, JobStatus::kDone);
                    }
                } else {
                    MaybeCaptureLocked(job);
                }
            }
        }
    };

  public:
    /**
     * A future-like handle to one submitted job. Copies of the shared_ptr
     * returned by Submit stay valid after the ServingExecutor is gone
     * (every job is terminal by then — Stop cancels stragglers).
     */
    class Job {
      public:
        /** Blocks until the job is terminal; returns the terminal status. */
        JobStatus Wait() {
            std::unique_lock<std::mutex> lock(core_->mu);
            done_cv.wait(lock, [&] { return IsTerminal(status); });
            return status;
        }

        /** Non-blocking: terminal status, or nullopt while in progress. */
        std::optional<JobStatus> TryGet() const {
            std::lock_guard<std::mutex> lock(core_->mu);
            if (!IsTerminal(status)) return std::nullopt;
            return status;
        }

        /**
         * Requests cancellation. Returns true if the request landed before
         * the job finished (the job will terminate kCancelled — instantly
         * when still queued, after its in-flight gates drain when
         * running); false if the job was already terminal.
         */
        bool Cancel() {
            std::lock_guard<std::mutex> lock(core_->mu);
            if (IsTerminal(status)) return false;
            cancel_requested.store(true, std::memory_order_relaxed);
            if (status == JobStatus::kQueued) {
                for (size_t i = 0; i < core_->queued.size(); ++i) {
                    if (core_->queued[i].get() == this) {
                        JobPtr self = std::move(core_->queued[i]);
                        core_->queued.erase(core_->queued.begin() + i);
                        core_->FinishLocked(*self, JobStatus::kCancelled);
                        break;
                    }
                }
            } else {
                // Shed injected stalls and release held-back gates so the
                // cancelled job drains promptly.
                abort_hint.store(true, std::memory_order_relaxed);
                core_->ReleaseBarrierLocked(*this);
                core_->work_cv.notify_all();
            }
            return true;
        }

        /**
         * Result ciphertexts, one per program output. Blocks like Wait;
         * throws CancelledError / DeadlineExceededError /
         * GateExecutionError if the job ended without producing outputs.
         */
        const std::vector<Ciphertext>& Outputs() {
            switch (Wait()) {
                case JobStatus::kCancelled: throw CancelledError();
                case JobStatus::kDeadlineExceeded:
                    throw DeadlineExceededError();
                case JobStatus::kFailed: {
                    std::lock_guard<std::mutex> lock(core_->mu);
                    // A typed terminal cause (StalledError,
                    // JobQuarantinedError) outranks the latched gate
                    // error: it names why retrying stopped.
                    if (terminal_error)
                        std::rethrow_exception(terminal_error);
                    throw failure ? *failure
                                  : GateExecutionError(
                                        0, 0, "job failed", false);
                }
                default: break;
            }
            return outputs;
        }

        /**
         * The latched gate error of a kFailed job; nullopt for every other
         * terminal status. Blocks until the job is terminal.
         */
        std::optional<GateExecutionError> Error() {
            (void)Wait();
            std::lock_guard<std::mutex> lock(core_->mu);
            return failure;
        }

        /** Final accounting; blocks until the job is terminal. */
        JobMetrics Metrics() {
            (void)Wait();
            std::lock_guard<std::mutex> lock(core_->mu);
            return metrics;
        }

      private:
        friend class ServingExecutor;
        friend struct Core;

        Job(std::shared_ptr<Core> core,
            std::shared_ptr<const pasm::Program> p, Evaluator* e,
            const SubmitOptions& so)
            : core_(std::move(core)),
              program(std::move(p)),
              eval(e),
              deps(program->BuildGateDependencies(program->Plan())),
              first_gate(program->FirstGateIndex()),
              submit_time(Clock::now()),
              deadline(so.deadline),
              tenant(so.tenant),
              weight(so.weight > 0 ? so.weight : 1),
              pin(so.pin),
              pending(program->NumGates()),
              remaining(program->NumGates()) {
            for (uint64_t g = 0; g < program->NumGates(); ++g)
                pending[g].store(deps.pred_count[g],
                                 std::memory_order_relaxed);
            ready = deps.RootGates();
            if constexpr (CiphertextCodec<Ciphertext>::kSupported) {
                if (core_->opts.checkpoint.Enabled() &&
                    program->NumGates() > 0 &&
                    CutValidForProgram(CheckpointCut::kLevel, *program)) {
                    ckpt_enabled = true;
                    fingerprint = ProgramFingerprint(*program);
                    liveness = pasm::ComputeValueLiveness(*program);
                    for (uint64_t idx = first_gate;
                         idx < liveness.end_index; ++idx)
                        max_level =
                            std::max(max_level, liveness.level[idx]);
                    // cum_gates[L] = gates at wave level < L; the O(1)
                    // source of "how many gates below a boundary" the
                    // barrier and the record's gates_completed use.
                    std::vector<uint64_t> count(max_level + 1, 0);
                    for (uint64_t idx = first_gate;
                         idx < liveness.end_index; ++idx)
                        ++count[liveness.level[idx]];
                    cum_gates.assign(max_level + 2, 0);
                    for (uint64_t l = 1; l <= max_level + 1; ++l)
                        cum_gates[l] = cum_gates[l - 1] + count[l - 1];
                    // Arm the first boundary pre-publication (no lock
                    // needed: the job is not visible to workers yet).
                    // Root gates all sit at level 1, below any boundary.
                    core_->ArmBarrierLocked(*this, 0);
                }
            }
        }

        const std::shared_ptr<Core> core_;

        // Immutable after construction.
        const std::shared_ptr<const pasm::Program> program;
        Evaluator* const eval;
        const pasm::GateDependencies deps;
        const uint64_t first_gate;
        const Clock::time_point submit_time;
        const Clock::time_point deadline;
        const uint64_t tenant;  ///< Quota bucket (0 = anonymous pool).
        const uint32_t weight;  ///< Fairness weight, clamped >= 1.
        /** Opaque lifetime token (SubmitOptions::pin): keeps the
         *  evaluator's owning entry alive for the job's whole life. */
        const std::shared_ptr<void> pin;

        // Lock-free gate state: plane slots race-free by construction
        // (one writer per slot; plan anti-dependency edges serialize slot
        // reuse), pending counts atomic. Retry resets happen under the
        // lock only after remaining hit zero, so no worker can race a
        // reset — and the plane keeps its arena, so a retry allocates
        // nothing.
        ValuePlane<Evaluator> values;
        std::vector<std::atomic<uint32_t>> pending;
        std::atomic<bool> cancel_requested{false};
        std::atomic<bool> fail_requested{false};
        /**
         * Union interrupt hint for cooperative injected-stall sleeps:
         * raised by Cancel(), the watchdog's stall preemption, and Stop;
         * cleared when the job is requeued for another attempt. Never
         * causes a typed abort by itself — it only shortens sleeps.
         */
        std::atomic<bool> abort_hint{false};

        // Guarded by core_->mu.
        JobStatus status = JobStatus::kQueued;
        std::vector<uint64_t> ready;
        uint32_t in_flight = 0;
        uint64_t remaining;
        bool started = false;
        bool deadline_hit = false;
        Clock::time_point start_time{};
        uint64_t gates_executed = 0;
        uint64_t gates_skipped = 0;
        uint64_t linear_executed = 0;
        std::vector<Ciphertext> outputs;
        JobMetrics metrics;
        std::condition_variable done_cv;
        // Fault-tolerance state (guarded by core_->mu).
        uint64_t seq = 0;      ///< Submission ordinal: the fault/jitter key.
        uint32_t attempt = 0;  ///< 0-based execution attempt.
        std::optional<GateExecutionError> failure;
        uint64_t gate_failures = 0;
        /** Retained submission inputs when retries are enabled. */
        std::vector<Ciphertext> inputs;
        /** Backoff gate: AdmitLocked skips the job until this instant. */
        Clock::time_point eligible_at = Clock::time_point::min();
        bool run_sequential = false;  ///< Final attempt, isolated path.
        bool degraded = false;

        // Checkpoint state (guarded by core_->mu). ckpt_enabled is set
        // once in the constructor: the policy is on, the program has
        // gates, the plan admits level cuts, and the ciphertext type has
        // a codec.
        bool ckpt_enabled = false;
        uint64_t fingerprint = 0;        ///< ProgramFingerprint, cached.
        pasm::ValueLiveness liveness;    ///< Live-set facts for capture.
        uint64_t max_level = 0;          ///< Deepest gate wave level.
        std::vector<uint64_t> cum_gates; ///< [L] = gates at level < L.
        /** Armed quiesce boundary (wave level); 0 = no barrier. Gates at
         *  level >= this are held back until the capture fires. */
        uint64_t ckpt_boundary = 0;
        /** Unprocessed gates below the armed boundary; 0 + no in-flight
         *  gates = the job is quiescent at the boundary. */
        uint64_t below_remaining = 0;
        /** Ready gates held back by the barrier (published on release). */
        std::vector<uint64_t> held;
        JobCheckpoint checkpoint;        ///< Last captured framed record.
        uint64_t gates_since_ckpt = 0;   ///< For min_gates_between.
        uint64_t ckpt_taken = 0;
        uint64_t ckpt_resumes = 0;
        uint64_t ckpt_gates_resumed = 0;
        bool resumed_attempt = false;    ///< Current attempt resumed.
        uint32_t resume_failures = 0;    ///< Failed resumed attempts.
        bool quarantined = false;

        // Watchdog state (guarded by core_->mu).
        uint64_t progress_epoch = 0;   ///< Bumped per processed gate.
        uint64_t watchdog_epoch = 0;   ///< Last epoch the watchdog saw.
        Clock::time_point watchdog_mark{};  ///< When it saw it.
        bool stalled_attempt = false;  ///< Current attempt was preempted.
        uint64_t stall_count = 0;      ///< Watchdog flags, all attempts.

        /** Typed terminal cause for kFailed beyond the latched gate
         *  error: StalledError or JobQuarantinedError. */
        std::exception_ptr terminal_error;
    };

    /**
     * Starts the serving workers on `executor`'s pool. The pool is held
     * for this object's entire lifetime (one RunOnWorkers region that ends
     * at Stop), so the executor cannot run other programs meanwhile.
     */
    ServingExecutor(Executor& executor, const ServingOptions& options)
        : core_(std::make_shared<Core>(Validated(options))) {
        std::shared_ptr<Core> core = core_;
        dispatcher_ = std::thread([core, &executor] {
            executor.pool().RunOnWorkers(core->opts.num_workers - 1,
                                         [&core] { core->WorkerLoop(); });
        });
        if (core_->opts.stall_timeout_seconds > 0.0)
            watchdog_ = std::thread([core] { core->WatchdogLoop(); });
    }

    ~ServingExecutor() { Stop(); }
    ServingExecutor(const ServingExecutor&) = delete;
    ServingExecutor& operator=(const ServingExecutor&) = delete;

    /**
     * Submits one job: the program (shared, not copied), the evaluator to
     * run it on (per-tenant key material), and the input ciphertexts, one
     * per program input. Returns the job handle immediately.
     *
     * Throws std::invalid_argument on a null program or input-count
     * mismatch, OverloadedError when the pending bound is hit, and
     * std::runtime_error after Stop.
     */
    JobPtr Submit(std::shared_ptr<const pasm::Program> program,
                  Evaluator& eval, std::vector<Ciphertext> inputs,
                  const SubmitOptions& options = {}) {
        if (!program)
            throw std::invalid_argument("ServingExecutor: null program");
        detail::ValidateRunArgs(*program, inputs.size(), 1);
        if (core_->opts.max_job_arena_bytes > 0) {
            // Admission control before any job state is allocated: the
            // plane size is a pure function of the program's memory plan
            // and the ciphertext dimension.
            const size_t need =
                ValuePlane<Evaluator>::RequiredBytes(*program, inputs);
            if (need > core_->opts.max_job_arena_bytes)
                throw ArenaBudgetError(need,
                                       core_->opts.max_job_arena_bytes);
        }
        JobPtr job(new Job(core_, std::move(program), &eval, options));
        if (core_->opts.retry.max_attempts > 1) {
            // Retain the submission inputs so a retry can re-seed the
            // value plane (and the degraded sequential attempt can run
            // straight from them).
            job->inputs = inputs;
        }
        job->values.Reset(*job->program, inputs);

        std::lock_guard<std::mutex> lock(core_->mu);
        if (core_->shutdown)
            throw std::runtime_error("ServingExecutor: stopped");
        if (core_->queued.size() + core_->active.size() >=
            core_->opts.max_pending_jobs) {
            ++core_->stats.jobs_rejected;
            const uint32_t depth = static_cast<uint32_t>(
                core_->queued.size() + core_->active.size());
            throw OverloadedError(depth, DrainEstimateLocked(depth));
        }
        if (core_->opts.max_pending_jobs_per_tenant > 0) {
            auto it = core_->tenant_load.find(job->tenant);
            const uint32_t tenant_pending =
                it != core_->tenant_load.end() ? it->second.pending : 0;
            if (tenant_pending >=
                core_->opts.max_pending_jobs_per_tenant) {
                ++core_->stats.jobs_rejected_tenant_quota;
                throw OverloadedError(tenant_pending,
                                      DrainEstimateLocked(tenant_pending));
            }
        }
        core_->TenantSubmittedLocked(job->tenant);
        job->seq = core_->stats.jobs_submitted;
        ++core_->stats.jobs_submitted;
        if (job->program->NumGates() == 0) {
            // Pass-through program: outputs reference inputs directly.
            job->started = true;
            job->start_time = Clock::now();
            core_->FinishLocked(*job, JobStatus::kDone);
            return job;
        }
        core_->queued.push_back(job);
        core_->AdmitLocked();
        return job;
    }

    /** Consistent snapshot of the serving counters. */
    ServingStats stats() const {
        std::lock_guard<std::mutex> lock(core_->mu);
        return core_->stats;
    }

    /**
     * Cancels queued jobs, requests cancellation of active ones, drains
     * the workers, and releases the executor pool. Idempotent; called by
     * the destructor. Wait for jobs you care about before stopping.
     */
    void Stop() {
        {
            std::lock_guard<std::mutex> lock(core_->mu);
            if (!core_->shutdown) {
                core_->shutdown = true;
                while (!core_->queued.empty()) {
                    JobPtr job = std::move(core_->queued.front());
                    core_->queued.pop_front();
                    core_->FinishLocked(*job, JobStatus::kCancelled);
                }
                for (const JobPtr& job : core_->active) {
                    job->cancel_requested.store(true,
                                                std::memory_order_relaxed);
                    job->abort_hint.store(true, std::memory_order_relaxed);
                    // Held-back gates must flow for the drain to finish.
                    core_->ReleaseBarrierLocked(*job);
                }
            }
            core_->work_cv.notify_all();
            core_->watchdog_cv.notify_all();
        }
        if (dispatcher_.joinable()) dispatcher_.join();
        if (watchdog_.joinable()) watchdog_.join();
    }

    const ServingOptions& options() const { return core_->opts; }

  private:
    /** Retry-after hint: seconds for `depth` jobs to drain (core_->mu held). */
    double DrainEstimateLocked(uint32_t depth) const {
        return core_->stats.jobs_completed > 0
                   ? (core_->stats.total_run_seconds /
                      static_cast<double>(core_->stats.jobs_completed)) *
                         static_cast<double>(depth) /
                         static_cast<double>(core_->opts.max_active_jobs)
                   : 0.0;
    }

    static ServingOptions Validated(const ServingOptions& o) {
        if (o.num_workers < 1 || o.max_active_jobs < 1 ||
            o.max_pending_jobs < 1 || o.per_job_inflight_cap < 1 ||
            o.batch_size < 1)
            throw std::invalid_argument(
                "ServingOptions: all knobs must be >= 1");
        if (o.stall_timeout_seconds < 0.0 || o.stall_poll_seconds < 0.0)
            throw std::invalid_argument(
                "ServingOptions: watchdog timeouts must be >= 0");
        return o;
    }

    std::shared_ptr<Core> core_;
    std::thread dispatcher_;
    std::thread watchdog_;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_SERVING_H
