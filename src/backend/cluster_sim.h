/**
 * @file
 * Discrete-event simulation of the distributed CPU backend (Section IV-D).
 *
 * Substitution note (DESIGN.md): the paper runs Ray actors on a 4-node
 * Xeon cluster; this simulator executes the same Algorithm-1 wave schedule
 * of the same compiled program against the ClusterConfig cost model. The
 * speedup *shape* — near-ideal scaling for wide DAGs, overhead-bound small
 * benchmarks, serial benchmarks stuck at 1x — is produced by the real DAG
 * widths and depths, not by baked-in answers.
 */
#ifndef PYTFHE_BACKEND_CLUSTER_SIM_H
#define PYTFHE_BACKEND_CLUSTER_SIM_H

#include "backend/cost_model.h"
#include "backend/scheduler.h"

namespace pytfhe::backend {

/** Result of one simulated run. */
struct ClusterResult {
    double seconds = 0;             ///< Simulated makespan.
    double single_core_seconds = 0; ///< Same program on one core.
    double ideal_seconds = 0;       ///< Perfect scaling over all workers.
    uint64_t waves = 0;
    uint64_t gates = 0;
    /** Makespan of the same run with the fault model disabled. */
    double fault_free_seconds = 0;
    uint64_t failed_tasks = 0;      ///< Task attempts lost to failures.
    uint64_t straggler_tasks = 0;   ///< Tasks hit by the straggler slowdown.

    double Speedup() const { return single_core_seconds / seconds; }
    double IdealSpeedup() const { return single_core_seconds / ideal_seconds; }
    /** Fraction of the ideal speedup achieved. */
    double Efficiency() const { return Speedup() / IdealSpeedup(); }
    /** Fractional makespan inflation caused by failures and stragglers. */
    double RecoveryOverhead() const {
        return fault_free_seconds > 0.0
                   ? seconds / fault_free_seconds - 1.0
                   : 0.0;
    }
};

/** Classifies gates of a program into bootstrapped vs linear. */
GateMix ComputeGateMix(const pasm::Program& program);

/**
 * Simulates executing `program` on the cluster. Each wave of the BFS
 * schedule is submitted to the worker pool; the wave's span is the maximum
 * over workers of their assigned compute plus communication, bounded below
 * by the driver's serial submission; a barrier closes each wave.
 */
ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config);

/**
 * Fault-aware variant: bootstrapped tasks are dealt round-robin to
 * workers, each task runs a deterministic attempt loop under `faults`
 * (a failed attempt costs the fraction of the task completed before the
 * loss plus the driver's detection delay; a straggling attempt is slowed
 * by the configured factor), and the wave span is the busiest worker.
 * With a disabled model this is exactly the two-argument overload, and
 * `fault_free_seconds` always reports the undisturbed makespan so
 * RecoveryOverhead() is directly comparable.
 */
ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config,
                              const ClusterFaultModel& faults);

/**
 * Throughput (gates/second) of running independent single-threaded dummy
 * TFHE programs until every core is saturated — the paper's ideal-
 * throughput measurement for Fig. 10.
 */
double IdealThroughput(const ClusterConfig& config);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CLUSTER_SIM_H
