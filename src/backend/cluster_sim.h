/**
 * @file
 * Discrete-event simulation of the distributed CPU backend (Section IV-D).
 *
 * Substitution note (DESIGN.md): the paper runs Ray actors on a 4-node
 * Xeon cluster; this simulator executes the same Algorithm-1 wave schedule
 * of the same compiled program against the ClusterConfig cost model. The
 * speedup *shape* — near-ideal scaling for wide DAGs, overhead-bound small
 * benchmarks, serial benchmarks stuck at 1x — is produced by the real DAG
 * widths and depths, not by baked-in answers.
 */
#ifndef PYTFHE_BACKEND_CLUSTER_SIM_H
#define PYTFHE_BACKEND_CLUSTER_SIM_H

#include "backend/cost_model.h"
#include "backend/scheduler.h"

namespace pytfhe::backend {

/** Result of one simulated run. */
struct ClusterResult {
    double seconds = 0;             ///< Simulated makespan.
    double single_core_seconds = 0; ///< Same program on one core.
    double ideal_seconds = 0;       ///< Perfect scaling over all workers.
    uint64_t waves = 0;
    uint64_t gates = 0;

    double Speedup() const { return single_core_seconds / seconds; }
    double IdealSpeedup() const { return single_core_seconds / ideal_seconds; }
    /** Fraction of the ideal speedup achieved. */
    double Efficiency() const { return Speedup() / IdealSpeedup(); }
};

/** Classifies gates of a program into bootstrapped vs linear. */
GateMix ComputeGateMix(const pasm::Program& program);

/**
 * Simulates executing `program` on the cluster. Each wave of the BFS
 * schedule is submitted to the worker pool; the wave's span is the maximum
 * over workers of their assigned compute plus communication, bounded below
 * by the driver's serial submission; a barrier closes each wave.
 */
ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config);

/**
 * Throughput (gates/second) of running independent single-threaded dummy
 * TFHE programs until every core is saturated — the paper's ideal-
 * throughput measurement for Fig. 10.
 */
double IdealThroughput(const ClusterConfig& config);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CLUSTER_SIM_H
