/**
 * @file
 * Discrete-event simulation of the distributed CPU backend (Section IV-D).
 *
 * Substitution note (DESIGN.md): the paper runs Ray actors on a 4-node
 * Xeon cluster; this simulator executes the same Algorithm-1 wave schedule
 * of the same compiled program against the ClusterConfig cost model. The
 * speedup *shape* — near-ideal scaling for wide DAGs, overhead-bound small
 * benchmarks, serial benchmarks stuck at 1x — is produced by the real DAG
 * widths and depths, not by baked-in answers.
 */
#ifndef PYTFHE_BACKEND_CLUSTER_SIM_H
#define PYTFHE_BACKEND_CLUSTER_SIM_H

#include <cstdint>
#include <vector>

#include "backend/cost_model.h"
#include "backend/scheduler.h"

namespace pytfhe::backend {

/** Result of one simulated run. */
struct ClusterResult {
    double seconds = 0;             ///< Simulated makespan.
    double single_core_seconds = 0; ///< Same program on one core.
    double ideal_seconds = 0;       ///< Perfect scaling over all workers.
    uint64_t waves = 0;
    uint64_t gates = 0;
    /** Makespan of the same run with the fault model disabled. */
    double fault_free_seconds = 0;
    uint64_t failed_tasks = 0;      ///< Task attempts lost to failures.
    uint64_t straggler_tasks = 0;   ///< Tasks hit by the straggler slowdown.
    /** Checkpoints written (checkpoint_interval_seconds > 0). */
    uint64_t checkpoints_written = 0;
    /** Work-seconds lost to failures: partial work past the last
     *  checkpoint (the whole partial attempt when checkpointing is off). */
    double lost_seconds = 0;

    double Speedup() const { return single_core_seconds / seconds; }
    double IdealSpeedup() const { return single_core_seconds / ideal_seconds; }
    /** Fraction of the ideal speedup achieved. */
    double Efficiency() const { return Speedup() / IdealSpeedup(); }
    /** Fractional makespan inflation caused by failures and stragglers. */
    double RecoveryOverhead() const {
        return fault_free_seconds > 0.0
                   ? seconds / fault_free_seconds - 1.0
                   : 0.0;
    }
};

/** Classifies gates of a program into bootstrapped vs linear. */
GateMix ComputeGateMix(const pasm::Program& program);

/**
 * Simulates executing `program` on the cluster. Each wave of the BFS
 * schedule is submitted to the worker pool; the wave's span is the maximum
 * over workers of their assigned compute plus communication, bounded below
 * by the driver's serial submission; a barrier closes each wave.
 */
ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config);

/**
 * Fault-aware variant: bootstrapped tasks are dealt round-robin to
 * workers, each task runs a deterministic attempt loop under `faults`
 * (a failed attempt costs the fraction of the task completed before the
 * loss plus the driver's detection delay; a straggling attempt is slowed
 * by the configured factor), and the wave span is the busiest worker.
 * With a disabled model this is exactly the two-argument overload, and
 * `fault_free_seconds` always reports the undisturbed makespan so
 * RecoveryOverhead() is directly comparable.
 *
 * With checkpoint_interval_seconds > 0 each task snapshots its progress
 * at every interval multiple (paying checkpoint_write_seconds per
 * snapshot) and a failed attempt resumes from its last snapshot instead
 * of zero — only the work past the snapshot is lost. Interval 0
 * reproduces the uncheckpointed model bit-exactly.
 * ClusterFaultModel::OptimalCheckpointIntervalSeconds gives the
 * Young/Daly interval that minimizes the expected total overhead.
 */
ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config,
                              const ClusterFaultModel& faults);

/**
 * Throughput (gates/second) of running independent single-threaded dummy
 * TFHE programs until every core is saturated — the paper's ideal-
 * throughput measurement for Fig. 10.
 */
double IdealThroughput(const ClusterConfig& config);

// ---------------------------------------------------------------------------
// Sharded multi-tenant serving simulation.
//
// One Service instance caps out at one machine's worth of tenants; serving
// millions of users means a fleet of shards, each running its own bounded
// key cache, with a front end routing a tenant's jobs by KeyId. The
// routing policy is a locality/balance tradeoff this simulator quantifies:
//
//  - Key affinity (consistent hashing of KeyId onto a vnode ring): a
//    tenant's key lives on ONE shard, so the fleet-wide cache hit rate is
//    that of a single cache of shard capacity per tenant subset — but a
//    hot shard can back up while others idle.
//  - Least loaded: every request goes to the emptiest shard — perfect
//    balance, but a popular tenant's key is re-fetched on many shards and
//    the fleet pays the reload tax repeatedly.
//
// Shard failures draw from the same deterministic ClusterFaultModel as
// the wave simulator: each epoch, each shard fails independently with
// task_failure_rate; a failed shard loses its cache (cold restart), is
// unavailable for detect_seconds, and the ring routes around it — the
// consistent-hash property keeps the reshuffle to ~1/shards of the keys.
// Everything is modeled time (no wall clock): results are bit-stable
// across runs and machines, so they gate in bench_check.
// ---------------------------------------------------------------------------

/** One simulated request: a tenant's job arriving at a given instant. */
struct ShardRequest {
    uint64_t tenant = 0;           ///< KeyId value routed on.
    double arrival_seconds = 0.0;  ///< Absolute arrival time.
    double service_seconds = 0.0;  ///< Modeled execution time of the job.
};

/** Front-end routing policy. */
enum class ShardRouting {
    kKeyAffinity,  ///< Consistent hashing of the tenant key onto the ring.
    kLeastLoaded,  ///< Emptiest live shard, ignoring key locality.
};

/** Fleet + policy knobs for one simulation. */
struct ShardingConfig {
    uint32_t shards = 4;
    /** Ring points per shard; more vnodes = smoother key spread. */
    uint32_t vnodes_per_shard = 64;
    /** Accounted bytes of one tenant's evaluation key. */
    uint64_t key_bytes = 1;
    /** Per-shard key-cache capacity in bytes; 0 = unlimited. */
    uint64_t shard_cache_capacity_bytes = 0;
    /** Cost to load one cold key (disk/network fetch + deserialize). */
    double reload_seconds = 0.0;
    ShardRouting routing = ShardRouting::kKeyAffinity;
    uint64_t seed = 1;  ///< Ring placement + key hashing salt.
    /** Shard-failure check interval; 0 disables failures entirely. */
    double epoch_seconds = 0.0;
    /** Failure process (task_failure_rate = per-epoch shard death). */
    ClusterFaultModel faults;
};

/** Aggregates of one simulated trace. */
struct ShardedServingResult {
    uint64_t requests = 0;
    uint64_t shards = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;  ///< Cold keys: each pays reload_seconds.
    uint64_t evictions = 0;
    double reload_total_seconds = 0.0;
    double p50_latency_seconds = 0.0;
    double p99_latency_seconds = 0.0;
    double max_latency_seconds = 0.0;
    double mean_latency_seconds = 0.0;
    double makespan_seconds = 0.0;  ///< Last completion instant.
    /** Busiest shard's busy time / mean shard busy time (1.0 = perfect). */
    double load_imbalance = 0.0;
    /** Distinct keys ever routed away from their all-live ring owner. */
    uint64_t moved_keys = 0;
    uint64_t shard_failures = 0;
    /** Max resident key bytes observed on any one shard. */
    uint64_t peak_resident_bytes = 0;

    double HitRate() const {
        const uint64_t total = cache_hits + cache_misses;
        return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
    }
};

/**
 * Consistent-hash ring mapping tenant keys to shards. Each shard owns
 * `vnodes` points placed by a deterministic hash of (shard, vnode, seed);
 * a key belongs to the first point clockwise from its own hash. Removing
 * a shard moves only the keys it owned (~1/shards of them) to their next
 * points — the property the failure model leans on.
 */
class ShardRing {
  public:
    ShardRing(uint32_t shards, uint32_t vnodes, uint64_t seed);

    /** Owning shard with every shard live. */
    uint32_t Owner(uint64_t key) const;

    /**
     * Owning shard given liveness (live.size() == shards; at least one
     * true). A key whose owner is dead walks clockwise to the next live
     * point.
     */
    uint32_t Owner(uint64_t key, const std::vector<bool>& live) const;

    uint32_t shards() const { return shards_; }

  private:
    struct Point {
        uint64_t hash;
        uint32_t shard;
    };
    uint32_t shards_;
    uint64_t seed_;
    std::vector<Point> ring_;  ///< Sorted by hash.
};

/**
 * Runs `trace` (sorted by arrival; sorted internally otherwise) through
 * the sharded fleet. Each shard serves FIFO: a request waits for the
 * shard to free up, pays reload_seconds when its tenant's key is cold,
 * then its service time; per-shard byte-LRU caches evict beyond capacity.
 * Deterministic: same trace + config = identical result.
 */
ShardedServingResult SimulateShardedServing(std::vector<ShardRequest> trace,
                                            const ShardingConfig& config);

/**
 * Deterministic Zipf-distributed tenant trace: `requests` arrivals at
 * fixed `arrival_interval_seconds` spacing, tenant drawn from a Zipf(s)
 * law over `tenants` tenants (rank-1 hottest), each with the same
 * modeled `service_seconds`. Tenant ids are 1-based (0 = unset KeyId).
 */
std::vector<ShardRequest> MakeZipfTrace(uint64_t tenants, uint64_t requests,
                                        double zipf_s,
                                        double arrival_interval_seconds,
                                        double service_seconds,
                                        uint64_t seed);

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_CLUSTER_SIM_H
