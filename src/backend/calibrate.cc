#include "backend/calibrate.h"

#include <chrono>
#include <vector>

namespace pytfhe::backend {

CpuCostModel MeasureCpuCostModel(tfhe::GateEvaluator& gates,
                                 tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                                 int32_t samples) {
    using Clock = std::chrono::steady_clock;
    tfhe::LweSample a = secret.Encrypt(true, rng);
    tfhe::LweSample b = secret.Encrypt(false, rng);

    const auto t0 = Clock::now();
    for (int32_t i = 0; i < samples; ++i) a = gates.Nand(a, b);
    const double bootstrap =
        std::chrono::duration<double>(Clock::now() - t0).count() / samples;

    const auto t1 = Clock::now();
    const int32_t not_samples = samples * 1000;
    for (int32_t i = 0; i < not_samples; ++i) b = gates.Not(b);
    const double linear =
        std::chrono::duration<double>(Clock::now() - t1).count() /
        not_samples;

    CpuCostModel model;
    model.bootstrap_gate_seconds = bootstrap;
    model.linear_gate_seconds = linear;
    return model;
}

void MeasureBatchSpeedups(tfhe::GateEvaluator& gates,
                          tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                          CpuCostModel* model, int32_t samples) {
    using Clock = std::chrono::steady_clock;
    constexpr int32_t kMaxBatch = 8;
    tfhe::LweSample a = secret.Encrypt(true, rng);
    tfhe::LweSample b = secret.Encrypt(false, rng);
    std::vector<tfhe::LweSample> outs(kMaxBatch, a);
    tfhe::BatchScratch scratch;

    // Per-gate seconds at a given batch size through the same fused entry
    // point the batch dispatchers use.
    const auto per_gate = [&](int32_t batch) {
        std::vector<tfhe::BatchGateSpec> specs(batch);
        for (int32_t i = 0; i < batch; ++i) {
            specs[i].coef_a = 1;
            specs[i].a = &a;
            specs[i].coef_b = 1;
            specs[i].b = &b;
            specs[i].offset = -tfhe::kGateMu;  // AND
            specs[i].out = &outs[i];
        }
        const auto t0 = Clock::now();
        for (int32_t s = 0; s < samples; ++s)
            gates.BatchedLinearBootstrap(specs.data(), batch, &scratch);
        return std::chrono::duration<double>(Clock::now() - t0).count() /
               (static_cast<double>(samples) * batch);
    };

    const double scalar = per_gate(1);
    const auto speedup = [&](int32_t batch) {
        const double s = scalar / per_gate(batch);
        return s < 1.0 ? 1.0 : s;
    };
    model->batch2_speedup = speedup(2);
    model->batch4_speedup = speedup(4);
    model->batch8_speedup = speedup(8);
}

}  // namespace pytfhe::backend
