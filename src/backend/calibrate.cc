#include "backend/calibrate.h"

#include <chrono>

namespace pytfhe::backend {

CpuCostModel MeasureCpuCostModel(tfhe::GateEvaluator& gates,
                                 tfhe::SecretKeySet& secret, tfhe::Rng& rng,
                                 int32_t samples) {
    using Clock = std::chrono::steady_clock;
    tfhe::LweSample a = secret.Encrypt(true, rng);
    tfhe::LweSample b = secret.Encrypt(false, rng);

    const auto t0 = Clock::now();
    for (int32_t i = 0; i < samples; ++i) a = gates.Nand(a, b);
    const double bootstrap =
        std::chrono::duration<double>(Clock::now() - t0).count() / samples;

    const auto t1 = Clock::now();
    const int32_t not_samples = samples * 1000;
    for (int32_t i = 0; i < not_samples; ++i) b = gates.Not(b);
    const double linear =
        std::chrono::duration<double>(Clock::now() - t1).count() /
        not_samples;

    CpuCostModel model;
    model.bootstrap_gate_seconds = bootstrap;
    model.linear_gate_seconds = linear;
    return model;
}

}  // namespace pytfhe::backend
