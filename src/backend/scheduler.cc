#include "backend/scheduler.h"

namespace pytfhe::backend {

Schedule ComputeSchedule(const pasm::Program& program) {
    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();

    // level[idx] for instruction idx; inputs (and the header) are level 0.
    std::vector<uint32_t> level(end_gate, 0);
    uint32_t max_level = 0;
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        uint32_t in_level = 0;
        program.ForEachOperand(idx, [&](uint64_t in) {
            in_level = std::max(in_level, level[in]);
        });
        level[idx] = in_level + 1;
        max_level = std::max(max_level, level[idx]);
    }

    Schedule s;
    s.levels.resize(max_level);
    for (uint64_t idx = first_gate; idx < end_gate; ++idx)
        s.levels[level[idx] - 1].push_back(idx);
    return s;
}

}  // namespace pytfhe::backend
