#include "backend/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <list>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "backend/fault.h"

namespace pytfhe::backend {

namespace {

// Decision salts for the cluster fault model; distinct from the
// FaultInjector salts so gate-level and task-level schedules never alias.
constexpr uint64_t kSaltTaskFail = 0xC1F0ull;
constexpr uint64_t kSaltStraggle = 0x5788ull;
constexpr uint64_t kSaltProgress = 0x9101ull;

/**
 * Cost of one task attempt. `resume_offset` is the work-seconds already
 * durable from earlier attempts' checkpoints (in/out: a failed attempt
 * advances it to its own last snapshot); `checkpoints` and `lost_seconds`
 * accumulate snapshot writes and failure-discarded work. With
 * checkpoint_interval_seconds == 0 the resume offset stays 0 and the
 * attempt costs exactly what the uncheckpointed model charged.
 */
double TaskAttemptSeconds(const ClusterFaultModel& faults, uint64_t wave,
                          uint64_t task, int32_t attempt,
                          double task_seconds, bool* completed,
                          bool* straggled, double* resume_offset,
                          uint64_t* checkpoints, double* lost_seconds) {
    // One site per (wave, task, attempt): re-executions draw fresh luck,
    // matching a driver that reschedules onto a different worker.
    const uint64_t site = task * 64 + static_cast<uint64_t>(attempt);
    const double interval = faults.checkpoint_interval_seconds;
    const double start = *resume_offset;
    // Snapshots land at interval multiples of absolute task progress;
    // this attempt writes every multiple it newly crosses.
    auto intervals_before = [&](double progress) {
        return interval > 0.0
                   ? static_cast<uint64_t>(std::floor(progress / interval))
                   : 0;
    };
    *straggled = false;
    if (attempt < faults.max_reexecutions &&
        FaultHashUnit(FaultSiteHash(faults.seed, wave, site,
                                    kSaltTaskFail)) <
            faults.task_failure_rate) {
        // Lost mid-flight: work past the last snapshot is wasted, and
        // the driver notices only after the detection delay.
        *completed = false;
        const double progress = FaultHashUnit(
            FaultSiteHash(faults.seed, wave, site, kSaltProgress));
        const double work = (task_seconds - start) * progress;
        const double reached = start + work;
        const uint64_t writes =
            intervals_before(reached) - intervals_before(start);
        *checkpoints += writes;
        const double durable =
            interval > 0.0
                ? std::max(start, std::floor(reached / interval) * interval)
                : 0.0;
        *resume_offset = durable;
        *lost_seconds += reached - durable;
        return work + writes * faults.checkpoint_write_seconds +
               faults.detect_seconds;
    }
    *completed = true;
    double exec = task_seconds - start;
    if (FaultHashUnit(FaultSiteHash(faults.seed, wave, site,
                                    kSaltStraggle)) <
        faults.straggler_rate) {
        *straggled = true;
        exec *= faults.straggler_slowdown;
    }
    const uint64_t writes =
        intervals_before(task_seconds) - intervals_before(start);
    *checkpoints += writes;
    return exec + writes * faults.checkpoint_write_seconds;
}

}  // namespace

GateMix ComputeGateMix(const pasm::Program& program) {
    GateMix mix;
    const uint64_t first = program.FirstGateIndex();
    for (uint64_t idx = first; idx < first + program.NumGates(); ++idx) {
        if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
            ++mix.bootstrap_gates;
        } else {
            ++mix.linear_gates;
        }
    }
    return mix;
}

ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config) {
    return SimulateCluster(program, config, ClusterFaultModel{});
}

ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config,
                              const ClusterFaultModel& faults) {
    const Schedule schedule = ComputeSchedule(program);
    const GateMix mix = ComputeGateMix(program);
    const int32_t workers = config.TotalWorkers();

    ClusterResult result;
    result.waves = schedule.NumLevels();
    result.gates = program.NumGates();
    result.single_core_seconds = SingleCoreSeconds(mix, config.cpu);
    result.ideal_seconds = result.single_core_seconds / workers;

    const double comm_per_task =
        config.ciphertexts_per_task * kCiphertextBytes / config.net_bandwidth;
    const bool faulty = faults.Enabled();

    double t = 0.0;
    double t_fault_free = 0.0;
    std::vector<double> spans(static_cast<size_t>(workers));
    uint64_t wave_index = 0;
    for (const auto& wave : schedule.levels) {
        // Split the wave's gates round-robin over workers; the wave span is
        // the busiest worker. Linear gates (NOT and the elided
        // LXOR/LXNOR/LNOT) are executed inline by the driver at negligible
        // cost.
        uint64_t bootstraps = 0;
        double linear_cost = 0.0;
        for (uint64_t idx : wave) {
            if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
                ++bootstraps;
            } else {
                linear_cost += config.cpu.linear_gate_seconds;
            }
        }
        ++wave_index;
        if (bootstraps == 0) {
            t += linear_cost;
            t_fault_free += linear_cost;
            continue;
        }
        // With batch_size > 1 a task carries a batch of bootstraps through
        // the SoA kernel: fewer, longer tasks whose per-gate cost follows
        // the calibrated batched speedup. batch_size == 1 reproduces the
        // original one-gate-per-task model exactly.
        const uint64_t batch =
            config.batch_size > 1 ? static_cast<uint64_t>(config.batch_size)
                                  : 1;
        const uint64_t tasks = (bootstraps + batch - 1) / batch;
        const uint64_t per_worker =
            (tasks + workers - 1) / static_cast<uint64_t>(workers);
        const double task_seconds =
            static_cast<double>(batch) *
                config.cpu.BatchedGateSeconds(static_cast<int32_t>(batch)) +
            (config.nodes > 1 ? comm_per_task : 0.0);
        double compute_span = per_worker * task_seconds;
        const double fault_free_span = compute_span;
        if (faulty) {
            // Re-run the wave task by task: each attempt draws failure and
            // straggler luck deterministically, a lost attempt costs its
            // partial work plus the detection delay, and the wave waits
            // for the busiest worker.
            std::fill(spans.begin(), spans.end(), 0.0);
            for (uint64_t task = 0; task < tasks; ++task) {
                double cost = 0.0;
                double resume_offset = 0.0;
                for (int32_t attempt = 0;; ++attempt) {
                    bool completed = false;
                    bool straggled = false;
                    cost += TaskAttemptSeconds(
                        faults, wave_index - 1, task, attempt, task_seconds,
                        &completed, &straggled, &resume_offset,
                        &result.checkpoints_written, &result.lost_seconds);
                    if (completed) {
                        if (straggled) ++result.straggler_tasks;
                        break;
                    }
                    ++result.failed_tasks;
                }
                spans[task % static_cast<uint64_t>(workers)] += cost;
            }
            compute_span = *std::max_element(spans.begin(), spans.end());
        }
        // The driver submits tasks serially but overlapped with execution;
        // it binds only when submission is slower than compute.
        const double submit_span = tasks * config.submit_seconds;
        const double barrier =
            config.barrier_local_seconds +
            (config.nodes > 1 ? config.barrier_remote_seconds : 0.0);
        t += std::max(compute_span, submit_span) + barrier + linear_cost;
        t_fault_free +=
            std::max(fault_free_span, submit_span) + barrier + linear_cost;
    }
    result.seconds = t;
    result.fault_free_seconds = t_fault_free;
    return result;
}

double IdealThroughput(const ClusterConfig& config) {
    // Independent single-threaded programs: no barriers, no dependencies —
    // every worker streams gates back to back (batched through the SoA
    // kernel when config.batch_size > 1).
    return config.TotalWorkers() /
           config.cpu.BatchedGateSeconds(config.batch_size);
}

namespace {

// Decision salts for the sharded-serving simulation; distinct from the
// wave-simulator and FaultInjector salts.
constexpr uint64_t kSaltRing = 0x21D6ull;       ///< Vnode placement.
constexpr uint64_t kSaltKeyHash = 0x8EA7ull;    ///< Key position lookup.
constexpr uint64_t kSaltShardFail = 0xF0E1ull;  ///< Per-epoch shard death.
constexpr uint64_t kSaltZipf = 0x21FFull;       ///< Trace tenant draws.

/** Per-shard state: FIFO service + byte-LRU over tenant keys. */
struct ShardState {
    double next_free = 0.0;  ///< Instant the shard finishes its backlog.
    double busy = 0.0;       ///< Accumulated reload + service time.
    std::list<uint64_t> lru;  ///< Front = most recently used tenant.
    std::map<uint64_t, std::list<uint64_t>::iterator> pos;
    uint64_t resident_bytes = 0;
};

}  // namespace

ShardRing::ShardRing(uint32_t shards, uint32_t vnodes, uint64_t seed)
    : shards_(shards), seed_(seed) {
    if (shards == 0 || vnodes == 0)
        throw std::invalid_argument("ShardRing: shards and vnodes >= 1");
    ring_.reserve(static_cast<size_t>(shards) * vnodes);
    for (uint32_t s = 0; s < shards; ++s)
        for (uint32_t v = 0; v < vnodes; ++v)
            ring_.push_back(Point{FaultSiteHash(seed, s, v, kSaltRing), s});
    std::sort(ring_.begin(), ring_.end(),
              [](const Point& a, const Point& b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.shard < b.shard;
              });
}

uint32_t ShardRing::Owner(uint64_t key) const {
    const uint64_t h = FaultSiteHash(seed_, key, 0, kSaltKeyHash);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, uint64_t value) { return p.hash < value; });
    if (it == ring_.end()) it = ring_.begin();
    return it->shard;
}

uint32_t ShardRing::Owner(uint64_t key,
                          const std::vector<bool>& live) const {
    const uint64_t h = FaultSiteHash(seed_, key, 0, kSaltKeyHash);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, uint64_t value) { return p.hash < value; });
    // Clockwise walk to the first live point; one full lap at most.
    for (size_t step = 0; step < ring_.size(); ++step) {
        if (it == ring_.end()) it = ring_.begin();
        if (it->shard < live.size() && live[it->shard]) return it->shard;
        ++it;
    }
    throw std::invalid_argument("ShardRing::Owner: no live shard");
}

ShardedServingResult SimulateShardedServing(std::vector<ShardRequest> trace,
                                            const ShardingConfig& config) {
    if (config.shards == 0)
        throw std::invalid_argument("SimulateShardedServing: shards >= 1");
    std::stable_sort(trace.begin(), trace.end(),
                     [](const ShardRequest& a, const ShardRequest& b) {
                         return a.arrival_seconds < b.arrival_seconds;
                     });

    const ShardRing ring(config.shards, config.vnodes_per_shard,
                         config.seed);
    std::vector<ShardState> shard(config.shards);
    std::vector<bool> live(config.shards, true);
    const bool faulty =
        config.epoch_seconds > 0.0 && config.faults.Enabled();

    ShardedServingResult result;
    result.requests = trace.size();
    result.shards = config.shards;
    std::vector<double> latencies;
    latencies.reserve(trace.size());
    std::set<uint64_t> moved;
    int64_t epoch = -1;

    for (const ShardRequest& req : trace) {
        // Advance the failure process to this request's epoch: each shard
        // dies independently with task_failure_rate per epoch, loses its
        // cache, and sits out detect_seconds. Never kill the last shard.
        if (faulty) {
            const int64_t e = static_cast<int64_t>(
                req.arrival_seconds / config.epoch_seconds);
            if (e != epoch) {
                epoch = e;
                std::fill(live.begin(), live.end(), true);
                uint32_t alive = config.shards;
                for (uint32_t s = 0; s < config.shards; ++s) {
                    if (alive <= 1) break;
                    if (FaultHashUnit(FaultSiteHash(
                            config.faults.seed,
                            static_cast<uint64_t>(epoch), s,
                            kSaltShardFail)) <
                        config.faults.task_failure_rate) {
                        live[s] = false;
                        --alive;
                        ++result.shard_failures;
                        ShardState& dead = shard[s];
                        dead.lru.clear();
                        dead.pos.clear();
                        dead.resident_bytes = 0;
                        dead.next_free =
                            std::max(dead.next_free,
                                     req.arrival_seconds +
                                         config.faults.detect_seconds);
                    }
                }
            }
        }

        uint32_t target;
        if (config.routing == ShardRouting::kKeyAffinity) {
            target = ring.Owner(req.tenant, live);
            if (target != ring.Owner(req.tenant)) moved.insert(req.tenant);
        } else {
            // Least loaded: the live shard that frees up first.
            target = 0;
            double best = 0.0;
            bool found = false;
            for (uint32_t s = 0; s < config.shards; ++s) {
                if (!live[s]) continue;
                if (!found || shard[s].next_free < best) {
                    best = shard[s].next_free;
                    target = s;
                    found = true;
                }
            }
        }

        ShardState& st = shard[target];
        const double start = std::max(req.arrival_seconds, st.next_free);
        double reload = 0.0;
        auto hit = st.pos.find(req.tenant);
        if (hit != st.pos.end()) {
            ++result.cache_hits;
            st.lru.erase(hit->second);
            st.lru.push_front(req.tenant);
            hit->second = st.lru.begin();
        } else {
            ++result.cache_misses;
            reload = config.reload_seconds;
            st.lru.push_front(req.tenant);
            st.pos[req.tenant] = st.lru.begin();
            st.resident_bytes += config.key_bytes;
            while (config.shard_cache_capacity_bytes > 0 &&
                   st.resident_bytes > config.shard_cache_capacity_bytes &&
                   st.lru.size() > 1) {
                const uint64_t victim = st.lru.back();
                st.lru.pop_back();
                st.pos.erase(victim);
                st.resident_bytes -= config.key_bytes;
                ++result.evictions;
            }
            result.peak_resident_bytes =
                std::max(result.peak_resident_bytes, st.resident_bytes);
        }
        const double finish = start + reload + req.service_seconds;
        st.next_free = finish;
        st.busy += reload + req.service_seconds;
        result.reload_total_seconds += reload;
        result.makespan_seconds = std::max(result.makespan_seconds, finish);
        latencies.push_back(finish - req.arrival_seconds);
    }

    result.moved_keys = moved.size();
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto quantile = [&](double q) {
            const size_t idx = static_cast<size_t>(
                std::min<double>(latencies.size() - 1,
                                 q * static_cast<double>(latencies.size())));
            return latencies[idx];
        };
        result.p50_latency_seconds = quantile(0.50);
        result.p99_latency_seconds = quantile(0.99);
        result.max_latency_seconds = latencies.back();
        double sum = 0.0;
        for (double v : latencies) sum += v;
        result.mean_latency_seconds =
            sum / static_cast<double>(latencies.size());
    }
    double busy_sum = 0.0;
    double busy_max = 0.0;
    for (const ShardState& st : shard) {
        busy_sum += st.busy;
        busy_max = std::max(busy_max, st.busy);
    }
    const double busy_mean = busy_sum / static_cast<double>(config.shards);
    result.load_imbalance = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;
    return result;
}

std::vector<ShardRequest> MakeZipfTrace(uint64_t tenants, uint64_t requests,
                                        double zipf_s,
                                        double arrival_interval_seconds,
                                        double service_seconds,
                                        uint64_t seed) {
    if (tenants == 0)
        throw std::invalid_argument("MakeZipfTrace: tenants >= 1");
    // Zipf CDF over ranks 1..tenants: weight(r) = r^-s. Binary-searched
    // inverse-transform sampling off the deterministic site hash.
    std::vector<double> cdf(tenants);
    double total = 0.0;
    for (uint64_t r = 0; r < tenants; ++r) {
        total += std::pow(static_cast<double>(r + 1), -zipf_s);
        cdf[r] = total;
    }
    std::vector<ShardRequest> trace(requests);
    for (uint64_t i = 0; i < requests; ++i) {
        const double u =
            FaultHashUnit(FaultSiteHash(seed, i, 0, kSaltZipf)) * total;
        const uint64_t rank = static_cast<uint64_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        trace[i].tenant = std::min(rank, tenants - 1) + 1;
        trace[i].arrival_seconds =
            static_cast<double>(i) * arrival_interval_seconds;
        trace[i].service_seconds = service_seconds;
    }
    return trace;
}

}  // namespace pytfhe::backend
