#include "backend/cluster_sim.h"

#include <algorithm>
#include <vector>

#include "backend/fault.h"

namespace pytfhe::backend {

namespace {

// Decision salts for the cluster fault model; distinct from the
// FaultInjector salts so gate-level and task-level schedules never alias.
constexpr uint64_t kSaltTaskFail = 0xC1F0ull;
constexpr uint64_t kSaltStraggle = 0x5788ull;
constexpr uint64_t kSaltProgress = 0x9101ull;

/** Cost of one task attempt; sets *completed. */
double TaskAttemptSeconds(const ClusterFaultModel& faults, uint64_t wave,
                          uint64_t task, int32_t attempt,
                          double task_seconds, bool* completed,
                          bool* straggled) {
    // One site per (wave, task, attempt): re-executions draw fresh luck,
    // matching a driver that reschedules onto a different worker.
    const uint64_t site = task * 64 + static_cast<uint64_t>(attempt);
    *straggled = false;
    if (attempt < faults.max_reexecutions &&
        FaultHashUnit(FaultSiteHash(faults.seed, wave, site,
                                    kSaltTaskFail)) <
            faults.task_failure_rate) {
        // Lost mid-flight: the work completed before the loss is wasted,
        // and the driver notices only after the detection delay.
        *completed = false;
        const double progress = FaultHashUnit(
            FaultSiteHash(faults.seed, wave, site, kSaltProgress));
        return task_seconds * progress + faults.detect_seconds;
    }
    *completed = true;
    double exec = task_seconds;
    if (FaultHashUnit(FaultSiteHash(faults.seed, wave, site,
                                    kSaltStraggle)) <
        faults.straggler_rate) {
        *straggled = true;
        exec *= faults.straggler_slowdown;
    }
    return exec;
}

}  // namespace

GateMix ComputeGateMix(const pasm::Program& program) {
    GateMix mix;
    const uint64_t first = program.FirstGateIndex();
    for (uint64_t idx = first; idx < first + program.NumGates(); ++idx) {
        if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
            ++mix.bootstrap_gates;
        } else {
            ++mix.linear_gates;
        }
    }
    return mix;
}

ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config) {
    return SimulateCluster(program, config, ClusterFaultModel{});
}

ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config,
                              const ClusterFaultModel& faults) {
    const Schedule schedule = ComputeSchedule(program);
    const GateMix mix = ComputeGateMix(program);
    const int32_t workers = config.TotalWorkers();

    ClusterResult result;
    result.waves = schedule.NumLevels();
    result.gates = program.NumGates();
    result.single_core_seconds = SingleCoreSeconds(mix, config.cpu);
    result.ideal_seconds = result.single_core_seconds / workers;

    const double comm_per_task =
        config.ciphertexts_per_task * kCiphertextBytes / config.net_bandwidth;
    const bool faulty = faults.Enabled();

    double t = 0.0;
    double t_fault_free = 0.0;
    std::vector<double> spans(static_cast<size_t>(workers));
    uint64_t wave_index = 0;
    for (const auto& wave : schedule.levels) {
        // Split the wave's gates round-robin over workers; the wave span is
        // the busiest worker. Linear gates (NOT and the elided
        // LXOR/LXNOR/LNOT) are executed inline by the driver at negligible
        // cost.
        uint64_t bootstraps = 0;
        double linear_cost = 0.0;
        for (uint64_t idx : wave) {
            if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
                ++bootstraps;
            } else {
                linear_cost += config.cpu.linear_gate_seconds;
            }
        }
        ++wave_index;
        if (bootstraps == 0) {
            t += linear_cost;
            t_fault_free += linear_cost;
            continue;
        }
        const uint64_t per_worker =
            (bootstraps + workers - 1) / static_cast<uint64_t>(workers);
        const double task_seconds =
            config.cpu.bootstrap_gate_seconds +
            (config.nodes > 1 ? comm_per_task : 0.0);
        double compute_span = per_worker * task_seconds;
        const double fault_free_span = compute_span;
        if (faulty) {
            // Re-run the wave task by task: each attempt draws failure and
            // straggler luck deterministically, a lost attempt costs its
            // partial work plus the detection delay, and the wave waits
            // for the busiest worker.
            std::fill(spans.begin(), spans.end(), 0.0);
            for (uint64_t task = 0; task < bootstraps; ++task) {
                double cost = 0.0;
                for (int32_t attempt = 0;; ++attempt) {
                    bool completed = false;
                    bool straggled = false;
                    cost += TaskAttemptSeconds(faults, wave_index - 1, task,
                                               attempt, task_seconds,
                                               &completed, &straggled);
                    if (completed) {
                        if (straggled) ++result.straggler_tasks;
                        break;
                    }
                    ++result.failed_tasks;
                }
                spans[task % static_cast<uint64_t>(workers)] += cost;
            }
            compute_span = *std::max_element(spans.begin(), spans.end());
        }
        // The driver submits tasks serially but overlapped with execution;
        // it binds only when submission is slower than compute.
        const double submit_span = bootstraps * config.submit_seconds;
        const double barrier =
            config.barrier_local_seconds +
            (config.nodes > 1 ? config.barrier_remote_seconds : 0.0);
        t += std::max(compute_span, submit_span) + barrier + linear_cost;
        t_fault_free +=
            std::max(fault_free_span, submit_span) + barrier + linear_cost;
    }
    result.seconds = t;
    result.fault_free_seconds = t_fault_free;
    return result;
}

double IdealThroughput(const ClusterConfig& config) {
    // Independent single-threaded programs: no barriers, no dependencies —
    // every worker streams gates back to back.
    return config.TotalWorkers() / config.cpu.bootstrap_gate_seconds;
}

}  // namespace pytfhe::backend
