#include "backend/cluster_sim.h"

#include <algorithm>

namespace pytfhe::backend {

GateMix ComputeGateMix(const pasm::Program& program) {
    GateMix mix;
    const uint64_t first = program.FirstGateIndex();
    for (uint64_t idx = first; idx < first + program.NumGates(); ++idx) {
        if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
            ++mix.bootstrap_gates;
        } else {
            ++mix.linear_gates;
        }
    }
    return mix;
}

ClusterResult SimulateCluster(const pasm::Program& program,
                              const ClusterConfig& config) {
    const Schedule schedule = ComputeSchedule(program);
    const GateMix mix = ComputeGateMix(program);
    const int32_t workers = config.TotalWorkers();

    ClusterResult result;
    result.waves = schedule.NumLevels();
    result.gates = program.NumGates();
    result.single_core_seconds = SingleCoreSeconds(mix, config.cpu);
    result.ideal_seconds = result.single_core_seconds / workers;

    const double comm_per_task =
        config.ciphertexts_per_task * kCiphertextBytes / config.net_bandwidth;

    double t = 0.0;
    for (const auto& wave : schedule.levels) {
        // Split the wave's gates round-robin over workers; the wave span is
        // the busiest worker. Linear gates (NOT and the elided
        // LXOR/LXNOR/LNOT) are executed inline by the driver at negligible
        // cost.
        uint64_t bootstraps = 0;
        double linear_cost = 0.0;
        for (uint64_t idx : wave) {
            if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
                ++bootstraps;
            } else {
                linear_cost += config.cpu.linear_gate_seconds;
            }
        }
        if (bootstraps == 0) {
            t += linear_cost;
            continue;
        }
        const uint64_t per_worker =
            (bootstraps + workers - 1) / static_cast<uint64_t>(workers);
        const double task_seconds =
            config.cpu.bootstrap_gate_seconds +
            (config.nodes > 1 ? comm_per_task : 0.0);
        const double compute_span = per_worker * task_seconds;
        // The driver submits tasks serially but overlapped with execution;
        // it binds only when submission is slower than compute.
        const double submit_span = bootstraps * config.submit_seconds;
        const double barrier =
            config.barrier_local_seconds +
            (config.nodes > 1 ? config.barrier_remote_seconds : 0.0);
        t += std::max(compute_span, submit_span) + barrier + linear_cost;
    }
    result.seconds = t;
    return result;
}

double IdealThroughput(const ClusterConfig& config) {
    // Independent single-threaded programs: no barriers, no dependencies —
    // every worker streams gates back to back.
    return config.TotalWorkers() / config.cpu.bootstrap_gate_seconds;
}

}  // namespace pytfhe::backend
