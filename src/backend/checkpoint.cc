#include "backend/checkpoint.h"

namespace pytfhe::backend {

namespace {

/** FNV-1a, the same mixing the fault injector's site hash uses. */
inline uint64_t Mix(uint64_t h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= UINT64_C(0x100000001B3);
    }
    return h;
}

}  // namespace

uint64_t ProgramFingerprint(const pasm::Program& program) {
    uint64_t h = UINT64_C(0xCBF29CE484222325);
    h = Mix(h, program.NumInputs());
    h = Mix(h, program.NumGates());
    h = Mix(h, static_cast<uint64_t>(program.MessageModulus()));
    for (uint64_t src : program.OutputIndices()) h = Mix(h, src);
    const uint64_t first_gate = program.FirstGateIndex();
    const uint64_t end_gate = first_gate + program.NumGates();
    for (uint64_t idx = first_gate; idx < end_gate; ++idx) {
        if (program.IsLutGate(idx)) {
            const pasm::DecodedLut l = program.LutAt(idx);
            h = Mix(h, l.table);
            h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(l.lo)));
            h = Mix(h, l.out_bits);
            for (const auto& [in, w] : l.operands) {
                h = Mix(h, in);
                h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(w)));
            }
        } else {
            const pasm::DecodedGate g = program.GateAt(idx);
            h = Mix(h, static_cast<uint64_t>(g.type));
            h = Mix(h, g.in0);
            h = Mix(h, g.in1);
        }
    }
    if (const pasm::MemoryPlan* plan = program.Plan()) {
        h = Mix(h, plan->num_slots);
        h = Mix(h, plan->level_safe ? 1 : 2);
    }
    return h;
}

ResumeState BuildResumeState(const pasm::Program& program,
                             const pasm::GateDependencies& deps,
                             CheckpointCut cut, uint64_t boundary) {
    const uint64_t first_gate = deps.first_gate;
    const uint64_t num_gates = deps.NumGates();

    ResumeState state;
    state.done.assign(num_gates, 0);
    if (cut == CheckpointCut::kLevel) {
        const std::vector<uint64_t> level = program.ValueLevels();
        for (uint64_t g = 0; g < num_gates; ++g)
            state.done[g] = level[first_gate + g] < boundary ? 1 : 0;
    } else {
        for (uint64_t g = 0; g < num_gates; ++g)
            state.done[g] = first_gate + g <= boundary ? 1 : 0;
    }

    // Replay the counter arithmetic of the done set: both cut kinds are
    // downward-closed over the dependency edges (data and plan-induced
    // anti edges all cross a valid cut forward), so every not-done gate's
    // count is exactly its predecessors still outstanding.
    state.pending.assign(deps.pred_count.begin(), deps.pred_count.end());
    for (uint64_t g = 0; g < num_gates; ++g) {
        if (!state.done[g]) continue;
        ++state.gates_done;
        const auto [begin, end] = deps.SuccessorsOf(first_gate + g);
        for (const uint64_t* s = begin; s != end; ++s) {
            const uint64_t succ = *s - first_gate;
            if (!state.done[succ]) --state.pending[succ];
        }
    }
    state.remaining = num_gates - state.gates_done;
    for (uint64_t g = 0; g < num_gates; ++g)
        if (!state.done[g] && state.pending[g] == 0)
            state.ready.push_back(first_gate + g);
    return state;
}

}  // namespace pytfhe::backend
