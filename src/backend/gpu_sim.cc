#include "backend/gpu_sim.h"

#include <algorithm>

namespace pytfhe::backend {

namespace {

double TransferSeconds(const GpuConfig& gpu, double ciphertexts) {
    return gpu.transfer_sync_seconds +
           ciphertexts * kCiphertextBytes / gpu.pcie_bandwidth;
}

void AddEvent(GpuResult& r, size_t max_events, double start, double end,
              const char* lane, std::string label) {
    if (r.timeline.size() < max_events)
        r.timeline.push_back(TimelineEvent{start, end, lane, std::move(label)});
}

}  // namespace

GpuResult SimulateCuFhe(const pasm::Program& program, const GpuConfig& gpu,
                        size_t max_events) {
    GpuResult r;
    r.gates = program.NumGates();
    double t = 0.0;
    const uint64_t first = program.FirstGateIndex();
    for (uint64_t idx = first; idx < first + program.NumGates(); ++idx) {
        const auto g = program.GateAt(idx);
        // NOT and elided linear gates (LXOR/LXNOR/LNOT) are host-side LWE
        // arithmetic in the per-gate discipline — no kernel, no transfer.
        if (!circuit::NeedsBootstrap(g.type)) continue;
        // H2D of both operands, blocking.
        const double h2d = TransferSeconds(gpu, 2);
        AddEvent(r, max_events, t, t + h2d, "H2D",
                 "in " + std::to_string(idx));
        t += h2d;
        r.h2d_seconds += h2d;
        // Kernel launch + execution, blocking.
        t += gpu.launch_seconds;
        r.launch_seconds += gpu.launch_seconds;
        AddEvent(r, max_events, t, t + gpu.kernel_seconds, "Kernel",
                 std::string(circuit::GateTypeName(g.type)));
        t += gpu.kernel_seconds;
        r.kernel_seconds += gpu.kernel_seconds;
        // D2H of the result regardless of whether it is reused (Fig. 8).
        const double d2h = TransferSeconds(gpu, 1);
        AddEvent(r, max_events, t, t + d2h, "D2H",
                 "out " + std::to_string(idx));
        t += d2h;
        r.d2h_seconds += d2h;
        ++r.batches;  // One API call per gate.
    }
    r.seconds = t;
    return r;
}

GpuResult SimulatePyTfhe(const pasm::Program& program, const GpuConfig& gpu,
                         size_t max_events) {
    GpuResult r;
    r.gates = program.NumGates();
    const Schedule schedule = ComputeSchedule(program);
    const int32_t concurrency = std::max(1, gpu.Concurrency());

    // Cut the wave sequence into batches of at most batch_gates gates.
    struct Batch {
        std::vector<const std::vector<uint64_t>*> waves;
        uint64_t gates = 0;
    };
    std::vector<Batch> batches;
    Batch current;
    for (const auto& wave : schedule.levels) {
        if (current.gates > 0 &&
            current.gates + wave.size() > gpu.batch_gates) {
            batches.push_back(std::move(current));
            current = Batch{};
        }
        current.waves.push_back(&wave);
        current.gates += wave.size();
    }
    if (current.gates > 0) batches.push_back(std::move(current));
    r.batches = batches.size();

    // Which instruction produced each value, per batch, to count fresh
    // host-to-device inputs (values produced before the batch).
    const uint64_t first = program.FirstGateIndex();
    const uint64_t end = first + program.NumGates();
    std::vector<int32_t> batch_of(end, -1);  // -1 = primary input.
    for (size_t bi = 0; bi < batches.size(); ++bi)
        for (const auto* wave : batches[bi].waves)
            for (uint64_t idx : *wave)
                batch_of[idx] = static_cast<int32_t>(bi);

    double device_free = 0.0;  // When the GPU finishes its current batch.
    double host_time = 0.0;    // CPU cursor (graph construction).
    std::vector<int64_t> seen_stamp(end, -1);  // Upload dedup per batch.
    for (size_t bi = 0; bi < batches.size(); ++bi) {
        const Batch& batch = batches[bi];

        // Host builds this batch's CUDA graph; overlaps with the device
        // executing the previous batch.
        const double build = batch.gates * gpu.graph_build_per_gate;
        const double build_done = host_time + build;
        host_time = build_done;
        r.host_build_seconds += build;

        // Count ciphertexts that must be uploaded: operands produced
        // outside this batch that have not been uploaded for it yet.
        uint64_t fresh_inputs = 0;
        for (const auto* wave : batch.waves) {
            for (uint64_t idx : *wave) {
                program.ForEachOperand(idx, [&](uint64_t in) {
                    if (seen_stamp[in] == static_cast<int64_t>(bi)) return;
                    seen_stamp[in] = static_cast<int64_t>(bi);
                    if (batch_of[in] != static_cast<int32_t>(bi))
                        ++fresh_inputs;
                });
            }
        }

        const double start = std::max(device_free, build_done);
        double t = start;
        const double h2d = TransferSeconds(gpu, fresh_inputs);
        AddEvent(r, max_events, t, t + h2d, "H2D",
                 "batch " + std::to_string(bi) + " inputs");
        t += h2d;
        r.h2d_seconds += h2d;

        t += gpu.graph_launch_seconds;
        r.launch_seconds += gpu.graph_launch_seconds;

        const double kernel_start = t;
        for (const auto* wave : batch.waves) {
            // Elided linear gates run as elementwise kernels inside the
            // same graph; they are priced serially (an upper bound) and
            // never compete for the bootstrap kernels' SM budget.
            uint64_t bootstraps = 0, linear = 0;
            for (uint64_t idx : *wave) {
                if (circuit::NeedsBootstrap(program.GateAt(idx).type)) {
                    ++bootstraps;
                } else {
                    ++linear;
                }
            }
            t += linear * gpu.linear_kernel_seconds;
            if (bootstraps == 0) continue;
            const uint64_t rounds =
                (bootstraps + concurrency - 1) / concurrency;
            t += rounds * gpu.kernel_seconds;
        }
        AddEvent(r, max_events, kernel_start, t, "Kernel",
                 "batch " + std::to_string(bi) + " (" +
                     std::to_string(batch.gates) + " gates)");
        r.kernel_seconds += t - kernel_start;
        device_free = t;
    }

    // Final download: only the declared outputs come back.
    const double d2h = TransferSeconds(
        gpu, static_cast<double>(program.OutputIndices().size()));
    AddEvent(r, max_events, device_free, device_free + d2h, "D2H", "outputs");
    r.d2h_seconds += d2h;
    r.seconds = device_free + d2h;
    return r;
}

}  // namespace pytfhe::backend
