#include "backend/executor.h"

namespace pytfhe::backend {

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

int32_t ThreadPool::NumWorkers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int32_t>(threads_.size());
}

void ThreadPool::EnsureWorkersLocked(int32_t n) {
    while (static_cast<int32_t>(threads_.size()) < n)
        threads_.emplace_back([this] { WorkerLoop(); });
}

void ThreadPool::RunOnWorkers(int32_t workers,
                              const std::function<void()>& fn) {
    if (workers <= 0) {
        fn();
        return;
    }
    // One region at a time: concurrent callers queue up here instead of
    // clobbering each other's region bookkeeping.
    std::lock_guard<std::mutex> region(region_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    EnsureWorkersLocked(workers);
    job_ = &fn;
    ++generation_;
    target_ = workers;
    started_ = 0;
    finished_ = 0;
    lock.unlock();
    work_cv_.notify_all();

    // The calling thread is a participant too.
    fn();

    lock.lock();
    done_cv_.wait(lock, [&] { return finished_ == target_; });
    job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        work_cv_.wait(lock, [&] {
            return shutdown_ ||
                   (job_ != nullptr && generation_ != seen &&
                    started_ < target_);
        });
        if (shutdown_) return;
        // Claim a participation slot in this region; late wakers past the
        // target go back to sleep until the next generation.
        seen = generation_;
        ++started_;
        const std::function<void()>* fn = job_;
        lock.unlock();
        (*fn)();
        lock.lock();
        if (++finished_ == target_) done_cv_.notify_all();
    }
}

}  // namespace pytfhe::backend
