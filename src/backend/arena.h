/**
 * @file
 * Memory-planned ciphertext storage for program execution.
 *
 * Every interpreter used to hold one heap-allocated ciphertext per
 * instruction for the whole run: a 32-bit multiplier holds thousands of
 * LweSamples alive although only a handful are ever live at once. This
 * file provides the planned alternative, in two layers:
 *
 *  - CiphertextArena: one contiguous Torus32 slab holding N fixed-stride
 *    LWE slots. Gate kernels read and write slots through LweView/LweCView
 *    spans (tfhe/lwe.h) — no per-gate std::vector allocation, no pointer
 *    chasing, and Reset() keeps the slab across runs/retries.
 *
 *  - ValuePlane<Evaluator>: the value storage of one program run, mapping
 *    instruction indices to physical slots through the program's
 *    pasm::MemoryPlan (identity when the program carries none). Evaluators
 *    that implement the view-based ApplyInto protocol (kSupportsApplyInto,
 *    e.g. TfheEvaluator) get the arena-backed specialization; everything
 *    else (plaintext/counting evaluators) gets a SlotBuffer-backed plane
 *    with the same interface, so the interpreters are written once.
 *
 * Safety of slot reuse is the plan's contract, enforced at pasm load time
 * (pasm/program.cc): values sharing a slot have disjoint live intervals,
 * dependency-counting executors add anti-dependency edges
 * (Program::BuildGateDependencies(plan)), and the wave-barrier path only
 * honors plans flagged level-safe.
 */
#ifndef PYTFHE_BACKEND_ARENA_H
#define PYTFHE_BACKEND_ARENA_H

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "backend/evaluator.h"
#include "circuit/netlist.h"
#include "pasm/program.h"
#include "tfhe/lwe.h"

namespace pytfhe::backend {

namespace detail {

/**
 * Value slots indexed by instruction (or physical plan slot). A plain heap
 * array rather than std::vector<C>: with C = bool, vector<bool> packs
 * bits, and concurrent writers of *different* slots would race on the
 * same byte. A bool[] has one addressable object per slot, so
 * distinct-slot writes never conflict. Slots are default-initialized, not
 * value-initialized: every slot is written (input seeding or its producing
 * gate) before any reader touches it, so zeroing the whole buffer up front
 * is pure waste on large programs.
 */
template <typename C>
class SlotBuffer {
  public:
    explicit SlotBuffer(uint64_t size) : slots_(new C[size]) {}
    C& operator[](uint64_t idx) { return slots_[idx]; }
    const C& operator[](uint64_t idx) const { return slots_[idx]; }

  private:
    std::unique_ptr<C[]> slots_;
};

/** Placeholder scratch for evaluators that do not declare WorkerScratch. */
struct NoScratch {};

/**
 * Maps an evaluator to its per-worker scratch type. Evaluators opt in by
 * declaring `using WorkerScratch = ...` and providing an Apply overload
 * taking a WorkerScratch&; everything else gets the empty NoScratch and
 * the plain three-argument Apply.
 */
template <typename Evaluator, typename = void>
struct WorkerScratchOf {
    using type = NoScratch;
};

template <typename Evaluator>
struct WorkerScratchOf<Evaluator,
                       std::void_t<typename Evaluator::WorkerScratch>> {
    using type = typename Evaluator::WorkerScratch;
};

/**
 * Maps an evaluator to its per-worker *batch* scratch type. Evaluators
 * opt in by declaring `using BatchScratch = ...` alongside an ApplyBatch
 * method; everything else gets the empty NoScratch.
 */
template <typename Evaluator, typename = void>
struct BatchScratchOf {
    using type = NoScratch;
};

template <typename Evaluator>
struct BatchScratchOf<Evaluator,
                      std::void_t<typename Evaluator::BatchScratch>> {
    using type = typename Evaluator::BatchScratch;
};

/**
 * True when the evaluator can evaluate a batch of bootstrapped gates in
 * one kernel call (ApplyBatch + Batchable + BatchScratch). Dispatchers
 * with batch_size > 1 group ready gates for such evaluators and fall back
 * to per-gate Apply for everything else.
 */
template <typename Evaluator>
inline constexpr bool kSupportsApplyBatch = requires(
    const Evaluator& e,
    const BatchGate<typename Evaluator::Ciphertext>* items, int32_t count,
    typename BatchScratchOf<Evaluator>::type& s) {
    e.ApplyBatch(items, count, s);
    { Evaluator::Batchable(circuit::GateType::kAnd) } -> std::same_as<bool>;
};

/**
 * True when the evaluator implements the zero-copy view protocol:
 * ApplyInto evaluating one gate from LweCView operands straight into an
 * LweView destination. Such evaluators run on the arena-backed ValuePlane.
 */
template <typename Evaluator>
inline constexpr bool kSupportsApplyInto = requires(
    const Evaluator& e, tfhe::LweCView cv, tfhe::LweView v,
    typename WorkerScratchOf<Evaluator>::type& s) {
    e.ApplyInto(circuit::GateType::kAnd, cv, true, cv, true, v, s);
};

/**
 * Dispatches Apply by evaluator capability. Evaluators may take operand
 * encoding-domain flags (ciphertext evaluators need them to pick the
 * linear-combination coefficients for elided gates) and/or a per-worker
 * scratch; plaintext-style evaluators take neither, since the plaintext
 * semantics of kLin* gates do not depend on the operand encoding.
 */
template <typename Evaluator, typename C, typename Scratch>
C ApplyGate(Evaluator& eval, circuit::GateType t, const C& a, bool a_linear,
            const C& b, bool b_linear, Scratch& scratch) {
    if constexpr (requires { eval.Apply(t, a, a_linear, b, b_linear,
                                        scratch); }) {
        return eval.Apply(t, a, a_linear, b, b_linear, scratch);
    } else if constexpr (std::is_same_v<Scratch, NoScratch>) {
        (void)scratch;
        return eval.Apply(t, a, b);
    } else {
        return eval.Apply(t, a, b, scratch);
    }
}

}  // namespace detail

/**
 * One contiguous Torus32 slab of fixed-stride LWE ciphertext slots. All
 * samples share one dimension n; slot s occupies [s*(n+1), (s+1)*(n+1)) —
 * the n mask coefficients followed by the body. Reset() reshapes without
 * shrinking, so a reused arena (executor runs, serving retries) is
 * allocation-free once warm.
 */
class CiphertextArena {
  public:
    /** Slab bytes needed for `num_slots` ciphertexts of dimension n. */
    static size_t BytesFor(uint64_t num_slots, int32_t n) {
        return static_cast<size_t>(num_slots) *
               (static_cast<size_t>(n) + 1) * sizeof(tfhe::Torus32);
    }

    void Reset(uint64_t num_slots, int32_t n) {
        n_ = n;
        stride_ = static_cast<uint64_t>(n) + 1;
        num_slots_ = num_slots;
        const size_t need = static_cast<size_t>(num_slots) * stride_;
        if (data_.size() < need) data_.resize(need);
    }

    tfhe::LweView Slot(uint64_t s) {
        tfhe::Torus32* base = data_.data() + s * stride_;
        return tfhe::LweView{base, base + n_, n_};
    }
    tfhe::LweCView Slot(uint64_t s) const {
        const tfhe::Torus32* base = data_.data() + s * stride_;
        return tfhe::LweCView{base, base + n_, n_};
    }

    uint64_t NumSlots() const { return num_slots_; }
    int32_t SampleDim() const { return n_; }
    /** Bytes held by the slab (capacity — what the process actually pays). */
    size_t ByteSize() const {
        return data_.capacity() * sizeof(tfhe::Torus32);
    }

  private:
    std::vector<tfhe::Torus32> data_;
    uint64_t num_slots_ = 0;
    uint64_t stride_ = 1;
    int32_t n_ = 0;
};

/**
 * Value storage of one program run behind a uniform interface:
 *   Reset(program, inputs[, use_plan]) — (re)shape and seed input slots;
 *   Apply(eval, program, idx, scratch) — evaluate the gate at instruction
 *       idx into its slot;
 *   BatchItemFor(program, idx)        — assemble one batched-kernel item;
 *   Harvest(program)                  — copy out the output ciphertexts;
 *   PlaneBytes() / RequiredBytes(...) — resident-byte accounting.
 *
 * This primary template is the generic plane: a SlotBuffer of whole
 * ciphertext objects, plan-mapped. Distinct slots are distinct objects, so
 * concurrent writers of different slots never conflict — the same
 * discipline the interpreters have always relied on.
 */
template <typename Evaluator, typename Enable = void>
class ValuePlane {
  public:
    using C = typename Evaluator::Ciphertext;
    using BatchItem = BatchGate<C>;

    void Reset(const pasm::Program& program, const std::vector<C>& inputs,
               bool use_plan = true) {
        plan_ = use_plan ? program.Plan() : nullptr;
        const uint64_t size = plan_
                                  ? plan_->num_slots
                                  : program.FirstGateIndex() +
                                        program.NumGates();
        if (size != size_) {
            values_ = detail::SlotBuffer<C>(size);
            size_ = size;
        }
        // Multi-bit programs carry 2-bit intermediate digits that a bool
        // (or placeholder byte) slot cannot hold; a digit side-plane with
        // the same slot mapping carries them. Inputs are 1-bit digits by
        // the format's homogeneity rule, so seeding from C is lossless.
        if (program.MessageModulus() != 0) {
            digits_.assign(size, 0);
            for (uint64_t i = 0; i < inputs.size(); ++i)
                digits_[SlotOf(1 + i)] = inputs[i] ? 1 : 0;
        } else {
            digits_.clear();
        }
        for (uint64_t i = 0; i < inputs.size(); ++i)
            values_[SlotOf(1 + i)] = inputs[i];
    }

    template <typename Scratch>
    void Apply(Evaluator& eval, const pasm::Program& program, uint64_t idx,
               Scratch& scratch) {
        if (program.IsLutGate(idx)) {
            // The plane interprets weighted LUT gates itself (reference
            // digit semantics, mirroring circuit::Netlist::EvaluatePlain);
            // evaluators that account per-gate work opt in via OnLutGate.
            const pasm::DecodedLut l = program.LutAt(idx);
            int32_t m = 0;
            for (const auto& [in, w] : l.operands)
                m += static_cast<int32_t>(w) *
                     static_cast<int32_t>(digits_[SlotOf(in)]);
            const uint32_t entry =
                (l.table >> ((m - l.lo) * l.out_bits)) &
                ((1u << l.out_bits) - 1);
            digits_[SlotOf(idx)] = static_cast<uint8_t>(entry);
            // Program outputs may only read 1-bit gates (enforced at load
            // time), so the low bit is the whole value wherever C matters.
            values_[SlotOf(idx)] = static_cast<C>(entry & 1u);
            if constexpr (requires { eval.OnLutGate(); }) eval.OnLutGate();
            return;
        }
        const pasm::DecodedGate g = program.GateAt(idx);
        // ApplyGate returns by value: the result is complete before the
        // assignment runs, so an in-place plan (out slot == operand slot)
        // is safe here.
        values_[SlotOf(idx)] = detail::ApplyGate(
            eval, g.type, values_[SlotOf(g.in0)],
            program.ProducesLinearDomain(g.in0), values_[SlotOf(g.in1)],
            program.ProducesLinearDomain(g.in1), scratch);
    }

    BatchItem BatchItemFor(const pasm::Program& program, uint64_t idx) {
        const pasm::DecodedGate g = program.GateAt(idx);
        return BatchItem{g.type, &values_[SlotOf(g.in0)],
                         program.ProducesLinearDomain(g.in0),
                         &values_[SlotOf(g.in1)],
                         program.ProducesLinearDomain(g.in1),
                         &values_[SlotOf(idx)]};
    }

    std::vector<C> Harvest(const pasm::Program& program) const {
        std::vector<C> out;
        out.reserve(program.OutputIndices().size());
        for (uint64_t src : program.OutputIndices())
            out.push_back(values_[SlotOf(src)]);
        return out;
    }

    /** Copy of the ciphertext in `idx`'s slot (checkpoint snapshot). */
    C CopyValue(uint64_t idx) const { return values_[SlotOf(idx)]; }
    /** Writes a checkpointed ciphertext back into `idx`'s slot. */
    void RestoreValue(uint64_t idx, const C& value) {
        values_[SlotOf(idx)] = value;
    }
    /** Digit side-plane access; meaningful only when HasDigits(). */
    bool HasDigits() const { return !digits_.empty(); }
    uint8_t DigitOf(uint64_t idx) const { return digits_[SlotOf(idx)]; }
    void RestoreDigit(uint64_t idx, uint8_t digit) {
        if (!digits_.empty()) digits_[SlotOf(idx)] = digit;
    }

    size_t PlaneBytes() const { return size_ * sizeof(C); }

    static size_t RequiredBytes(const pasm::Program& program,
                                const std::vector<C>& inputs,
                                bool use_plan = true) {
        (void)inputs;
        const pasm::MemoryPlan* plan = use_plan ? program.Plan() : nullptr;
        const uint64_t size = plan ? plan->num_slots
                                   : program.FirstGateIndex() +
                                         program.NumGates();
        return size * sizeof(C);
    }

  private:
    uint64_t SlotOf(uint64_t idx) const {
        return plan_ != nullptr ? plan_->slot_of[idx] : idx;
    }

    const pasm::MemoryPlan* plan_ = nullptr;  ///< Borrowed from the program.
    uint64_t size_ = 0;
    detail::SlotBuffer<C> values_{0};
    /** Digit values per slot; populated only for multi-bit programs. */
    std::vector<uint8_t> digits_;
};

/**
 * Arena-backed plane for view-protocol evaluators (TfheEvaluator): all
 * values live in one CiphertextArena slab, gates evaluate through
 * Evaluator::ApplyInto reading/writing slab slots in place, and batched
 * kernels gather/scatter lanes directly from the slab. Harvest is the only
 * point that materializes LweSample objects (one copy per program output).
 */
template <typename Evaluator>
class ValuePlane<Evaluator,
                 std::enable_if_t<detail::kSupportsApplyInto<Evaluator>>> {
  public:
    using C = typename Evaluator::Ciphertext;
    using BatchItem = BatchGateView;

    void Reset(const pasm::Program& program, const std::vector<C>& inputs,
               bool use_plan = true) {
        plan_ = use_plan ? program.Plan() : nullptr;
        const uint64_t slots = plan_
                                   ? plan_->num_slots
                                   : program.FirstGateIndex() +
                                         program.NumGates();
        const int32_t n = inputs.empty() ? 0 : inputs[0].N();
        for (const C& in : inputs)
            if (in.N() != n)
                throw std::invalid_argument(
                    "ValuePlane: inputs mix LWE dimensions");
        arena_.Reset(slots, n);
        for (uint64_t i = 0; i < inputs.size(); ++i)
            tfhe::LweCopyInto(tfhe::ViewOf(inputs[i]),
                              arena_.Slot(SlotOf(1 + i)));
    }

    template <typename Scratch>
    void Apply(Evaluator& eval, const pasm::Program& program, uint64_t idx,
               Scratch& scratch) {
        if (program.IsLutGate(idx)) {
            // Weighted LUT gate: gather operand slot views and dispatch
            // one programmable bootstrap. Kernel inputs are consumed
            // before the output view is written, so in-place plans hold.
            const pasm::DecodedLut l = program.LutAt(idx);
            tfhe::LweCView ops[circuit::kMaxLutArity];
            int8_t weights[circuit::kMaxLutArity];
            const size_t arity = l.operands.size();
            for (size_t i = 0; i < arity; ++i) {
                ops[i] = CSlot(l.operands[i].first);
                weights[i] = l.operands[i].second;
            }
            const tfhe::LutKernel kernel{
                std::span<const int8_t>(weights, arity), l.lo, l.table,
                l.out_bits, program.MessageModulus()};
            eval.ApplyLutInto(kernel,
                              std::span<const tfhe::LweCView>(ops, arity),
                              arena_.Slot(SlotOf(idx)), scratch);
            return;
        }
        const pasm::DecodedGate g = program.GateAt(idx);
        eval.ApplyInto(g.type, CSlot(g.in0),
                       program.ProducesLinearDomain(g.in0), CSlot(g.in1),
                       program.ProducesLinearDomain(g.in1),
                       arena_.Slot(SlotOf(idx)), scratch);
    }

    BatchItem BatchItemFor(const pasm::Program& program, uint64_t idx) {
        const pasm::DecodedGate g = program.GateAt(idx);
        return BatchItem{g.type, CSlot(g.in0),
                         program.ProducesLinearDomain(g.in0), CSlot(g.in1),
                         program.ProducesLinearDomain(g.in1),
                         arena_.Slot(SlotOf(idx))};
    }

    std::vector<C> Harvest(const pasm::Program& program) const {
        std::vector<C> out;
        out.reserve(program.OutputIndices().size());
        for (uint64_t src : program.OutputIndices()) {
            C s(arena_.SampleDim());
            tfhe::LweCopyInto(CSlot(src), tfhe::ViewOf(s));
            out.push_back(std::move(s));
        }
        return out;
    }

    /** Copy of the ciphertext in `idx`'s slot (checkpoint snapshot). */
    C CopyValue(uint64_t idx) const {
        C s(arena_.SampleDim());
        tfhe::LweCopyInto(CSlot(idx), tfhe::ViewOf(s));
        return s;
    }
    /** Writes a checkpointed ciphertext back into `idx`'s slab slot. */
    void RestoreValue(uint64_t idx, const C& value) {
        tfhe::LweCopyInto(tfhe::ViewOf(value), arena_.Slot(SlotOf(idx)));
    }
    /** Arena planes carry digits inside the ciphertexts themselves. */
    bool HasDigits() const { return false; }
    uint8_t DigitOf(uint64_t) const { return 0; }
    void RestoreDigit(uint64_t, uint8_t) {}

    size_t PlaneBytes() const { return arena_.ByteSize(); }

    static size_t RequiredBytes(const pasm::Program& program,
                                const std::vector<C>& inputs,
                                bool use_plan = true) {
        const pasm::MemoryPlan* plan = use_plan ? program.Plan() : nullptr;
        const uint64_t slots = plan ? plan->num_slots
                                    : program.FirstGateIndex() +
                                          program.NumGates();
        return CiphertextArena::BytesFor(slots,
                                         inputs.empty() ? 0 : inputs[0].N());
    }

  private:
    uint64_t SlotOf(uint64_t idx) const {
        return plan_ != nullptr ? plan_->slot_of[idx] : idx;
    }
    tfhe::LweCView CSlot(uint64_t idx) const {
        return std::as_const(arena_).Slot(SlotOf(idx));
    }

    const pasm::MemoryPlan* plan_ = nullptr;  ///< Borrowed from the program.
    CiphertextArena arena_;
};

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_ARENA_H
