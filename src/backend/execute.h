/**
 * @file
 * backend::Execute — the single documented entry point for functional
 * program execution.
 *
 * The repo grew three functional paths (RunProgram, RunProgramThreaded,
 * Executor::Run) with three call conventions. Execute unifies them behind
 * one options struct; interpreter.h documents exactly which path each
 * option combination selects. The underlying entry points remain public
 * (tests and ablation benchmarks compare them directly), but application
 * code should go through Execute.
 */
#ifndef PYTFHE_BACKEND_EXECUTE_H
#define PYTFHE_BACKEND_EXECUTE_H

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/executor.h"
#include "backend/interpreter.h"

namespace pytfhe::backend {

/** Which functional execution substrate Execute dispatches to. */
enum class ExecMode {
    /** num_threads == 1 -> sequential, else dependency counting. */
    kAuto,
    /** In-order sequential interpretation (RunProgram). */
    kSequential,
    /** Per-wave barrier threads (RunProgramThreaded); legacy reference. */
    kWaveBarrier,
    /** Persistent-pool dependency counting (Executor::Run). */
    kDependencyCounting,
};

/**
 * Options for one Execute call. `executor` optionally names a caller-owned
 * persistent Executor whose worker pool the run reuses (recommended for
 * repeated runs — a null executor makes the dependency-counting path spin
 * up and tear down a transient pool per call). `control` carries the
 * cooperative deadline/cancel token; the wave-barrier path predates
 * RunControl and rejects an engaged control with std::invalid_argument.
 * `fault` optionally names a FaultInjector (fault.h) plus the (job,
 * attempt) identity of this execution; every path honors it, and a
 * disengaged hook costs one branch per gate.
 */
struct ExecOptions {
    int32_t num_threads = 1;
    ExecMode mode = ExecMode::kAuto;
    Executor* executor = nullptr;
    RunControl control;
    FaultHook fault;
    /**
     * Maximum simultaneously ready gates fused into one batched bootstrap
     * kernel call (executor.h; evaluators opt in via ApplyBatch — others
     * run the batch gate-by-gate). 1 disables batching. batch_size > 1
     * routes even single-threaded runs through the dependency-counting
     * executor, since only its ready set exposes batchable groups; outputs
     * stay bit-identical to the sequential path. The wave-barrier legacy
     * path ignores batching and rejects batch_size > 1.
     */
    int32_t batch_size = 1;
    /**
     * Checkpoint/resume (checkpoint.h). With a non-null caller-owned
     * `checkpoint_store`, a run that finds a valid record there restores
     * the snapshot and executes only the gates past the cut — on every
     * path; a corrupt or mismatched record is cleared, counted, and the
     * run re-executes from scratch. Capture (`checkpoint` policy) runs on
     * the sequential path, which owns an ordinal quiesce point by
     * construction; threaded paths consume checkpoints but do not take
     * them — the serving executor is the concurrent producer. The store
     * is left intact after a successful run; clearing it is the caller's
     * retry-loop decision.
     */
    CheckpointPolicy checkpoint;
    JobCheckpoint* checkpoint_store = nullptr;
    CheckpointRunStats* checkpoint_stats = nullptr;
};

/**
 * Executes `program` over `inputs` with `eval`, dispatching per `options`
 * (see ExecMode and the path table in interpreter.h). All paths produce
 * bit-identical outputs. Throws std::invalid_argument on malformed
 * arguments, CancelledError / DeadlineExceededError on control aborts,
 * and GateExecutionError when a gate evaluation throws (every path fails
 * the run cleanly — worker threads are joined, pools stay reusable).
 */
template <typename Evaluator>
std::vector<typename Evaluator::Ciphertext> Execute(
    const pasm::Program& program, Evaluator& eval,
    const std::vector<typename Evaluator::Ciphertext>& inputs,
    const ExecOptions& options = {}) {
    using C = typename Evaluator::Ciphertext;
    if (options.batch_size < 1)
        throw std::invalid_argument("Execute: batch_size must be >= 1, got " +
                                    std::to_string(options.batch_size));
    const bool sequential =
        options.mode == ExecMode::kSequential ||
        (options.mode == ExecMode::kAuto && options.num_threads == 1 &&
         options.batch_size <= 1);
    if (sequential) {
        if (options.checkpoint_store != nullptr)
            return RunProgramCheckpointed(
                program, eval, inputs, options.checkpoint,
                options.checkpoint_store, options.control, options.fault,
                options.checkpoint_stats);
        return RunProgram(program, eval, inputs, options.control,
                          options.fault);
    }
    // Threaded paths consume a stored checkpoint (decode + verify here,
    // restore inside the dispatcher) but never capture one.
    std::optional<DecodedCheckpoint<C>> resume;
    if (options.checkpoint_store != nullptr &&
        !options.checkpoint_store->Empty()) {
        if constexpr (CiphertextCodec<C>::kSupported) {
            std::string error;
            resume = DecodeCheckpoint<C>(
                options.checkpoint_store->record, ProgramFingerprint(program),
                program.FirstGateIndex() + program.NumGates(), &error);
            if (resume && !CutValidForProgram(resume->cut, program))
                resume.reset();
            if (resume) {
                if (options.checkpoint_stats) {
                    ++options.checkpoint_stats->resumes;
                    options.checkpoint_stats->gates_resumed +=
                        resume->gates_completed;
                }
            } else {
                options.checkpoint_store->Clear();
                if (options.checkpoint_stats)
                    ++options.checkpoint_stats->corrupt_discarded;
            }
        } else {
            options.checkpoint_store->Clear();
        }
    }
    const DecodedCheckpoint<C>* resume_ptr = resume ? &*resume : nullptr;
    if (options.mode == ExecMode::kWaveBarrier) {
        if (options.control.Engaged())
            throw std::invalid_argument(
                "Execute: the wave-barrier path does not support "
                "RunControl; use kDependencyCounting or kSequential");
        if (options.batch_size > 1)
            throw std::invalid_argument(
                "Execute: the wave-barrier path does not support "
                "batching; use kDependencyCounting");
        return RunProgramThreaded(program, eval, inputs,
                                  options.num_threads, options.fault,
                                  resume_ptr);
    }
    if (options.executor != nullptr)
        return options.executor->Run(program, eval, inputs,
                                     options.num_threads, options.control,
                                     options.fault, options.batch_size,
                                     resume_ptr);
    Executor transient;
    return transient.Run(program, eval, inputs, options.num_threads,
                         options.control, options.fault, options.batch_size,
                         resume_ptr);
}

}  // namespace pytfhe::backend

#endif  // PYTFHE_BACKEND_EXECUTE_H
