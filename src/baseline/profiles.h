/**
 * @file
 * Baseline framework models: reimplemented lowering pipelines with each
 * competitor's documented handicaps (Sections III-B and V of the paper).
 *
 * The paper compares PyTFHE with Google Transpiler, Cingulata, and E3 on
 * the same MNIST_S model and estimates the competitors' runtimes as
 * gate count / single-core throughput (footnote 1). This module does the
 * same: each profile drives the shared MNIST compiler with the framework's
 * limitations, producing a netlist whose gate count stands in for that
 * framework's output.
 *
 * Handicap mapping (paper section -> knob):
 *  - Cingulata: integer DSL, no gate-level/boolean optimization (V-C)
 *      -> basic gate set, no CSE, no NOT absorption; DSL-level constant
 *         folding retained; reshape folded to wiring (V-C says all
 *         non-Transpiler frameworks do this).
 *  - E3: "only supports bits and 8-bit integers and hardcodes the gates"
 *      -> like Cingulata, but arithmetic instantiates the full hardcoded
 *         gate templates (no constant folding inside multipliers) and all
 *         widths round up to multiples of 8.
 *  - Transpiler: HLS from C in total ordering; "restricted to C native
 *      data types"; "still emitted gates for the Flatten layer" (V-C)
 *      -> 16-bit C-style arithmetic, weights treated as runtime function
 *         arguments (not foldable by XLS), copy gates for Flatten, basic
 *         gate set, no cross-statement CSE.
 */
#ifndef PYTFHE_BASELINE_PROFILES_H
#define PYTFHE_BASELINE_PROFILES_H

#include <string>

#include "circuit/builder.h"

namespace pytfhe::baseline {

/** Lowering configuration of one framework. */
struct Profile {
    std::string name;
    circuit::BuilderOptions builder;
    int32_t value_bits = 8;   ///< Activation width.
    int32_t frac_bits = 4;    ///< Fixed-point fraction bits.
    int32_t accum_extra = 8;  ///< Extra accumulator bits.
    bool weights_as_inputs = false;  ///< Weights opaque to the compiler.
    bool flatten_emits_copies = false;
    bool byte_aligned = false;  ///< Round widths up to multiples of 8.
    /** Hardcoded arithmetic templates: products are computed at full
     *  double width before truncation (E3's fixed gate templates). */
    bool full_width_products = false;
};

/** PyTFHE itself, through the same compiler (for apples-to-apples). */
Profile PyTfheProfile();
Profile CingulataProfile();
Profile E3Profile();
Profile TranspilerProfile();

}  // namespace pytfhe::baseline

#endif  // PYTFHE_BASELINE_PROFILES_H
