#include "baseline/profiles.h"

namespace pytfhe::baseline {

Profile PyTfheProfile() {
    Profile p;
    p.name = "PyTFHE";
    // Full optimization: hash-consing CSE, constant folding, the complete
    // TFHE gate set, wiring-only reshape.
    p.builder = circuit::BuilderOptions{};
    return p;
}

Profile CingulataProfile() {
    Profile p;
    p.name = "Cingulata";
    p.builder.fold_constants = true;  // DSL-level plaintext folding.
    p.builder.cse = false;            // No gate-level optimization.
    p.builder.absorb_not = false;
    p.builder.basic_gates_only = true;
    return p;
}

Profile E3Profile() {
    Profile p;
    p.name = "E3";
    // DSL-level plaintext folding exists, but arithmetic instantiates
    // hardcoded full-width templates and there is no gate-level cleanup.
    p.builder.fold_constants = true;
    p.builder.cse = false;
    p.builder.absorb_not = false;
    p.builder.basic_gates_only = true;
    p.byte_aligned = true;  // Bits and 8-bit integers only.
    // Byte-only types force the next multi-word accumulator size (three
    // 8-bit words) once products exceed 16 bits.
    p.accum_extra = 16;
    return p;
}

Profile TranspilerProfile() {
    Profile p;
    p.name = "Transpiler";
    p.builder.fold_constants = true;  // XLS folds literals...
    p.builder.cse = false;            // ...but not across statements.
    p.builder.absorb_not = false;
    p.builder.basic_gates_only = true;
    p.value_bits = 16;  // C native short; no sub-byte types.
    p.byte_aligned = true;
    p.weights_as_inputs = true;  // Weights are function parameters in C.
    p.flatten_emits_copies = true;  // Section V-C observation.
    return p;
}

}  // namespace pytfhe::baseline
