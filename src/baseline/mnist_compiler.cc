#include "baseline/mnist_compiler.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "hdl/word_ops.h"

namespace pytfhe::baseline {

namespace {

using circuit::GateType;
using hdl::Bits;
using hdl::Builder;
using hdl::Signal;

int32_t Align(const Profile& p, int32_t width) {
    return p.byte_aligned ? (width + 7) / 8 * 8 : width;
}

/** Quantized weight in [-2^(w-1), 2^(w-1)) at frac_bits of scale. */
int64_t QuantWeight(double v, int32_t width, int32_t frac_bits) {
    const int64_t lim = INT64_C(1) << (width - 1);
    int64_t q = std::llround(v * std::pow(2.0, frac_bits));
    return std::clamp(q, -lim, lim - 1);
}

/** Signed max via comparison + mux. */
Bits SMax(Builder& b, const Bits& x, const Bits& y) {
    return hdl::MuxBits(b, hdl::Slt(b, x, y), y, x);
}

}  // namespace

circuit::Netlist CompileMnist(const Profile& profile,
                              const MnistOptions& options) {
    Builder b(profile.builder);
    const int32_t w = Align(profile, profile.value_bits);
    const int32_t accw = Align(profile, w + profile.accum_extra);
    const int32_t frac = profile.frac_bits;
    const int64_t img = options.image;
    const int64_t conv_out = img - 2;
    const int64_t pool_out = conv_out - 2;
    const int64_t features = pool_out * pool_out;

    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    auto weight = [&](double scale) {
        return QuantWeight(dist(rng) * scale, w, frac);
    };
    auto weight_bits = [&](int64_t q) {
        if (profile.weights_as_inputs)
            return hdl::InputBits(b, w, "w");
        return hdl::ConstBits(b, static_cast<uint64_t>(q), w);
    };

    // Encrypted input image.
    std::vector<Bits> image;
    image.reserve(img * img);
    for (int64_t i = 0; i < img * img; ++i)
        image.push_back(hdl::InputBits(b, w, "px" + std::to_string(i)));

    // Conv2d(1,1,3,1): 3x3 kernel, stride 1, then rescale by frac bits.
    std::vector<int64_t> kernel;
    for (int i = 0; i < 9; ++i) kernel.push_back(weight(1.0 / 3));
    std::vector<Bits> conv;
    conv.reserve(conv_out * conv_out);
    for (int64_t y = 0; y < conv_out; ++y) {
        for (int64_t x = 0; x < conv_out; ++x) {
            // Accumulate from the first term (any real DSL does at least
            // this; it keeps the fold-free profiles from paying for
            // add-to-zero chains).
            Bits acc;
            for (int64_t ky = 0; ky < 3; ++ky) {
                for (int64_t kx = 0; kx < 3; ++kx) {
                    const Bits& px = image[(y + ky) * img + (x + kx)];
                    const Bits wv = weight_bits(kernel[ky * 3 + kx]);
                    Bits prod = hdl::SMul(
                        b, px, wv,
                        profile.full_width_products ? 2 * accw : accw);
                    if (prod.Width() > accw) prod = prod.Slice(0, accw);
                    acc = (ky == 0 && kx == 0) ? prod : hdl::Add(b, acc, prod);
                }
            }
            // Rescale back to the activation format.
            acc = hdl::AshrConst(b, acc, frac);
            conv.push_back(acc.Slice(0, w));
        }
    }

    // ReLU.
    for (Bits& v : conv)
        v = hdl::MuxBits(b, v.Msb(), hdl::ConstBits(b, 0, w), v);

    // MaxPool2d(3,1).
    std::vector<Bits> pooled;
    pooled.reserve(features);
    for (int64_t y = 0; y < pool_out; ++y) {
        for (int64_t x = 0; x < pool_out; ++x) {
            Bits m = conv[y * conv_out + x];
            for (int64_t ky = 0; ky < 3; ++ky)
                for (int64_t kx = 0; kx < 3; ++kx)
                    if (ky || kx)
                        m = SMax(b, m, conv[(y + ky) * conv_out + (x + kx)]);
            pooled.push_back(m);
        }
    }

    // Flatten: wiring for everyone except the Transpiler model, which
    // emits a copy gate per bit (Section V-C).
    if (profile.flatten_emits_copies) {
        for (Bits& v : pooled)
            for (Signal& s : v.bits)
                s = b.netlist().AddGate(GateType::kAnd, s, s);
    }

    // Linear(features, 10).
    for (int64_t o = 0; o < 10; ++o) {
        Bits acc;
        for (int64_t i = 0; i < features; ++i) {
            const Bits wv = weight_bits(weight(0.5));
            Bits prod = hdl::SMul(
                b, pooled[i], wv,
                profile.full_width_products ? 2 * accw : accw);
            if (prod.Width() > accw) prod = prod.Slice(0, accw);
            acc = (i == 0) ? prod : hdl::Add(b, acc, prod);
        }
        hdl::OutputBits(b, acc, "logit" + std::to_string(o));
    }
    return std::move(b.netlist());
}

}  // namespace pytfhe::baseline
