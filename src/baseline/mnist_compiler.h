/**
 * @file
 * The shared quantized-MNIST compiler used for cross-framework comparison
 * (Figs. 12-14, Table IV).
 *
 * All four frameworks (PyTFHE and the three baseline models) compile the
 * same MNIST_S computation — Conv2d(1,1,3,1), ReLU, MaxPool2d(3,1),
 * Flatten, Linear(n,10) — over fixed-point integers, differing only by
 * their Profile. Identical weights (derived from the seed) are used so the
 * comparison isolates lowering quality.
 */
#ifndef PYTFHE_BASELINE_MNIST_COMPILER_H
#define PYTFHE_BASELINE_MNIST_COMPILER_H

#include "baseline/profiles.h"
#include "circuit/netlist.h"

namespace pytfhe::baseline {

struct MnistOptions {
    int64_t image = 28;  ///< Input image side.
    uint64_t seed = 1;   ///< Weight derivation seed (shared by frameworks).
};

/** Compiles MNIST_S under a framework profile. */
circuit::Netlist CompileMnist(const Profile& profile,
                              const MnistOptions& options = {});

}  // namespace pytfhe::baseline

#endif  // PYTFHE_BASELINE_MNIST_COMPILER_H
