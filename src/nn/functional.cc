#include "nn/functional.h"

#include <cassert>

#include "nn/reference.h"

namespace pytfhe::nn {

namespace {

using BinOp = Value (*)(Builder&, const Value&, const Value&);

Tensor Elementwise(Builder& b, const Tensor& x, const Tensor& y, BinOp op) {
    assert(x.shape() == y.shape());
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        out.push_back(op(b, x.At(i), y.At(i)));
    return Tensor(x.shape(), std::move(out));
}

using PredOp = Signal (*)(Builder&, const Value&, const Value&);

Tensor ElementwisePred(Builder& b, const Tensor& x, const Tensor& y,
                       PredOp op) {
    assert(x.shape() == y.shape());
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        out.push_back(Value{DType::UInt(1),
                            hdl::Bits({op(b, x.At(i), y.At(i))})});
    return Tensor(x.shape(), std::move(out));
}

/** Balanced reduction of a list of values. */
Value TreeReduce(Builder& b, std::vector<Value> vals, BinOp op) {
    assert(!vals.empty());
    while (vals.size() > 1) {
        std::vector<Value> next;
        next.reserve((vals.size() + 1) / 2);
        for (size_t i = 0; i + 1 < vals.size(); i += 2)
            next.push_back(op(b, vals[i], vals[i + 1]));
        if (vals.size() % 2) next.push_back(vals.back());
        vals = std::move(next);
    }
    return vals[0];
}

}  // namespace

Tensor Add(Builder& b, const Tensor& x, const Tensor& y) {
    return Elementwise(b, x, y, hdl::VAdd);
}
Tensor Sub(Builder& b, const Tensor& x, const Tensor& y) {
    return Elementwise(b, x, y, hdl::VSub);
}
Tensor Mul(Builder& b, const Tensor& x, const Tensor& y) {
    return Elementwise(b, x, y, hdl::VMul);
}
Tensor Div(Builder& b, const Tensor& x, const Tensor& y) {
    return Elementwise(b, x, y, hdl::VDiv);
}

Tensor AddScalar(Builder& b, const Tensor& x, double c) {
    const Value cv = hdl::ConstValue(b, x.dtype(), c);
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        out.push_back(hdl::VAdd(b, x.At(i), cv));
    return Tensor(x.shape(), std::move(out));
}

Tensor MulScalar(Builder& b, const Tensor& x, double c) {
    const Value cv = hdl::ConstValue(b, x.dtype(), c);
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        out.push_back(hdl::VMul(b, x.At(i), cv));
    return Tensor(x.shape(), std::move(out));
}

Tensor CmpEq(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VEq);
}
Tensor CmpNe(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VNe);
}
Tensor CmpLt(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VLt);
}
Tensor CmpLe(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VLe);
}
Tensor CmpGt(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VGt);
}
Tensor CmpGe(Builder& b, const Tensor& x, const Tensor& y) {
    return ElementwisePred(b, x, y, hdl::VGe);
}

Tensor MatMul(Builder& b, const Tensor& x, const Tensor& y) {
    assert(x.Rank() == 2 && y.Rank() == 2 && x.Dim(1) == y.Dim(0));
    const int64_t m = x.Dim(0), k = x.Dim(1), n = y.Dim(1);
    std::vector<Value> out;
    out.reserve(m * n);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            std::vector<Value> terms;
            terms.reserve(k);
            for (int64_t p = 0; p < k; ++p)
                terms.push_back(
                    hdl::VMul(b, x.At(i * k + p), y.At(p * n + j)));
            out.push_back(TreeReduce(b, std::move(terms), hdl::VAdd));
        }
    }
    return Tensor({m, n}, std::move(out));
}

Value Dot(Builder& b, const Tensor& x, const Tensor& y) {
    assert(x.Rank() == 1 && x.shape() == y.shape());
    std::vector<Value> terms;
    terms.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        terms.push_back(hdl::VMul(b, x.At(i), y.At(i)));
    return TreeReduce(b, std::move(terms), hdl::VAdd);
}

Value Sum(Builder& b, const Tensor& x) {
    return TreeReduce(b, x.values(), hdl::VAdd);
}
Value Prod(Builder& b, const Tensor& x) {
    return TreeReduce(b, x.values(), hdl::VMul);
}
Value MaxVal(Builder& b, const Tensor& x) {
    return TreeReduce(b, x.values(), hdl::VMax);
}
Value MinVal(Builder& b, const Tensor& x) {
    return TreeReduce(b, x.values(), hdl::VMin);
}

namespace {

Value ArgExtreme(Builder& b, const Tensor& x, bool max) {
    assert(x.Rank() == 1 && x.Numel() >= 1);
    int32_t idx_bits = 1;
    while ((INT64_C(1) << idx_bits) < x.Numel()) ++idx_bits;
    const DType idx_t = DType::UInt(idx_bits);

    Value best = x.At(0);
    Value best_idx = hdl::ConstValue(b, idx_t, 0);
    for (int64_t i = 1; i < x.Numel(); ++i) {
        // Strict comparison keeps the first extreme on ties.
        const Signal better = max ? hdl::VGt(b, x.At(i), best)
                                  : hdl::VLt(b, x.At(i), best);
        best = hdl::VMux(b, better, x.At(i), best);
        best_idx = hdl::VMux(b, better,
                             hdl::ConstValue(b, idx_t, static_cast<double>(i)),
                             best_idx);
    }
    return best_idx;
}

}  // namespace

Value ArgMax(Builder& b, const Tensor& x) { return ArgExtreme(b, x, true); }
Value ArgMin(Builder& b, const Tensor& x) { return ArgExtreme(b, x, false); }

Tensor Relu(Builder& b, const Tensor& x) {
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i)
        out.push_back(hdl::VRelu(b, x.At(i)));
    return Tensor(x.shape(), std::move(out));
}

Tensor ExpApprox(Builder& b, const Tensor& x) {
    assert(x.dtype().IsFloat());
    const auto& segs = reference::PwlExpSegments();
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i) {
        const Value& v = x.At(i);
        // Start below the polyline (0), then overwrite segment by segment:
        // the last segment whose lower knot is <= x wins.
        Value y = hdl::ConstValue(b, v.dtype, 0.0);
        for (const auto& s : segs) {
            const Value lo = hdl::ConstValue(b, v.dtype, s.lo);
            const Signal in_range = hdl::VGe(b, v, lo);
            Value line = hdl::VMul(b, v, hdl::ConstValue(b, v.dtype, s.slope));
            line = hdl::VAdd(b, line, hdl::ConstValue(b, v.dtype, s.offset));
            y = hdl::VMux(b, in_range, line, y);
        }
        // x >= 0 clamps to 1 (inputs are max-subtracted, so x <= 0).
        const Signal nonneg =
            hdl::VGe(b, v, hdl::ConstValue(b, v.dtype, 0.0));
        y = hdl::VMux(b, nonneg, hdl::ConstValue(b, v.dtype, 1.0), y);
        out.push_back(y);
    }
    return Tensor(x.shape(), std::move(out));
}

Tensor SigmoidApprox(Builder& b, const Tensor& x) {
    assert(x.dtype().IsFloat());
    const auto& segs = reference::PwlSigmoidSegments();
    std::vector<Value> out;
    out.reserve(x.Numel());
    for (int64_t i = 0; i < x.Numel(); ++i) {
        const Value& v = x.At(i);
        Value y = hdl::ConstValue(b, v.dtype, 0.0);
        for (const auto& s : segs) {
            const Value lo = hdl::ConstValue(b, v.dtype, s.lo);
            const Signal in_range = hdl::VGe(b, v, lo);
            Value line = hdl::VMul(b, v, hdl::ConstValue(b, v.dtype, s.slope));
            line = hdl::VAdd(b, line, hdl::ConstValue(b, v.dtype, s.offset));
            y = hdl::VMux(b, in_range, line, y);
        }
        const Signal above = hdl::VGe(
            b, v, hdl::ConstValue(b, v.dtype, segs.back().hi));
        y = hdl::VMux(b, above, hdl::ConstValue(b, v.dtype, 1.0), y);
        out.push_back(y);
    }
    return Tensor(x.shape(), std::move(out));
}

Tensor TanhApprox(Builder& b, const Tensor& x) {
    Tensor doubled = MulScalar(b, x, 2.0);
    Tensor sig = SigmoidApprox(b, doubled);
    return AddScalar(b, MulScalar(b, sig, 2.0), -1.0);
}

Tensor Softmax(Builder& b, const Tensor& x) {
    assert(x.Rank() == 2 && x.dtype().IsFloat());
    const int64_t rows = x.Dim(0), cols = x.Dim(1);
    std::vector<Value> out(rows * cols);
    for (int64_t r = 0; r < rows; ++r) {
        std::vector<Value> row(x.values().begin() + r * cols,
                               x.values().begin() + (r + 1) * cols);
        const Value mx = TreeReduce(b, row, hdl::VMax);
        std::vector<Value> shifted;
        shifted.reserve(cols);
        for (int64_t c = 0; c < cols; ++c)
            shifted.push_back(hdl::VSub(b, x.At(r * cols + c), mx));
        Tensor exps = ExpApprox(
            b, Tensor({cols}, std::move(shifted)));
        const Value total = Sum(b, exps);
        for (int64_t c = 0; c < cols; ++c)
            out[r * cols + c] = hdl::VDiv(b, exps.At(c), total);
    }
    return Tensor(x.shape(), std::move(out));
}

}  // namespace pytfhe::nn
