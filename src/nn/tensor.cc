#include "nn/tensor.h"

#include <cassert>
#include <sstream>

namespace pytfhe::nn {

int64_t NumElements(const Shape& shape) {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
}

std::string ShapeToString(const Shape& shape) {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        os << (i ? "," : "") << shape[i];
    os << "]";
    return os.str();
}

Tensor::Tensor(Shape shape, std::vector<Value> values)
    : shape_(std::move(shape)), values_(std::move(values)) {
    assert(NumElements(shape_) == static_cast<int64_t>(values_.size()));
}

Tensor Tensor::Input(Builder& b, const DType& t, Shape shape,
                     const std::string& name) {
    const int64_t n = NumElements(shape);
    std::vector<Value> values;
    values.reserve(n);
    for (int64_t i = 0; i < n; ++i)
        values.push_back(
            hdl::InputValue(b, t, name + "." + std::to_string(i)));
    return Tensor(std::move(shape), std::move(values));
}

Tensor Tensor::FromData(Builder& b, const DType& t, Shape shape,
                        const std::vector<double>& data) {
    assert(NumElements(shape) == static_cast<int64_t>(data.size()));
    std::vector<Value> values;
    values.reserve(data.size());
    for (double d : data) values.push_back(hdl::ConstValue(b, t, d));
    return Tensor(std::move(shape), std::move(values));
}

Tensor Tensor::Full(Builder& b, const DType& t, Shape shape, double value) {
    const int64_t n = NumElements(shape);
    return FromData(b, t, std::move(shape), std::vector<double>(n, value));
}

int64_t Tensor::FlatIndex(const std::vector<int64_t>& index) const {
    assert(index.size() == shape_.size());
    int64_t flat = 0;
    for (size_t i = 0; i < index.size(); ++i) {
        assert(index[i] >= 0 && index[i] < shape_[i]);
        flat = flat * shape_[i] + index[i];
    }
    return flat;
}

Tensor Tensor::Reshape(const Shape& new_shape) const {
    assert(NumElements(new_shape) == Numel());
    return Tensor(new_shape, values_);
}

Tensor Tensor::Transpose(size_t dim0, size_t dim1) const {
    assert(dim0 < Rank() && dim1 < Rank());
    Shape new_shape = shape_;
    std::swap(new_shape[dim0], new_shape[dim1]);
    std::vector<Value> out(values_.size());
    // Walk the destination in row-major order, reading the source with the
    // two dimensions swapped.
    std::vector<int64_t> idx(Rank(), 0);
    for (int64_t flat = 0; flat < Numel(); ++flat) {
        std::vector<int64_t> src = idx;
        std::swap(src[dim0], src[dim1]);
        out[flat] = values_[FlatIndex(src)];
        // Increment the multi-index over new_shape.
        for (int64_t d = static_cast<int64_t>(Rank()) - 1; d >= 0; --d) {
            if (++idx[d] < new_shape[d]) break;
            idx[d] = 0;
        }
    }
    return Tensor(std::move(new_shape), std::move(out));
}

Tensor Tensor::Pad2d(Builder& b, int64_t pad) const {
    assert(Rank() >= 2);
    const size_t hd = Rank() - 2, wd = Rank() - 1;
    const int64_t h = shape_[hd], w = shape_[wd];
    Shape new_shape = shape_;
    new_shape[hd] = h + 2 * pad;
    new_shape[wd] = w + 2 * pad;
    const int64_t outer = Numel() / (h * w);
    const Value zero = hdl::ConstValue(b, dtype(), 0.0);
    std::vector<Value> out;
    out.reserve(NumElements(new_shape));
    for (int64_t o = 0; o < outer; ++o) {
        for (int64_t y = 0; y < h + 2 * pad; ++y) {
            for (int64_t x = 0; x < w + 2 * pad; ++x) {
                const int64_t sy = y - pad, sx = x - pad;
                if (sy < 0 || sy >= h || sx < 0 || sx >= w) {
                    out.push_back(zero);
                } else {
                    out.push_back(values_[(o * h + sy) * w + sx]);
                }
            }
        }
    }
    return Tensor(std::move(new_shape), std::move(out));
}

void Tensor::Output(Builder& b, const std::string& name) const {
    for (int64_t i = 0; i < Numel(); ++i)
        hdl::OutputValue(b, values_[i], name + "." + std::to_string(i));
}

}  // namespace pytfhe::nn
