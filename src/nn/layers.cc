#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <random>

#include "nn/reference.h"

namespace pytfhe::nn {

namespace {

using reference::OutDim;

std::vector<double> RandomWeights(uint64_t seed, size_t count, double scale) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-scale, scale);
    std::vector<double> w(count);
    for (auto& x : w) x = dist(rng);
    return w;
}

/** Quantizes a weight vector the way ConstValue will. */
std::vector<double> QuantizeAll(const std::vector<double>& w,
                                const DType& t) {
    std::vector<double> q(w.size());
    for (size_t i = 0; i < w.size(); ++i) q[i] = t.Quantize(w[i]);
    return q;
}

/** Balanced summation of circuit values. */
Value SumTree(Builder& b, std::vector<Value> terms) {
    assert(!terms.empty());
    while (terms.size() > 1) {
        std::vector<Value> next;
        for (size_t i = 0; i + 1 < terms.size(); i += 2)
            next.push_back(hdl::VAdd(b, terms[i], terms[i + 1]));
        if (terms.size() % 2) next.push_back(terms.back());
        terms = std::move(next);
    }
    return terms[0];
}

}  // namespace

// ---------------------------------------------------------------- Sequential

Tensor Sequential::Forward(Builder& b, const Tensor& input) const {
    Tensor t = input;
    for (const auto& m : modules_) t = m->Forward(b, t);
    return t;
}

std::vector<double> Sequential::RefForward(const std::vector<double>& input,
                                           Shape& shape,
                                           const DType& dtype) const {
    std::vector<double> v = input;
    for (const auto& m : modules_) v = m->RefForward(v, shape, dtype);
    return v;
}

// -------------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t stride, int64_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(out_channels * in_channels * kernel_size * kernel_size, 0.0),
      bias_(out_channels, 0.0) {
    InitRandom(0xC017);
}

void Conv2d::InitRandom(uint64_t seed) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(
                                   in_channels_ * kernel_ * kernel_));
    weight_ = RandomWeights(seed, weight_.size(), scale);
    bias_ = RandomWeights(seed ^ 0xB1A5, bias_.size(), scale);
}

void Conv2d::SetWeights(std::vector<double> weight, std::vector<double> bias) {
    assert(weight.size() == weight_.size() && bias.size() == bias_.size());
    weight_ = std::move(weight);
    bias_ = std::move(bias);
}

Tensor Conv2d::Forward(Builder& b, const Tensor& raw_input) const {
    assert(raw_input.Rank() == 3 && raw_input.Dim(0) == in_channels_);
    const Tensor input =
        padding_ > 0 ? raw_input.Pad2d(b, padding_) : raw_input;
    const DType& t = input.dtype();
    const int64_t h = input.Dim(1), w = input.Dim(2);
    const int64_t oh = OutDim(h, kernel_, stride_);
    const int64_t ow = OutDim(w, kernel_, stride_);

    std::vector<Value> out;
    out.reserve(out_channels_ * oh * ow);
    for (int64_t f = 0; f < out_channels_; ++f) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                std::vector<Value> terms;
                terms.push_back(hdl::ConstValue(b, t, bias_[f]));
                for (int64_t c = 0; c < in_channels_; ++c) {
                    for (int64_t ky = 0; ky < kernel_; ++ky) {
                        for (int64_t kx = 0; kx < kernel_; ++kx) {
                            const Value& x = input.At(
                                {c, oy * stride_ + ky, ox * stride_ + kx});
                            const Value wv = hdl::ConstValue(
                                b, t,
                                weight_[((f * in_channels_ + c) * kernel_ +
                                         ky) * kernel_ + kx]);
                            terms.push_back(hdl::VMul(b, x, wv));
                        }
                    }
                }
                out.push_back(SumTree(b, std::move(terms)));
            }
        }
    }
    return Tensor({out_channels_, oh, ow}, std::move(out));
}

std::vector<double> Conv2d::RefForward(const std::vector<double>& input,
                                       Shape& shape,
                                       const DType& dtype) const {
    assert(shape.size() == 3 && shape[0] == in_channels_);
    // Zero-pad the reference input the same way the circuit does.
    std::vector<double> padded = input;
    int64_t h = shape[1], w = shape[2];
    if (padding_ > 0) {
        const int64_t ph = h + 2 * padding_, pw = w + 2 * padding_;
        padded.assign(shape[0] * ph * pw, 0.0);
        for (int64_t c = 0; c < shape[0]; ++c)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t x = 0; x < w; ++x)
                    padded[(c * ph + y + padding_) * pw + x + padding_] =
                        input[(c * h + y) * w + x];
        h = ph;
        w = pw;
    }
    auto out = reference::Conv2d(padded, shape[0], h, w,
                                 QuantizeAll(weight_, dtype), out_channels_,
                                 kernel_, kernel_, stride_,
                                 QuantizeAll(bias_, dtype));
    shape = {out_channels_, OutDim(h, kernel_, stride_),
             OutDim(w, kernel_, stride_)};
    return out;
}

// -------------------------------------------------------------------- Conv1d

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t stride)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      weight_(out_channels * in_channels * kernel_size, 0.0),
      bias_(out_channels, 0.0) {
    InitRandom(0xC011);
}

void Conv1d::InitRandom(uint64_t seed) {
    const double scale =
        1.0 / std::sqrt(static_cast<double>(in_channels_ * kernel_));
    weight_ = RandomWeights(seed, weight_.size(), scale);
    bias_ = RandomWeights(seed ^ 0xB1A5, bias_.size(), scale);
}

void Conv1d::SetWeights(std::vector<double> weight, std::vector<double> bias) {
    assert(weight.size() == weight_.size() && bias.size() == bias_.size());
    weight_ = std::move(weight);
    bias_ = std::move(bias);
}

Tensor Conv1d::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 2 && input.Dim(0) == in_channels_);
    const DType& t = input.dtype();
    const int64_t l = input.Dim(1);
    const int64_t ol = OutDim(l, kernel_, stride_);

    std::vector<Value> out;
    out.reserve(out_channels_ * ol);
    for (int64_t f = 0; f < out_channels_; ++f) {
        for (int64_t ox = 0; ox < ol; ++ox) {
            std::vector<Value> terms;
            terms.push_back(hdl::ConstValue(b, t, bias_[f]));
            for (int64_t c = 0; c < in_channels_; ++c) {
                for (int64_t kx = 0; kx < kernel_; ++kx) {
                    const Value& x = input.At({c, ox * stride_ + kx});
                    const Value wv = hdl::ConstValue(
                        b, t, weight_[(f * in_channels_ + c) * kernel_ + kx]);
                    terms.push_back(hdl::VMul(b, x, wv));
                }
            }
            out.push_back(SumTree(b, std::move(terms)));
        }
    }
    return Tensor({out_channels_, ol}, std::move(out));
}

std::vector<double> Conv1d::RefForward(const std::vector<double>& input,
                                       Shape& shape,
                                       const DType& dtype) const {
    assert(shape.size() == 2 && shape[0] == in_channels_);
    auto out = reference::Conv1d(input, shape[0], shape[1],
                                 QuantizeAll(weight_, dtype), out_channels_,
                                 kernel_, stride_, QuantizeAll(bias_, dtype));
    shape = {out_channels_, OutDim(shape[1], kernel_, stride_)};
    return out;
}

// -------------------------------------------------------------------- Linear

Linear::Linear(int64_t in_features, int64_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(in_features * out_features, 0.0),
      bias_(out_features, 0.0) {
    InitRandom(0x11EA);
}

void Linear::InitRandom(uint64_t seed) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(in_features_));
    weight_ = RandomWeights(seed, weight_.size(), scale);
    bias_ = RandomWeights(seed ^ 0xB1A5, bias_.size(), scale);
}

void Linear::SetWeights(std::vector<double> weight, std::vector<double> bias) {
    assert(weight.size() == weight_.size() && bias.size() == bias_.size());
    weight_ = std::move(weight);
    bias_ = std::move(bias);
}

Tensor Linear::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 1 && input.Dim(0) == in_features_);
    const DType& t = input.dtype();
    std::vector<Value> out;
    out.reserve(out_features_);
    for (int64_t i = 0; i < out_features_; ++i) {
        std::vector<Value> terms;
        terms.push_back(hdl::ConstValue(b, t, bias_[i]));
        for (int64_t j = 0; j < in_features_; ++j) {
            const Value wv =
                hdl::ConstValue(b, t, weight_[i * in_features_ + j]);
            terms.push_back(hdl::VMul(b, input.At(j), wv));
        }
        out.push_back(SumTree(b, std::move(terms)));
    }
    return Tensor({out_features_}, std::move(out));
}

std::vector<double> Linear::RefForward(const std::vector<double>& input,
                                       Shape& shape,
                                       const DType& dtype) const {
    assert(shape.size() == 1 && shape[0] == in_features_);
    auto out = reference::Linear(input, QuantizeAll(weight_, dtype),
                                 out_features_, in_features_,
                                 QuantizeAll(bias_, dtype));
    shape = {out_features_};
    return out;
}

// ---------------------------------------------------------------------- ReLU

Tensor ReLU::Forward(Builder& b, const Tensor& input) const {
    return Relu(b, input);
}

std::vector<double> ReLU::RefForward(const std::vector<double>& input,
                                     Shape& shape, const DType& dtype) const {
    (void)shape;
    (void)dtype;
    return reference::Relu(input);
}

// ---------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(int64_t kernel_size, int64_t stride)
    : kernel_(kernel_size), stride_(stride) {}

Tensor MaxPool2d::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 3);
    const int64_t c = input.Dim(0), h = input.Dim(1), w = input.Dim(2);
    const int64_t oh = OutDim(h, kernel_, stride_);
    const int64_t ow = OutDim(w, kernel_, stride_);
    std::vector<Value> out;
    out.reserve(c * oh * ow);
    for (int64_t ic = 0; ic < c; ++ic) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                std::vector<Value> window;
                for (int64_t ky = 0; ky < kernel_; ++ky)
                    for (int64_t kx = 0; kx < kernel_; ++kx)
                        window.push_back(input.At(
                            {ic, oy * stride_ + ky, ox * stride_ + kx}));
                while (window.size() > 1) {
                    std::vector<Value> next;
                    for (size_t i = 0; i + 1 < window.size(); i += 2)
                        next.push_back(hdl::VMax(b, window[i], window[i + 1]));
                    if (window.size() % 2) next.push_back(window.back());
                    window = std::move(next);
                }
                out.push_back(window[0]);
            }
        }
    }
    return Tensor({c, oh, ow}, std::move(out));
}

std::vector<double> MaxPool2d::RefForward(const std::vector<double>& input,
                                          Shape& shape,
                                          const DType& dtype) const {
    (void)dtype;
    auto out = reference::MaxPool2d(input, shape[0], shape[1], shape[2],
                                    kernel_, stride_);
    shape = {shape[0], OutDim(shape[1], kernel_, stride_),
             OutDim(shape[2], kernel_, stride_)};
    return out;
}

// ---------------------------------------------------------------- AvgPool2d

AvgPool2d::AvgPool2d(int64_t kernel_size, int64_t stride)
    : kernel_(kernel_size), stride_(stride) {}

Tensor AvgPool2d::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 3);
    const DType& t = input.dtype();
    const int64_t c = input.Dim(0), h = input.Dim(1), w = input.Dim(2);
    const int64_t oh = OutDim(h, kernel_, stride_);
    const int64_t ow = OutDim(w, kernel_, stride_);
    const double inv = 1.0 / static_cast<double>(kernel_ * kernel_);
    std::vector<Value> out;
    out.reserve(c * oh * ow);
    for (int64_t ic = 0; ic < c; ++ic) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                std::vector<Value> window;
                for (int64_t ky = 0; ky < kernel_; ++ky)
                    for (int64_t kx = 0; kx < kernel_; ++kx)
                        window.push_back(input.At(
                            {ic, oy * stride_ + ky, ox * stride_ + kx}));
                Value sum = SumTree(b, std::move(window));
                if (t.IsFloat()) {
                    // Multiply by the constant reciprocal.
                    out.push_back(
                        hdl::VMul(b, sum, hdl::ConstValue(b, t, inv)));
                } else {
                    // Integer/fixed: divide by the constant window size.
                    out.push_back(hdl::VDiv(
                        b, sum,
                        hdl::ConstValue(
                            b, t, static_cast<double>(kernel_ * kernel_))));
                }
            }
        }
    }
    return Tensor({c, oh, ow}, std::move(out));
}

std::vector<double> AvgPool2d::RefForward(const std::vector<double>& input,
                                          Shape& shape,
                                          const DType& dtype) const {
    (void)dtype;
    auto out = reference::AvgPool2d(input, shape[0], shape[1], shape[2],
                                    kernel_, stride_);
    shape = {shape[0], OutDim(shape[1], kernel_, stride_),
             OutDim(shape[2], kernel_, stride_)};
    return out;
}

// ---------------------------------------------------------------- MaxPool1d

MaxPool1d::MaxPool1d(int64_t kernel_size, int64_t stride)
    : kernel_(kernel_size), stride_(stride) {}

Tensor MaxPool1d::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 2);
    const int64_t c = input.Dim(0), l = input.Dim(1);
    const int64_t ol = OutDim(l, kernel_, stride_);
    std::vector<Value> out;
    out.reserve(c * ol);
    for (int64_t ic = 0; ic < c; ++ic) {
        for (int64_t ox = 0; ox < ol; ++ox) {
            Value m = input.At({ic, ox * stride_});
            for (int64_t kx = 1; kx < kernel_; ++kx)
                m = hdl::VMax(b, m, input.At({ic, ox * stride_ + kx}));
            out.push_back(m);
        }
    }
    return Tensor({c, ol}, std::move(out));
}

std::vector<double> MaxPool1d::RefForward(const std::vector<double>& input,
                                          Shape& shape,
                                          const DType& dtype) const {
    (void)dtype;
    auto out =
        reference::MaxPool1d(input, shape[0], shape[1], kernel_, stride_);
    shape = {shape[0], OutDim(shape[1], kernel_, stride_)};
    return out;
}

// ---------------------------------------------------------------- AvgPool1d

AvgPool1d::AvgPool1d(int64_t kernel_size, int64_t stride)
    : kernel_(kernel_size), stride_(stride) {}

Tensor AvgPool1d::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 2);
    const DType& t = input.dtype();
    const int64_t c = input.Dim(0), l = input.Dim(1);
    const int64_t ol = OutDim(l, kernel_, stride_);
    std::vector<Value> out;
    out.reserve(c * ol);
    for (int64_t ic = 0; ic < c; ++ic) {
        for (int64_t ox = 0; ox < ol; ++ox) {
            std::vector<Value> window;
            for (int64_t kx = 0; kx < kernel_; ++kx)
                window.push_back(input.At({ic, ox * stride_ + kx}));
            Value sum = SumTree(b, std::move(window));
            if (t.IsFloat()) {
                out.push_back(hdl::VMul(
                    b, sum,
                    hdl::ConstValue(b, t, 1.0 / static_cast<double>(kernel_))));
            } else {
                out.push_back(hdl::VDiv(
                    b, sum,
                    hdl::ConstValue(b, t, static_cast<double>(kernel_))));
            }
        }
    }
    return Tensor({c, ol}, std::move(out));
}

std::vector<double> AvgPool1d::RefForward(const std::vector<double>& input,
                                          Shape& shape,
                                          const DType& dtype) const {
    (void)dtype;
    auto out =
        reference::AvgPool1d(input, shape[0], shape[1], kernel_, stride_);
    shape = {shape[0], OutDim(shape[1], kernel_, stride_)};
    return out;
}

// ----------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(int64_t channels, double eps)
    : channels_(channels),
      eps_(eps),
      gamma_(channels, 1.0),
      beta_(channels, 0.0),
      mean_(channels, 0.0),
      var_(channels, 1.0) {}

void BatchNorm::InitRandom(uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> g(0.5, 1.5), m(-0.5, 0.5),
        v(0.5, 2.0);
    for (int64_t c = 0; c < channels_; ++c) {
        gamma_[c] = g(rng);
        beta_[c] = m(rng);
        mean_[c] = m(rng);
        var_[c] = v(rng);
    }
}

void BatchNorm::SetStats(std::vector<double> gamma, std::vector<double> beta,
                         std::vector<double> mean, std::vector<double> var) {
    gamma_ = std::move(gamma);
    beta_ = std::move(beta);
    mean_ = std::move(mean);
    var_ = std::move(var);
}

Tensor BatchNorm::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() >= 2 && input.Dim(0) == channels_);
    const DType& t = input.dtype();
    const int64_t per_channel = input.Numel() / channels_;
    std::vector<Value> out;
    out.reserve(input.Numel());
    for (int64_t c = 0; c < channels_; ++c) {
        // The affine form folds mean/var/gamma/beta into two constants.
        const double scale = gamma_[c] / std::sqrt(var_[c] + eps_);
        const double shift = beta_[c] - mean_[c] * scale;
        const Value sv = hdl::ConstValue(b, t, scale);
        const Value hv = hdl::ConstValue(b, t, shift);
        for (int64_t i = 0; i < per_channel; ++i) {
            Value y = hdl::VMul(b, input.At(c * per_channel + i), sv);
            out.push_back(hdl::VAdd(b, y, hv));
        }
    }
    return Tensor(input.shape(), std::move(out));
}

std::vector<double> BatchNorm::RefForward(const std::vector<double>& input,
                                          Shape& shape,
                                          const DType& dtype) const {
    const int64_t per_channel =
        static_cast<int64_t>(input.size()) / channels_;
    // Quantize the folded constants exactly as Forward does.
    std::vector<double> out(input.size());
    for (int64_t c = 0; c < channels_; ++c) {
        const double scale =
            dtype.Quantize(gamma_[c] / std::sqrt(var_[c] + eps_));
        const double shift =
            dtype.Quantize(beta_[c] - mean_[c] *
                                          (gamma_[c] / std::sqrt(var_[c] + eps_)));
        for (int64_t i = 0; i < per_channel; ++i)
            out[c * per_channel + i] =
                input[c * per_channel + i] * scale + shift;
    }
    (void)shape;
    return out;
}

// ------------------------------------------------------------------- Sigmoid

Tensor Sigmoid::Forward(Builder& b, const Tensor& input) const {
    return SigmoidApprox(b, input);
}

std::vector<double> Sigmoid::RefForward(const std::vector<double>& input,
                                        Shape& shape,
                                        const DType& dtype) const {
    (void)shape;
    (void)dtype;
    std::vector<double> out(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        out[i] = reference::PwlSigmoid(input[i]);
    return out;
}

// ---------------------------------------------------------------------- Tanh

Tensor Tanh::Forward(Builder& b, const Tensor& input) const {
    return TanhApprox(b, input);
}

std::vector<double> Tanh::RefForward(const std::vector<double>& input,
                                     Shape& shape,
                                     const DType& dtype) const {
    (void)shape;
    (void)dtype;
    std::vector<double> out(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        out[i] = reference::PwlTanh(input[i]);
    return out;
}

// ------------------------------------------------------------------- Flatten

Tensor Flatten::Forward(Builder& b, const Tensor& input) const {
    (void)b;  // Pure wiring: no gates (Section V-C of the paper).
    return input.Flatten();
}

std::vector<double> Flatten::RefForward(const std::vector<double>& input,
                                        Shape& shape,
                                        const DType& dtype) const {
    (void)dtype;
    shape = {static_cast<int64_t>(input.size())};
    return input;
}

}  // namespace pytfhe::nn
