#include "nn/models.h"

namespace pytfhe::nn {

namespace {

std::shared_ptr<Sequential> MnistCnn(const MnistConfig& config,
                                     int64_t kernels) {
    const int64_t conv_out = config.image - 2;  // 3x3 conv, stride 1.
    const int64_t pool_out = conv_out - 2;      // 3x3 pool, stride 1.
    const int64_t features = kernels * pool_out * pool_out;

    auto conv = MakeModule<Conv2d>(1, kernels, 3, 1);
    auto linear = MakeModule<Linear>(features, 10);
    std::static_pointer_cast<Conv2d>(conv)->InitRandom(config.seed);
    std::static_pointer_cast<Linear>(linear)->InitRandom(config.seed ^ 0x5EED);

    return std::make_shared<Sequential>(std::vector<ModulePtr>{
        conv,
        MakeModule<ReLU>(),
        MakeModule<MaxPool2d>(3, 1),
        MakeModule<Flatten>(),
        linear,
    });
}

}  // namespace

std::shared_ptr<Sequential> MnistS(const MnistConfig& config) {
    return MnistCnn(config, 1);
}

std::shared_ptr<Sequential> MnistM(const MnistConfig& config) {
    return MnistCnn(config, 2);
}

std::shared_ptr<Sequential> MnistL(const MnistConfig& config) {
    return MnistCnn(config, 3);
}

std::shared_ptr<SelfAttention> AttentionS(uint64_t seed) {
    auto m = std::make_shared<SelfAttention>(16, 32);
    m->InitRandom(seed);
    return m;
}

std::shared_ptr<SelfAttention> AttentionL(uint64_t seed) {
    auto m = std::make_shared<SelfAttention>(16, 64);
    m->InitRandom(seed);
    return m;
}

Shape MnistInputShape(const MnistConfig& config) {
    return {1, config.image, config.image};
}

}  // namespace pytfhe::nn
