/**
 * @file
 * ChiselTorch pre-built neural network layers (Table I of the paper):
 * Conv1d/Conv2d, BatchNorm1d/2d, Linear, ReLU, MaxPool1d/2d, AvgPool1d/2d,
 * Flatten, composed with Sequential — a PyTorch-compatible module API that
 * elaborates into gate-level circuits.
 *
 * Weights are plaintext model parameters (the server knows the model; only
 * the data is encrypted). They are embedded as constants, which the
 * hash-consing builder folds aggressively — multiplying by a known weight
 * costs a fraction of a generic multiplier.
 *
 * Every module also provides RefForward, the double-precision reference
 * semantics with weights quantized exactly as the circuit quantizes them;
 * tests compare circuits against it.
 */
#ifndef PYTFHE_NN_LAYERS_H
#define PYTFHE_NN_LAYERS_H

#include <memory>
#include <string>

#include "nn/functional.h"

namespace pytfhe::nn {

/** Base class of all layers. */
class Module {
  public:
    virtual ~Module() = default;

    virtual std::string Name() const = 0;

    /** Elaborates the layer over an input tensor. */
    virtual Tensor Forward(Builder& b, const Tensor& input) const = 0;

    /**
     * Reference semantics: `shape` holds the input shape on entry and the
     * output shape on return; `dtype` tells the reference how the circuit
     * quantizes weights and activations.
     */
    virtual std::vector<double> RefForward(const std::vector<double>& input,
                                           Shape& shape,
                                           const DType& dtype) const = 0;
};

using ModulePtr = std::shared_ptr<Module>;

/** Runs sub-modules in order — the nn.Sequential container. */
class Sequential : public Module {
  public:
    explicit Sequential(std::vector<ModulePtr> modules)
        : modules_(std::move(modules)) {}

    std::string Name() const override { return "Sequential"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

    const std::vector<ModulePtr>& modules() const { return modules_; }

  private:
    std::vector<ModulePtr> modules_;
};

/** 2-D convolution: input [C,H,W] -> [F,H',W'], optional zero padding. */
class Conv2d : public Module {
  public:
    Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
           int64_t stride = 1, int64_t padding = 0);

    /** Deterministic pseudo-random weight initialization. */
    void InitRandom(uint64_t seed);
    void SetWeights(std::vector<double> weight, std::vector<double> bias);

    std::string Name() const override { return "Conv2d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
    std::vector<double> weight_;  ///< [F, C, k, k].
    std::vector<double> bias_;    ///< [F].
};

/** 1-D convolution: input [C,L] -> [F,L']. */
class Conv1d : public Module {
  public:
    Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
           int64_t stride = 1);

    void InitRandom(uint64_t seed);
    void SetWeights(std::vector<double> weight, std::vector<double> bias);

    std::string Name() const override { return "Conv1d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t in_channels_, out_channels_, kernel_, stride_;
    std::vector<double> weight_;
    std::vector<double> bias_;
};

/** Fully connected layer: [n] -> [m]. */
class Linear : public Module {
  public:
    Linear(int64_t in_features, int64_t out_features);

    void InitRandom(uint64_t seed);
    void SetWeights(std::vector<double> weight, std::vector<double> bias);

    std::string Name() const override { return "Linear"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t in_features_, out_features_;
    std::vector<double> weight_;  ///< [m, n].
    std::vector<double> bias_;    ///< [m].
};

/** Elementwise max(0, x). */
class ReLU : public Module {
  public:
    std::string Name() const override { return "ReLU"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;
};

/** Max pooling over [C,H,W]. */
class MaxPool2d : public Module {
  public:
    MaxPool2d(int64_t kernel_size, int64_t stride);
    std::string Name() const override { return "MaxPool2d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t kernel_, stride_;
};

/** Average pooling over [C,H,W] (divide by the constant window size). */
class AvgPool2d : public Module {
  public:
    AvgPool2d(int64_t kernel_size, int64_t stride);
    std::string Name() const override { return "AvgPool2d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t kernel_, stride_;
};

/** Max pooling over [C,L]. */
class MaxPool1d : public Module {
  public:
    MaxPool1d(int64_t kernel_size, int64_t stride);
    std::string Name() const override { return "MaxPool1d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t kernel_, stride_;
};

/** Average pooling over [C,L]. */
class AvgPool1d : public Module {
  public:
    AvgPool1d(int64_t kernel_size, int64_t stride);
    std::string Name() const override { return "AvgPool1d"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t kernel_, stride_;
};

/**
 * Batch normalization in inference mode: per-channel affine
 * y = x * gamma/sqrt(var+eps) + (beta - mean*gamma/sqrt(var+eps)), with the
 * scale and shift folded into constants at compile time. Covers both the
 * 1d ([C,L]) and 2d ([C,H,W]) variants — the channel is dim 0 either way.
 */
class BatchNorm : public Module {
  public:
    explicit BatchNorm(int64_t channels, double eps = 1e-5);

    void InitRandom(uint64_t seed);
    void SetStats(std::vector<double> gamma, std::vector<double> beta,
                  std::vector<double> mean, std::vector<double> var);

    std::string Name() const override { return "BatchNorm"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

  private:
    int64_t channels_;
    double eps_;
    std::vector<double> gamma_, beta_, mean_, var_;
};

/** Elementwise piecewise-linear sigmoid activation (float dtypes). */
class Sigmoid : public Module {
  public:
    std::string Name() const override { return "Sigmoid"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;
};

/** Elementwise tanh activation (float dtypes). */
class Tanh : public Module {
  public:
    std::string Name() const override { return "Tanh"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;
};

/** Collapses to a 1-D tensor: pure wiring, zero gates. */
class Flatten : public Module {
  public:
    std::string Name() const override { return "Flatten"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;
};

/** Convenience factory: make_module<Conv2d>(1, 1, 3, 1). */
template <typename T, typename... Args>
ModulePtr MakeModule(Args&&... args) {
    return std::make_shared<T>(std::forward<Args>(args)...);
}

}  // namespace pytfhe::nn

#endif  // PYTFHE_NN_LAYERS_H
