/**
 * @file
 * Self-attention (Section V-A of the paper): the key BERT component,
 * implemented with the primitive tensor operations (matmul, transpose,
 * softmax) to demonstrate that ChiselTorch supports non-native complicated
 * structures.
 */
#ifndef PYTFHE_NN_ATTENTION_H
#define PYTFHE_NN_ATTENTION_H

#include "nn/layers.h"

namespace pytfhe::nn {

/**
 * Single-head self-attention over an input of shape [seq_len, hidden]:
 *   Q = x Wq, K = x Wk, V = x Wv
 *   out = softmax(Q K^T / sqrt(hidden)) V
 * Float dtypes only (softmax needs ExpApprox and division).
 */
class SelfAttention : public Module {
  public:
    SelfAttention(int64_t seq_len, int64_t hidden);

    void InitRandom(uint64_t seed);
    void SetWeights(std::vector<double> wq, std::vector<double> wk,
                    std::vector<double> wv);

    std::string Name() const override { return "SelfAttention"; }
    Tensor Forward(Builder& b, const Tensor& input) const override;
    std::vector<double> RefForward(const std::vector<double>& input,
                                   Shape& shape,
                                   const DType& dtype) const override;

    int64_t seq_len() const { return seq_len_; }
    int64_t hidden() const { return hidden_; }

  private:
    int64_t seq_len_, hidden_;
    std::vector<double> wq_, wk_, wv_;  ///< Each [hidden, hidden].
};

}  // namespace pytfhe::nn

#endif  // PYTFHE_NN_ATTENTION_H
