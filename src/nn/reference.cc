#include "nn/reference.h"

#include <algorithm>
#include <cmath>

namespace pytfhe::nn::reference {

const std::vector<PwlSegment>& PwlExpSegments() {
    static const std::vector<PwlSegment>* segments = [] {
        const double knots[] = {-8,    -6,    -5,     -4,    -3.25, -2.5,
                                -2,    -1.5,  -1.25,  -1,    -0.75, -0.5,
                                -0.375, -0.25, -0.125, 0};
        auto* out = new std::vector<PwlSegment>();
        const int n = static_cast<int>(std::size(knots));
        for (int i = 0; i + 1 < n; ++i) {
            const double x0 = knots[i], x1 = knots[i + 1];
            const double y0 = std::exp(x0), y1 = std::exp(x1);
            const double slope = (y1 - y0) / (x1 - x0);
            out->push_back(PwlSegment{x0, x1, slope, y0 - slope * x0});
        }
        return out;
    }();
    return *segments;
}

double PwlExp(double x) {
    const auto& segs = PwlExpSegments();
    if (x < segs.front().lo) return 0.0;
    if (x >= 0.0) return 1.0;
    for (const auto& s : segs)
        if (x < s.hi) return s.slope * x + s.offset;
    return 1.0;
}

const std::vector<PwlSegment>& PwlSigmoidSegments() {
    static const std::vector<PwlSegment>* segments = [] {
        const double knots[] = {-8, -6, -4, -3, -2.25, -1.5, -1, -0.5,
                                0,  0.5, 1,  1.5, 2.25, 3,  4,  6, 8};
        auto* out = new std::vector<PwlSegment>();
        auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
        const int n = static_cast<int>(std::size(knots));
        for (int i = 0; i + 1 < n; ++i) {
            const double x0 = knots[i], x1 = knots[i + 1];
            const double y0 = sigmoid(x0), y1 = sigmoid(x1);
            const double slope = (y1 - y0) / (x1 - x0);
            out->push_back(PwlSegment{x0, x1, slope, y0 - slope * x0});
        }
        return out;
    }();
    return *segments;
}

double PwlSigmoid(double x) {
    const auto& segs = PwlSigmoidSegments();
    if (x < segs.front().lo) return 0.0;
    if (x >= segs.back().hi) return 1.0;
    for (const auto& s : segs)
        if (x < s.hi) return s.slope * x + s.offset;
    return 1.0;
}

double PwlTanh(double x) { return 2.0 * PwlSigmoid(2.0 * x) - 1.0; }

std::vector<double> Softmax(const std::vector<double>& x, int64_t rows,
                            int64_t cols) {
    std::vector<double> out(x.size());
    for (int64_t r = 0; r < rows; ++r) {
        double mx = x[r * cols];
        for (int64_t c = 1; c < cols; ++c)
            mx = std::max(mx, x[r * cols + c]);
        double sum = 0;
        for (int64_t c = 0; c < cols; ++c) {
            out[r * cols + c] = PwlExp(x[r * cols + c] - mx);
            sum += out[r * cols + c];
        }
        for (int64_t c = 0; c < cols; ++c) out[r * cols + c] /= sum;
    }
    return out;
}

std::vector<double> Conv2d(const std::vector<double>& in, int64_t c, int64_t h,
                           int64_t w, const std::vector<double>& weight,
                           int64_t f, int64_t kh, int64_t kw, int64_t stride,
                           const std::vector<double>& bias) {
    const int64_t oh = OutDim(h, kh, stride), ow = OutDim(w, kw, stride);
    std::vector<double> out(f * oh * ow, 0.0);
    for (int64_t of = 0; of < f; ++of) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                double acc = bias.empty() ? 0.0 : bias[of];
                for (int64_t ic = 0; ic < c; ++ic)
                    for (int64_t ky = 0; ky < kh; ++ky)
                        for (int64_t kx = 0; kx < kw; ++kx)
                            acc += in[(ic * h + oy * stride + ky) * w +
                                      ox * stride + kx] *
                                   weight[((of * c + ic) * kh + ky) * kw + kx];
                out[(of * oh + oy) * ow + ox] = acc;
            }
        }
    }
    return out;
}

std::vector<double> Conv1d(const std::vector<double>& in, int64_t c, int64_t l,
                           const std::vector<double>& weight, int64_t f,
                           int64_t k, int64_t stride,
                           const std::vector<double>& bias) {
    const int64_t ol = OutDim(l, k, stride);
    std::vector<double> out(f * ol, 0.0);
    for (int64_t of = 0; of < f; ++of) {
        for (int64_t ox = 0; ox < ol; ++ox) {
            double acc = bias.empty() ? 0.0 : bias[of];
            for (int64_t ic = 0; ic < c; ++ic)
                for (int64_t kx = 0; kx < k; ++kx)
                    acc += in[ic * l + ox * stride + kx] *
                           weight[(of * c + ic) * k + kx];
            out[of * ol + ox] = acc;
        }
    }
    return out;
}

std::vector<double> Linear(const std::vector<double>& in,
                           const std::vector<double>& weight, int64_t m,
                           int64_t n, const std::vector<double>& bias) {
    std::vector<double> out(m, 0.0);
    for (int64_t i = 0; i < m; ++i) {
        double acc = bias.empty() ? 0.0 : bias[i];
        for (int64_t j = 0; j < n; ++j) acc += weight[i * n + j] * in[j];
        out[i] = acc;
    }
    return out;
}

std::vector<double> MaxPool2d(const std::vector<double>& in, int64_t c,
                              int64_t h, int64_t w, int64_t k,
                              int64_t stride) {
    const int64_t oh = OutDim(h, k, stride), ow = OutDim(w, k, stride);
    std::vector<double> out(c * oh * ow);
    for (int64_t ic = 0; ic < c; ++ic)
        for (int64_t oy = 0; oy < oh; ++oy)
            for (int64_t ox = 0; ox < ow; ++ox) {
                double m = -1e300;
                for (int64_t ky = 0; ky < k; ++ky)
                    for (int64_t kx = 0; kx < k; ++kx)
                        m = std::max(m, in[(ic * h + oy * stride + ky) * w +
                                           ox * stride + kx]);
                out[(ic * oh + oy) * ow + ox] = m;
            }
    return out;
}

std::vector<double> AvgPool2d(const std::vector<double>& in, int64_t c,
                              int64_t h, int64_t w, int64_t k,
                              int64_t stride) {
    const int64_t oh = OutDim(h, k, stride), ow = OutDim(w, k, stride);
    std::vector<double> out(c * oh * ow);
    for (int64_t ic = 0; ic < c; ++ic)
        for (int64_t oy = 0; oy < oh; ++oy)
            for (int64_t ox = 0; ox < ow; ++ox) {
                double s = 0;
                for (int64_t ky = 0; ky < k; ++ky)
                    for (int64_t kx = 0; kx < k; ++kx)
                        s += in[(ic * h + oy * stride + ky) * w +
                                ox * stride + kx];
                out[(ic * oh + oy) * ow + ox] = s / (k * k);
            }
    return out;
}

std::vector<double> MaxPool1d(const std::vector<double>& in, int64_t c,
                              int64_t l, int64_t k, int64_t stride) {
    const int64_t ol = OutDim(l, k, stride);
    std::vector<double> out(c * ol);
    for (int64_t ic = 0; ic < c; ++ic)
        for (int64_t ox = 0; ox < ol; ++ox) {
            double m = -1e300;
            for (int64_t kx = 0; kx < k; ++kx)
                m = std::max(m, in[ic * l + ox * stride + kx]);
            out[ic * ol + ox] = m;
        }
    return out;
}

std::vector<double> AvgPool1d(const std::vector<double>& in, int64_t c,
                              int64_t l, int64_t k, int64_t stride) {
    const int64_t ol = OutDim(l, k, stride);
    std::vector<double> out(c * ol);
    for (int64_t ic = 0; ic < c; ++ic)
        for (int64_t ox = 0; ox < ol; ++ox) {
            double s = 0;
            for (int64_t kx = 0; kx < k; ++kx)
                s += in[ic * l + ox * stride + kx];
            out[ic * ol + ox] = s / k;
        }
    return out;
}

std::vector<double> BatchNorm(const std::vector<double>& in, int64_t channels,
                              int64_t per_channel,
                              const std::vector<double>& gamma,
                              const std::vector<double>& beta,
                              const std::vector<double>& mean,
                              const std::vector<double>& var, double eps) {
    std::vector<double> out(in.size());
    for (int64_t c = 0; c < channels; ++c) {
        const double scale = gamma[c] / std::sqrt(var[c] + eps);
        const double shift = beta[c] - mean[c] * scale;
        for (int64_t i = 0; i < per_channel; ++i)
            out[c * per_channel + i] = in[c * per_channel + i] * scale + shift;
    }
    return out;
}

std::vector<double> Relu(const std::vector<double>& in) {
    std::vector<double> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = std::max(0.0, in[i]);
    return out;
}

std::vector<double> MatMul(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t m, int64_t k,
                           int64_t n) {
    std::vector<double> out(m * n, 0.0);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0;
            for (int64_t p = 0; p < k; ++p) acc += x[i * k + p] * y[p * n + j];
            out[i * n + j] = acc;
        }
    return out;
}

}  // namespace pytfhe::nn::reference
