/**
 * @file
 * Primitive tensor operations (Table I of the paper): matmul, dot,
 * elementwise arithmetic, comparisons, reductions, argmax/argmin, and the
 * softmax building blocks used by attention layers.
 */
#ifndef PYTFHE_NN_FUNCTIONAL_H
#define PYTFHE_NN_FUNCTIONAL_H

#include "nn/tensor.h"

namespace pytfhe::nn {

using hdl::Signal;

/** Elementwise arithmetic; shapes must match. */
Tensor Add(Builder& b, const Tensor& x, const Tensor& y);
Tensor Sub(Builder& b, const Tensor& x, const Tensor& y);
Tensor Mul(Builder& b, const Tensor& x, const Tensor& y);
Tensor Div(Builder& b, const Tensor& x, const Tensor& y);

/** Tensor (op) scalar-constant. */
Tensor AddScalar(Builder& b, const Tensor& x, double c);
Tensor MulScalar(Builder& b, const Tensor& x, double c);

/** Elementwise comparisons; results are UInt(1) tensors. */
Tensor CmpEq(Builder& b, const Tensor& x, const Tensor& y);
Tensor CmpNe(Builder& b, const Tensor& x, const Tensor& y);
Tensor CmpLt(Builder& b, const Tensor& x, const Tensor& y);
Tensor CmpLe(Builder& b, const Tensor& x, const Tensor& y);
Tensor CmpGt(Builder& b, const Tensor& x, const Tensor& y);
Tensor CmpGe(Builder& b, const Tensor& x, const Tensor& y);

/** Matrix product: [m,k] x [k,n] -> [m,n]. */
Tensor MatMul(Builder& b, const Tensor& x, const Tensor& y);
/** Inner product of two 1-D tensors. */
Value Dot(Builder& b, const Tensor& x, const Tensor& y);

/** Reductions over the whole tensor (balanced trees). */
Value Sum(Builder& b, const Tensor& x);
Value Prod(Builder& b, const Tensor& x);
Value MaxVal(Builder& b, const Tensor& x);
Value MinVal(Builder& b, const Tensor& x);

/**
 * Index of the maximum element of a 1-D tensor, as a UInt word of
 * ceil(log2(n)) bits. First maximum wins on ties.
 */
Value ArgMax(Builder& b, const Tensor& x);
Value ArgMin(Builder& b, const Tensor& x);

/** Elementwise max(0, x). */
Tensor Relu(Builder& b, const Tensor& x);

/**
 * Elementwise piecewise-linear approximation of exp(x) for x <= 0
 * (use after max subtraction). Float dtypes only. The exact polyline is
 * defined by reference::PwlExp so circuits and reference models agree.
 */
Tensor ExpApprox(Builder& b, const Tensor& x);

/**
 * Elementwise piecewise-linear logistic sigmoid (reference::PwlSigmoid).
 * Float dtypes only.
 */
Tensor SigmoidApprox(Builder& b, const Tensor& x);

/** Elementwise tanh = 2*sigmoid(2x) - 1 over the shared polyline. */
Tensor TanhApprox(Builder& b, const Tensor& x);

/**
 * Row-wise softmax of a [rows, cols] tensor using max-subtraction,
 * ExpApprox, and a divider per element. Float dtypes only.
 */
Tensor Softmax(Builder& b, const Tensor& x);

}  // namespace pytfhe::nn

#endif  // PYTFHE_NN_FUNCTIONAL_H
