/**
 * @file
 * Encrypted tensors: the ChiselTorch data model.
 *
 * A Tensor is a shape plus a row-major flat vector of typed circuit values.
 * Layout operations (view/reshape/transpose/pad/flatten) shuffle value
 * handles and generate NO gates — this is the optimization the paper calls
 * out in Section V-C: a Flatten layer compiles to pure wiring in PyTFHE
 * while Transpiler emits gates for it.
 */
#ifndef PYTFHE_NN_TENSOR_H
#define PYTFHE_NN_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/value.h"

namespace pytfhe::nn {

using hdl::Builder;
using hdl::DType;
using hdl::Value;

using Shape = std::vector<int64_t>;

/** Number of elements of a shape. */
int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

/** An N-dimensional tensor of encrypted scalars under construction. */
class Tensor {
  public:
    Tensor() = default;
    Tensor(Shape shape, std::vector<Value> values);

    /** Declares an encrypted input tensor (one circuit input per bit). */
    static Tensor Input(Builder& b, const DType& t, Shape shape,
                        const std::string& name);

    /** Embeds plaintext data as constants (weights, biases). */
    static Tensor FromData(Builder& b, const DType& t, Shape shape,
                           const std::vector<double>& data);

    /** A tensor filled with one constant. */
    static Tensor Full(Builder& b, const DType& t, Shape shape, double value);

    const Shape& shape() const { return shape_; }
    int64_t Dim(size_t i) const { return shape_[i]; }
    size_t Rank() const { return shape_.size(); }
    int64_t Numel() const { return static_cast<int64_t>(values_.size()); }
    const DType& dtype() const { return values_.front().dtype; }

    const Value& At(int64_t flat_index) const { return values_[flat_index]; }
    Value& At(int64_t flat_index) { return values_[flat_index]; }
    const Value& At(const std::vector<int64_t>& index) const {
        return values_[FlatIndex(index)];
    }
    const std::vector<Value>& values() const { return values_; }

    int64_t FlatIndex(const std::vector<int64_t>& index) const;

    /** Layout ops — zero gates. */
    Tensor Reshape(const Shape& new_shape) const;
    Tensor View(const Shape& new_shape) const { return Reshape(new_shape); }
    Tensor Flatten() const { return Reshape({Numel()}); }
    Tensor Transpose(size_t dim0, size_t dim1) const;
    /**
     * Zero-pads a 2D (or trailing-2D) tensor by `pad` on each side of the
     * last two dimensions. The padding values are constants.
     */
    Tensor Pad2d(Builder& b, int64_t pad) const;

    /** Registers every element as circuit outputs named name[i]. */
    void Output(Builder& b, const std::string& name) const;

  private:
    Shape shape_;
    std::vector<Value> values_;
};

}  // namespace pytfhe::nn

#endif  // PYTFHE_NN_TENSOR_H
