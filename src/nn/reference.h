/**
 * @file
 * Plaintext reference semantics for the NN layer library.
 *
 * Every circuit-generating layer has a double-precision counterpart here.
 * Tests build the circuit, evaluate it on plaintext bits, and compare with
 * these functions under a quantization-scaled tolerance. The piecewise
 * linear exp used by Softmax is defined here once so that the circuit and
 * the reference use the same polyline.
 */
#ifndef PYTFHE_NN_REFERENCE_H
#define PYTFHE_NN_REFERENCE_H

#include <cstdint>
#include <vector>

namespace pytfhe::nn::reference {

/** One segment of the exp polyline: y = slope * x + offset on [lo, hi). */
struct PwlSegment {
    double lo;
    double hi;
    double slope;
    double offset;
};

/** The shared polyline for exp(x), x <= 0; below the first knot exp = 0. */
const std::vector<PwlSegment>& PwlExpSegments();

/** Evaluates the polyline. */
double PwlExp(double x);

/** Shared polyline for the logistic sigmoid on [-8, 8]; clamps outside. */
const std::vector<PwlSegment>& PwlSigmoidSegments();
double PwlSigmoid(double x);

/** tanh via the sigmoid polyline: 2*sigmoid(2x) - 1. */
double PwlTanh(double x);

/** Reference softmax using PwlExp, row-wise on [rows, cols] data. */
std::vector<double> Softmax(const std::vector<double>& x, int64_t rows,
                            int64_t cols);

/** 2-D convolution, no padding: in [C,H,W], weight [F,C,kh,kw], bias [F]. */
std::vector<double> Conv2d(const std::vector<double>& in, int64_t c, int64_t h,
                           int64_t w, const std::vector<double>& weight,
                           int64_t f, int64_t kh, int64_t kw, int64_t stride,
                           const std::vector<double>& bias);

/** 1-D convolution: in [C,L], weight [F,C,k], bias [F]. */
std::vector<double> Conv1d(const std::vector<double>& in, int64_t c, int64_t l,
                           const std::vector<double>& weight, int64_t f,
                           int64_t k, int64_t stride,
                           const std::vector<double>& bias);

/** Fully connected: in [n], weight [m,n], bias [m]. */
std::vector<double> Linear(const std::vector<double>& in,
                           const std::vector<double>& weight, int64_t m,
                           int64_t n, const std::vector<double>& bias);

/** Max pooling over the trailing 2 dims of [C,H,W]. */
std::vector<double> MaxPool2d(const std::vector<double>& in, int64_t c,
                              int64_t h, int64_t w, int64_t k, int64_t stride);
std::vector<double> AvgPool2d(const std::vector<double>& in, int64_t c,
                              int64_t h, int64_t w, int64_t k, int64_t stride);
std::vector<double> MaxPool1d(const std::vector<double>& in, int64_t c,
                              int64_t l, int64_t k, int64_t stride);
std::vector<double> AvgPool1d(const std::vector<double>& in, int64_t c,
                              int64_t l, int64_t k, int64_t stride);

/** Batch normalization (inference): y = (x - mean)/sqrt(var+eps)*g + beta. */
std::vector<double> BatchNorm(const std::vector<double>& in,
                              int64_t channels, int64_t per_channel,
                              const std::vector<double>& gamma,
                              const std::vector<double>& beta,
                              const std::vector<double>& mean,
                              const std::vector<double>& var, double eps);

std::vector<double> Relu(const std::vector<double>& in);

/** [m,k] x [k,n] -> [m,n]. */
std::vector<double> MatMul(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t m, int64_t k,
                           int64_t n);

/** Output spatial size of a conv/pool window. */
inline int64_t OutDim(int64_t in, int64_t k, int64_t stride) {
    return (in - k) / stride + 1;
}

}  // namespace pytfhe::nn::reference

#endif  // PYTFHE_NN_REFERENCE_H
