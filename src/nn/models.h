/**
 * @file
 * The paper's neural network benchmarks as ready-made model factories:
 * the three MNIST CNNs (Section V-A: MNIST_S from VIP-Bench plus the larger
 * MNIST_M/MNIST_L with two and three convolutional kernels) and the two
 * self-attention configurations (Attention_S hidden=32, Attention_L
 * hidden=64).
 */
#ifndef PYTFHE_NN_MODELS_H
#define PYTFHE_NN_MODELS_H

#include "nn/attention.h"
#include "nn/layers.h"

namespace pytfhe::nn {

/** Shape of the MNIST input image: [1, 28, 28] by default. */
struct MnistConfig {
    int64_t image = 28;  ///< Image side; tests use smaller images.
    uint64_t seed = 1;   ///< Weight initialization seed.
};

/**
 * MNIST_S (Fig. 4): Conv2d(1,1,3,1) -> ReLU -> MaxPool2d(3,1) -> Flatten ->
 * Linear(576, 10) for 28x28 inputs; layer sizes scale with config.image.
 */
std::shared_ptr<Sequential> MnistS(const MnistConfig& config = {});

/** MNIST_M: two convolution kernels (channels), same topology. */
std::shared_ptr<Sequential> MnistM(const MnistConfig& config = {});

/** MNIST_L: three convolution kernels. */
std::shared_ptr<Sequential> MnistL(const MnistConfig& config = {});

/** Attention_S: sequence length 16, hidden dimension 32. */
std::shared_ptr<SelfAttention> AttentionS(uint64_t seed = 1);

/** Attention_L: sequence length 16, hidden dimension 64. */
std::shared_ptr<SelfAttention> AttentionL(uint64_t seed = 1);

/** The input shape a model expects. */
Shape MnistInputShape(const MnistConfig& config = {});

}  // namespace pytfhe::nn

#endif  // PYTFHE_NN_MODELS_H
