#include "nn/attention.h"

#include <cassert>
#include <cmath>
#include <random>

#include "nn/reference.h"

namespace pytfhe::nn {

SelfAttention::SelfAttention(int64_t seq_len, int64_t hidden)
    : seq_len_(seq_len),
      hidden_(hidden),
      wq_(hidden * hidden, 0.0),
      wk_(hidden * hidden, 0.0),
      wv_(hidden * hidden, 0.0) {
    InitRandom(0xA77E);
}

void SelfAttention::InitRandom(uint64_t seed) {
    std::mt19937_64 rng(seed);
    const double scale = 1.0 / std::sqrt(static_cast<double>(hidden_));
    std::uniform_real_distribution<double> dist(-scale, scale);
    for (auto* w : {&wq_, &wk_, &wv_})
        for (auto& x : *w) x = dist(rng);
}

void SelfAttention::SetWeights(std::vector<double> wq, std::vector<double> wk,
                               std::vector<double> wv) {
    assert(wq.size() == wq_.size() && wk.size() == wk_.size() &&
           wv.size() == wv_.size());
    wq_ = std::move(wq);
    wk_ = std::move(wk);
    wv_ = std::move(wv);
}

Tensor SelfAttention::Forward(Builder& b, const Tensor& input) const {
    assert(input.Rank() == 2 && input.Dim(0) == seq_len_ &&
           input.Dim(1) == hidden_);
    const DType& t = input.dtype();
    assert(t.IsFloat());

    const Tensor wq = Tensor::FromData(b, t, {hidden_, hidden_}, wq_);
    const Tensor wk = Tensor::FromData(b, t, {hidden_, hidden_}, wk_);
    const Tensor wv = Tensor::FromData(b, t, {hidden_, hidden_}, wv_);

    const Tensor q = MatMul(b, input, wq);
    const Tensor k = MatMul(b, input, wk);
    const Tensor v = MatMul(b, input, wv);

    Tensor scores = MatMul(b, q, k.Transpose(0, 1));
    scores = MulScalar(b, scores, 1.0 / std::sqrt(static_cast<double>(hidden_)));
    const Tensor attn = Softmax(b, scores);
    return MatMul(b, attn, v);
}

std::vector<double> SelfAttention::RefForward(const std::vector<double>& input,
                                              Shape& shape,
                                              const DType& dtype) const {
    assert(shape.size() == 2 && shape[0] == seq_len_ && shape[1] == hidden_);
    auto quantize = [&](const std::vector<double>& w) {
        std::vector<double> q(w.size());
        for (size_t i = 0; i < w.size(); ++i) q[i] = dtype.Quantize(w[i]);
        return q;
    };
    const auto q =
        reference::MatMul(input, quantize(wq_), seq_len_, hidden_, hidden_);
    const auto k =
        reference::MatMul(input, quantize(wk_), seq_len_, hidden_, hidden_);
    const auto v =
        reference::MatMul(input, quantize(wv_), seq_len_, hidden_, hidden_);
    // scores = q k^T / sqrt(h).
    std::vector<double> kt(k.size());
    for (int64_t i = 0; i < seq_len_; ++i)
        for (int64_t j = 0; j < hidden_; ++j)
            kt[j * seq_len_ + i] = k[i * hidden_ + j];
    auto scores = reference::MatMul(q, kt, seq_len_, hidden_, seq_len_);
    const double inv_sqrt =
        dtype.Quantize(1.0 / std::sqrt(static_cast<double>(hidden_)));
    for (auto& s : scores) s *= inv_sqrt;
    const auto attn = reference::Softmax(scores, seq_len_, seq_len_);
    auto out = reference::MatMul(attn, v, seq_len_, seq_len_, hidden_);
    shape = {seq_len_, hidden_};
    return out;
}

}  // namespace pytfhe::nn
