#include "circuit/bristol.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace pytfhe::circuit {

namespace {

/** Emits AND/XOR/INV gate lines, assigning fresh wire numbers. */
class BristolWriter {
  public:
    explicit BristolWriter(uint64_t first_free_wire)
        : next_wire_(first_free_wire) {}

    uint64_t And(uint64_t a, uint64_t b) { return Binary("AND", a, b); }
    uint64_t Xor(uint64_t a, uint64_t b) { return Binary("XOR", a, b); }
    uint64_t Inv(uint64_t a) {
        const uint64_t out = next_wire_++;
        lines_ << "1 1 " << a << " " << out << " INV\n";
        ++gate_count_;
        return out;
    }
    uint64_t Copy(uint64_t a, uint64_t out) {
        lines_ << "1 1 " << a << " " << out << " EQW\n";
        ++gate_count_;
        return out;
    }
    uint64_t Const(bool v) {
        const uint64_t out = next_wire_++;
        lines_ << "1 1 " << (v ? 1 : 0) << " " << out << " EQ\n";
        ++gate_count_;
        return out;
    }

    /** Lowers one netlist gate to the basic set. */
    uint64_t Lower(GateType t, uint64_t a, uint64_t b) {
        switch (t) {
            case GateType::kNot: return Inv(a);
            case GateType::kAnd: return And(a, b);
            case GateType::kNand: return Inv(And(a, b));
            case GateType::kOr: return Inv(And(Inv(a), Inv(b)));
            case GateType::kNor: return And(Inv(a), Inv(b));
            case GateType::kXor: return Xor(a, b);
            case GateType::kXnor: return Inv(Xor(a, b));
            case GateType::kAndNY: return And(Inv(a), b);
            case GateType::kAndYN: return And(a, Inv(b));
            case GateType::kOrNY: return Inv(And(a, Inv(b)));
            case GateType::kOrYN: return Inv(And(Inv(a), b));
            // Linear gates are a TFHE execution detail; Bristol has no
            // encoding notion, so they export as their boolean function.
            case GateType::kLinXor: return Xor(a, b);
            case GateType::kLinXnor: return Inv(Xor(a, b));
            case GateType::kLinNot: return Inv(a);
            case GateType::kLut:
                // Handled (rejected) by the caller before lowering; a LUT
                // has no faithful 2-input Bristol spelling.
                break;
        }
        return a;  // Unreachable.
    }

    uint64_t gate_count() const { return gate_count_; }
    uint64_t next_wire() const { return next_wire_; }
    void set_next_wire(uint64_t w) { next_wire_ = w; }
    std::string TakeLines() { return lines_.str(); }

  private:
    uint64_t Binary(const char* op, uint64_t a, uint64_t b) {
        const uint64_t out = next_wire_++;
        lines_ << "2 1 " << a << " " << b << " " << out << " " << op << "\n";
        ++gate_count_;
        return out;
    }

    uint64_t next_wire_;
    uint64_t gate_count_ = 0;
    std::ostringstream lines_;
};

}  // namespace

void ExportBristol(std::ostream& os, const Netlist& netlist) {
    const uint64_t n_inputs = netlist.Inputs().size();
    const uint64_t n_outputs = netlist.Outputs().size();

    BristolWriter w(n_inputs);
    // Wire assigned to each netlist node (inputs get 0..n_inputs-1).
    std::vector<uint64_t> wire(netlist.NumNodes(), UINT64_MAX);
    std::optional<uint64_t> const_wire[2];

    auto wire_of = [&](NodeId id) -> uint64_t {
        if (id <= kConstTrue) {
            const int v = id == kConstTrue ? 1 : 0;
            if (!const_wire[v]) const_wire[v] = w.Const(v);
            return *const_wire[v];
        }
        return wire[id];
    };

    {
        uint64_t next_input = 0;
        for (NodeId id : netlist.Inputs()) wire[id] = next_input++;
    }
    for (NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const Node& n = netlist.GetNode(id);
        if (n.kind != NodeKind::kGate) continue;
        if (n.type == GateType::kLut) {
            // Refuse rather than truncate the operand list: Bristol's gate
            // set is 2-input boolean and cannot express a weighted LUT.
            throw UnsupportedGateError(
                "cannot export node " + std::to_string(id) +
                " to Bristol format: kLut gates (multibit netlists) have no "
                "Bristol encoding — export the boolean form built without "
                "CompileOptions::multibit instead");
        }
        wire[id] = w.Lower(n.type, wire_of(netlist.Op(id, 0)),
                           wire_of(netlist.Op(id, 1)));
    }
    // Materialize any constant outputs before freezing the tail region.
    for (NodeId id : netlist.Outputs()) (void)wire_of(id);
    // Copy outputs onto the tail wires (format requirement).
    const uint64_t first_output_wire = w.next_wire();
    w.set_next_wire(first_output_wire + n_outputs);
    for (uint64_t i = 0; i < n_outputs; ++i)
        w.Copy(wire_of(netlist.Outputs()[i]), first_output_wire + i);
    const uint64_t total_wires = first_output_wire + n_outputs;

    os << w.gate_count() << " " << total_wires << "\n";
    os << "1 " << n_inputs << "\n";
    os << "1 " << n_outputs << "\n\n";
    os << w.TakeLines();
}

std::string ExportBristolString(const Netlist& netlist) {
    std::ostringstream os;
    ExportBristol(os, netlist);
    return os.str();
}

std::optional<Netlist> ImportBristol(std::istream& is, std::string* error) {
    auto fail = [&](const std::string& m) {
        if (error) *error = m;
        return std::nullopt;
    };

    uint64_t n_gates, n_wires;
    if (!(is >> n_gates >> n_wires)) return fail("bad header");
    if (n_wires > (UINT64_C(1) << 28)) return fail("too many wires");

    uint64_t niv;
    if (!(is >> niv)) return fail("bad input declaration");
    uint64_t n_inputs = 0;
    for (uint64_t i = 0; i < niv; ++i) {
        uint64_t bits;
        if (!(is >> bits)) return fail("bad input widths");
        n_inputs += bits;
    }
    uint64_t nov;
    if (!(is >> nov)) return fail("bad output declaration");
    uint64_t n_outputs = 0;
    for (uint64_t i = 0; i < nov; ++i) {
        uint64_t bits;
        if (!(is >> bits)) return fail("bad output widths");
        n_outputs += bits;
    }
    if (n_inputs + n_outputs > n_wires)
        return fail("wire count smaller than interface");

    Netlist out;
    std::vector<NodeId> node(n_wires, UINT64_MAX);
    for (uint64_t i = 0; i < n_inputs; ++i) node[i] = out.AddInput();

    for (uint64_t g = 0; g < n_gates; ++g) {
        uint64_t fan_in, fan_out;
        if (!(is >> fan_in >> fan_out)) return fail("truncated gate list");
        if (fan_out != 1) return fail("multi-output gates unsupported");
        uint64_t in0 = 0, in1 = 0, dst;
        if (fan_in == 2) {
            if (!(is >> in0 >> in1 >> dst)) return fail("bad binary gate");
        } else if (fan_in == 1) {
            if (!(is >> in0 >> dst)) return fail("bad unary gate");
        } else {
            return fail("unsupported fan-in");
        }
        std::string op;
        if (!(is >> op)) return fail("missing gate op");
        if (dst >= n_wires) return fail("gate writes past wire space");

        NodeId result;
        if (op == "AND" || op == "XOR") {
            if (in0 >= n_wires || in1 >= n_wires ||
                node[in0] == UINT64_MAX || node[in1] == UINT64_MAX)
                return fail("gate reads undefined wire");
            result = out.AddGate(
                op == "AND" ? GateType::kAnd : GateType::kXor, node[in0],
                node[in1]);
        } else if (op == "INV" || op == "NOT") {
            if (in0 >= n_wires || node[in0] == UINT64_MAX)
                return fail("gate reads undefined wire");
            result = out.AddGate(GateType::kNot, node[in0], node[in0]);
        } else if (op == "EQW") {
            if (in0 >= n_wires || node[in0] == UINT64_MAX)
                return fail("gate reads undefined wire");
            result = node[in0];  // Pure aliasing.
        } else if (op == "EQ") {
            if (in0 > 1) return fail("EQ constant must be 0 or 1");
            result = in0 ? kConstTrue : kConstFalse;
        } else {
            return fail("unknown gate op: " + op);
        }
        node[dst] = result;
    }

    for (uint64_t i = 0; i < n_outputs; ++i) {
        const uint64_t wire = n_wires - n_outputs + i;
        if (node[wire] == UINT64_MAX) return fail("undriven output wire");
        out.AddOutput(node[wire]);
    }
    return out;
}

std::optional<Netlist> ImportBristolString(const std::string& text,
                                           std::string* error) {
    std::istringstream is(text);
    return ImportBristol(is, error);
}

}  // namespace pytfhe::circuit
