/**
 * @file
 * SimplifyingBuilder: the canonical way to construct optimized netlists.
 *
 * Every MakeGate call applies local rewrites before emitting a node:
 * constant folding, duplicate/complement-input folding, double-negation
 * elimination, NOT absorption into the TFHE gate set, canonical operand
 * ordering, and structural hashing (CSE). Frontends (the HDL layer, the
 * baseline models with rewrites disabled) and the Optimize pass all build
 * through this class, so circuits are born optimized rather than cleaned up
 * afterwards.
 */
#ifndef PYTFHE_CIRCUIT_BUILDER_H
#define PYTFHE_CIRCUIT_BUILDER_H

#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/netlist.h"

namespace pytfhe::circuit {

/** Which local rewrites MakeGate applies. Defaults: everything on. */
struct BuilderOptions {
    bool fold_constants = true;
    bool cse = true;
    bool absorb_not = true;
    /**
     * Restricts emission to the basic AND/OR/XOR/NOT set, lowering the
     * richer TFHE gates into gate + NOT pairs. Used by the baseline
     * framework models (Cingulata/E3/Transpiler do not exploit the full
     * TFHE gate set); incompatible with absorb_not.
     */
    bool basic_gates_only = false;
};

/** Counts of applied rewrites. */
struct BuilderStats {
    uint64_t folded = 0;
    uint64_t deduped = 0;
    uint64_t absorbed_nots = 0;
};

class SimplifyingBuilder {
  public:
    explicit SimplifyingBuilder(BuilderOptions options = {})
        : opts_(options) {}

    /** The netlist under construction. */
    Netlist& netlist() { return out_; }
    const Netlist& netlist() const { return out_; }
    const BuilderStats& stats() const { return stats_; }

    NodeId MakeInput(std::string name = {}) {
        return out_.AddInput(std::move(name));
    }
    NodeId MakeConst(bool value) {
        return value ? kConstTrue : kConstFalse;
    }
    /**
     * Builds gate type t over an explicit operand span, simplifying.
     * Classic gate types take one (NOT) or two operands; kLut is rejected
     * with UnsupportedGateError (its semantics need a LutSpec — use
     * MakeLut). The two-operand overload below remains the convenient
     * spelling for the classic gate set.
     */
    NodeId MakeGate(GateType t, std::span<const NodeId> operands);

    /** Builds gate type t over (a, b), simplifying. For NOT, b is ignored. */
    NodeId MakeGate(GateType t, NodeId a, NodeId b);
    NodeId MakeNot(NodeId a);

    /**
     * Builds a kLut gate, simplifying: constant operands fold into the
     * table, duplicate operands merge their weights, zero-weight operands
     * drop out, single-bit identity tables collapse to the operand, fully
     * constant 1-bit LUTs fold to the constant nodes, and structurally
     * identical LUTs dedupe (CSE). The netlist must be multibit
     * (SetMessageModulus) before the first call.
     */
    NodeId MakeLut(LutSpec spec, std::span<const NodeId> operands);

    /** Declares the netlist under construction multibit (modulus p). */
    void SetMessageModulus(int32_t p) { out_.SetMessageModulus(p); }
    /** sel ? t : f, lowered to the binary gate set (2 bootstrapped gates). */
    NodeId MakeMux(NodeId sel, NodeId t, NodeId f);

    /**
     * Builds gate type t over every (a, b) operand pair and registers the
     * freshly emitted gates as kSimd-style wide groups (Netlist::
     * AddWideGroup), one group per distinct emitted bootstrapped type —
     * rewrites (constant folding, CSE hits, NOT absorption) may drop
     * pairs out of the batch or change their type, and only fresh
     * bootstrapped gates are batchable. Returns the per-pair result ids,
     * simplified exactly as MakeGate would.
     */
    std::vector<NodeId> MakeWideGate(
        GateType t, const std::vector<std::pair<NodeId, NodeId>>& pairs);

    void AddOutput(NodeId id, std::string name = {}) {
        out_.AddOutput(id, std::move(name));
    }

  private:
    std::optional<NodeId> NotInputOf(NodeId id) const;
    NodeId UnaryOf(GateType t, NodeId x, bool fixed_first, bool cval);
    NodeId FromTruth(bool r0, bool r1, NodeId x);
    NodeId Emit(GateType t, NodeId a, NodeId b);

    struct GateKey {
        GateType type;
        NodeId a;
        NodeId b;
        bool operator==(const GateKey& o) const {
            return type == o.type && a == o.a && b == o.b;
        }
    };
    struct GateKeyHash {
        size_t operator()(const GateKey& k) const {
            size_t h = static_cast<size_t>(k.type);
            h = h * 0x9E3779B97F4A7C15ull + k.a;
            h = h * 0x9E3779B97F4A7C15ull + k.b;
            return h;
        }
    };

    BuilderOptions opts_;
    BuilderStats stats_;
    Netlist out_;
    std::unordered_map<GateKey, NodeId, GateKeyHash> cse_;
    /** Structural CSE for kLut gates: digest of (operands, spec) -> id. */
    std::unordered_map<uint64_t, std::vector<NodeId>> lut_cse_;
};

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_BUILDER_H
