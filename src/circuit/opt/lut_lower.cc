#include "circuit/opt/lut_lower.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "circuit/builder.h"

namespace pytfhe::circuit {

namespace {

/** A boolean literal: a non-NOT base node, possibly negated. Constants
 * are normalized to the const nodes with neg == false. */
struct Lit {
    NodeId node = kConstFalse;
    bool neg = false;
};

bool IsNotLike(GateType t) {
    return t == GateType::kNot || t == GateType::kLinNot;
}

}  // namespace

std::string LutLowerStats::ToString() const {
    return "luts=" + std::to_string(luts) +
           " merged_gates=" + std::to_string(merged_gates) +
           " absorbed_nots=" + std::to_string(absorbed_nots);
}

LutLowerResult LowerToLuts(const Netlist& in, const LutLowerOptions& opt) {
    if (in.MessageModulus() != 0)
        throw UnsupportedGateError(
            "LowerToLuts: the input netlist is already multibit "
            "(message modulus " + std::to_string(in.MessageModulus()) + ")");
    const int32_t p = opt.message_modulus;
    if (p != 4 && p != 8 && p != 16)
        throw UnsupportedGateError(
            "LowerToLuts: message modulus " + std::to_string(p) +
            " unsupported; the lowering needs p in {4, 8, 16} (a 2-leaf "
            "LUT already indexes 4 slots)");
    // Binary weights 1..2^(k-1) cost sum w^2 = (4^k - 1) / 3; shrink the
    // cone cap until both the message space and the noise budget fit.
    int32_t cap = std::min<int32_t>(opt.max_cone_leaves, kMaxLutArity);
    auto weight_sq = [](int32_t k) {
        return ((int64_t{1} << (2 * k)) - 1) / 3;
    };
    while (cap > 2 &&
           ((int64_t{1} << cap) > p || weight_sq(cap) > opt.weight_budget))
        --cap;
    if (cap < 2 || weight_sq(2) > opt.weight_budget)
        throw UnsupportedGateError(
            "LowerToLuts: weight budget " +
            std::to_string(opt.weight_budget) +
            " cannot carry even a 2-leaf LUT (needs 5); the parameter "
            "set is too noisy for multibit mode");

    const size_t n = in.NumNodes();

    // Resolve every node to a literal, looking through NOT/LNOT chains so
    // negations fold into consumer tables instead of costing gates.
    std::vector<Lit> lit(n);
    lit[kConstTrue] = {kConstTrue, false};
    for (NodeId id = 2; id < n; ++id) {
        const Node& node = in.GetNode(id);
        if (node.kind != NodeKind::kGate) {
            lit[id] = {id, false};
            continue;
        }
        if (node.type == GateType::kLut)
            throw UnsupportedGateError(
                "LowerToLuts: node " + std::to_string(id) +
                " is already a LUT gate in a boolean netlist");
        if (IsNotLike(node.type)) {
            Lit l = lit[in.Op(id, 0)];
            l.neg = !l.neg;
            if (l.node <= kConstTrue && l.neg)
                l = {l.node == kConstFalse ? kConstTrue : kConstFalse,
                     false};
            lit[id] = l;
        } else {
            lit[id] = {id, false};
        }
    }

    // Effective fanout of each base node: consumers reached through
    // literals plus output references. Only single-fanout gates may be
    // absorbed into a consumer's cone (absorbing a shared gate would
    // duplicate its bootstrap into every consumer).
    std::vector<int32_t> fanout(n, 0);
    for (NodeId id = 2; id < n; ++id) {
        const Node& node = in.GetNode(id);
        if (node.kind != NodeKind::kGate || IsNotLike(node.type)) continue;
        for (NodeId op : in.Operands(id)) ++fanout[lit[op].node];
    }
    for (NodeId out : in.Outputs()) ++fanout[lit[out].node];

    // Cut selection, topological: each real gate gets a sorted leaf set
    // of at most `cap` base nodes; single-fanout operand gates are
    // absorbed greedily (both if possible, else the one that fits).
    std::vector<std::vector<NodeId>> cut(n);
    auto merge = [](const std::vector<NodeId>& a,
                    const std::vector<NodeId>& b) {
        std::vector<NodeId> m;
        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(m));
        return m;
    };
    for (NodeId id = 2; id < n; ++id) {
        const Node& node = in.GetNode(id);
        if (node.kind != NodeKind::kGate || IsNotLike(node.type)) continue;
        const Lit la = lit[in.Op(id, 0)];
        const Lit lb = lit[in.Op(id, 1)];
        auto self = [&](const Lit& l) -> std::vector<NodeId> {
            if (l.node <= kConstTrue) return {};
            return {l.node};
        };
        auto absorbable = [&](const Lit& l) {
            return l.node > kConstTrue &&
                   in.GetNode(l.node).kind == NodeKind::kGate &&
                   fanout[l.node] == 1;
        };
        auto cone = [&](const Lit& l) -> const std::vector<NodeId>& {
            return cut[l.node];
        };
        std::vector<NodeId> chosen =
            merge(absorbable(la) ? cone(la) : self(la),
                  absorbable(lb) ? cone(lb) : self(lb));
        if (static_cast<int32_t>(chosen.size()) > cap && absorbable(la)) {
            chosen = merge(cone(la), self(lb));
        }
        if (static_cast<int32_t>(chosen.size()) > cap && absorbable(lb)) {
            chosen = merge(self(la), cone(lb));
        }
        if (static_cast<int32_t>(chosen.size()) > cap)
            chosen = merge(self(la), self(lb));
        assert(static_cast<int32_t>(chosen.size()) <= cap);
        cut[id] = std::move(chosen);
    }

    LutLowerResult result;
    SimplifyingBuilder builder;
    builder.SetMessageModulus(p);
    std::vector<NodeId> map(n, kConstFalse);
    std::vector<bool> realized(n, false);
    map[kConstTrue] = kConstTrue;
    realized[kConstFalse] = realized[kConstTrue] = true;
    size_t input_idx = 0;
    for (NodeId id = 2; id < n; ++id) {
        if (in.GetNode(id).kind != NodeKind::kInput) continue;
        map[id] = builder.MakeInput(in.InputName(input_idx++));
        realized[id] = true;
    }

    // Evaluates literal l under the cone valuation `vals`.
    auto eval_lit = [&](const Lit& l,
                        const std::vector<std::pair<NodeId, bool>>& vals) {
        if (l.node == kConstFalse) return l.neg;
        if (l.node == kConstTrue) return !l.neg;
        for (const auto& [nid, v] : vals)
            if (nid == l.node) return v != l.neg;
        assert(false && "cone valuation is missing a literal base");
        return false;
    };

    // Emits the LUT for gate id; all cut leaves must be realized.
    auto emit = [&](NodeId id) {
        const std::vector<NodeId>& leaves = cut[id];
        const size_t k = leaves.size();

        // The cone: id plus every absorbed gate, ascending = topological.
        std::vector<NodeId> cone;
        std::vector<NodeId> dfs{id};
        while (!dfs.empty()) {
            const NodeId g = dfs.back();
            dfs.pop_back();
            if (std::find(cone.begin(), cone.end(), g) != cone.end())
                continue;
            cone.push_back(g);
            for (int i = 0; i < 2; ++i) {
                const Lit l = lit[in.Op(g, i)];
                if (l.node <= kConstTrue) continue;
                if (in.GetNode(l.node).kind != NodeKind::kGate) continue;
                if (std::binary_search(leaves.begin(), leaves.end(),
                                       l.node))
                    continue;
                dfs.push_back(l.node);
            }
        }
        std::sort(cone.begin(), cone.end());
        result.stats.merged_gates += cone.size() - 1;

        // Truth table: binary weights make the weighted sum equal the
        // leaf assignment index, so entry m is the cone's value with
        // leaf i set to bit i of m.
        LutSpec spec;
        spec.lo = 0;
        spec.out_bits = 1;
        for (size_t i = 0; i < k; ++i)
            spec.weights.push_back(static_cast<int8_t>(1 << i));
        std::vector<std::pair<NodeId, bool>> vals;
        for (uint32_t m = 0; m < (1u << k); ++m) {
            vals.clear();
            for (size_t i = 0; i < k; ++i)
                vals.emplace_back(leaves[i], ((m >> i) & 1) != 0);
            for (const NodeId g : cone) {
                const Node& gn = in.GetNode(g);
                vals.emplace_back(
                    g, EvalGate(gn.type, eval_lit(lit[in.Op(g, 0)], vals),
                                eval_lit(lit[in.Op(g, 1)], vals)));
            }
            spec.table |= static_cast<uint32_t>(vals.back().second) << m;
        }
        if (k == 0) {
            // Fully constant cone (degenerate input); entry 0 decides.
            map[id] = (spec.table & 1) != 0 ? kConstTrue : kConstFalse;
        } else {
            std::vector<NodeId> ops;
            for (const NodeId leaf : leaves) ops.push_back(map[leaf]);
            map[id] = builder.MakeLut(std::move(spec), ops);
        }
        realized[id] = true;
    };

    // Demand-driven realization from the outputs: only the live cone is
    // lowered (built-in DCE, matching Optimize's rebuild).
    std::vector<NodeId> work;
    for (const NodeId out : in.Outputs()) {
        const NodeId base = lit[out].node;
        if (!realized[base]) work.push_back(base);
    }
    while (!work.empty()) {
        const NodeId id = work.back();
        if (realized[id]) {
            work.pop_back();
            continue;
        }
        bool ready = true;
        for (const NodeId leaf : cut[id]) {
            if (!realized[leaf]) {
                work.push_back(leaf);
                ready = false;
            }
        }
        if (ready) {
            emit(id);
            work.pop_back();
        }
    }

    // Count the NOT gates that vanished into tables: every live NOT-like
    // node in the input's output cone.
    {
        std::vector<bool> seen(n, false);
        std::vector<NodeId> stack(in.Outputs().begin(), in.Outputs().end());
        while (!stack.empty()) {
            const NodeId id = stack.back();
            stack.pop_back();
            if (seen[id]) continue;
            seen[id] = true;
            const Node& node = in.GetNode(id);
            if (node.kind != NodeKind::kGate) continue;
            if (IsNotLike(node.type)) ++result.stats.absorbed_nots;
            for (NodeId op : in.Operands(id))
                if (!seen[op]) stack.push_back(op);
        }
    }

    for (size_t i = 0; i < in.Outputs().size(); ++i) {
        const Lit l = lit[in.Outputs()[i]];
        NodeId sig;
        if (l.node <= kConstTrue) {
            sig = l.node;
        } else {
            sig = map[l.node];
            if (l.neg) {
                // Output-facing negation costs one LUT (as it cost one
                // bootstrapped NOT before); CSE dedupes repeats.
                LutSpec inv;
                inv.weights = {1};
                inv.table = 0b01;
                const NodeId ops[] = {sig};
                sig = builder.MakeLut(std::move(inv), ops);
            }
        }
        builder.AddOutput(sig, in.OutputName(i));
    }

    result.netlist = std::move(builder.netlist());
    result.stats.luts =
        result.netlist.ComputeStats()
            .gate_histogram[static_cast<size_t>(GateType::kLut)];
    return result;
}

}  // namespace pytfhe::circuit
