/**
 * @file
 * Linear-scan slot allocation over value live intervals — classic register
 * allocation applied to ciphertext storage. The circuit DAG is static at
 * compile time, so each value's live interval is exact (no spilling, no
 * heuristics): a value lives from the ordinal of its defining instruction
 * to the ordinal of its last reader, or forever when it is pinned (program
 * outputs must survive to harvest).
 *
 * Two reuse disciplines:
 *  - *sequential* — a slot is free as soon as its occupant's last reader
 *    has executed; the tightest packing, valid for in-order execution and
 *    for dependency-counting executors that schedule on anti-dependency
 *    edges (in-place reuse — destination slot == an operand's slot — is
 *    permitted because kernels read all operands before writing);
 *  - *level-safe* — a slot freed by a value whose last reader runs at wave
 *    level L is reassigned only to values defined at level >= L+1, so
 *    barrier-scheduled threads can never race a reader against the
 *    overwriting gate. Slightly looser packing, safe on every backend.
 */
#ifndef PYTFHE_CIRCUIT_OPT_SLOT_ALLOC_H
#define PYTFHE_CIRCUIT_OPT_SLOT_ALLOC_H

#include <cstdint>
#include <vector>

namespace pytfhe::circuit {

/**
 * One value's live interval. Values are presented in definition order
 * (their `def` ordinals strictly increase), which is what makes a single
 * linear scan sufficient.
 */
struct LiveInterval {
    /** Ordinal of the defining instruction. */
    uint64_t def = 0;
    /** Ordinal of the last reader; == def when the value has no readers. */
    uint64_t last_use = 0;
    /** Wave level of the defining instruction (inputs are level 0). */
    uint64_t def_level = 0;
    /** Wave level of the last reader; == def_level with no readers. */
    uint64_t death_level = 0;
    /** Pinned values (program outputs) never free their slot. */
    bool pinned = false;
};

/** The computed assignment: one physical slot per interval. */
struct SlotAssignment {
    std::vector<uint64_t> slot;  ///< Parallel to the interval list.
    uint64_t num_slots = 0;      ///< All slot entries are below this.
};

/**
 * Assigns a physical slot to each interval by linear scan. With
 * `level_safe` set, reuse honors the wave-level discipline above;
 * otherwise reuse is sequential-tight. Intervals must be sorted by `def`
 * (strictly increasing) and satisfy last_use >= def, death_level >=
 * def_level for readers; violating intervals are the caller's bug, not
 * detected here — the pasm loader independently re-validates any plan
 * before execution.
 */
SlotAssignment AssignSlots(const std::vector<LiveInterval>& intervals,
                           bool level_safe);

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_OPT_SLOT_ALLOC_H
