#include "circuit/opt/slot_alloc.h"

#include <cstddef>
#include <queue>
#include <utility>

namespace pytfhe::circuit {

namespace {

/** A slot whose occupant has a known expiry, waiting to become free. */
struct Expiring {
    uint64_t last_use = 0;
    uint64_t death_level = 0;
    uint64_t slot = 0;
    bool operator>(const Expiring& o) const { return last_use > o.last_use; }
};

}  // namespace

SlotAssignment AssignSlots(const std::vector<LiveInterval>& intervals,
                           bool level_safe) {
    SlotAssignment out;
    out.slot.resize(intervals.size());

    // Claimants arrive in increasing `def`, so slots migrate monotonically
    // from `pending` (occupant not yet dead by ordinal) to `ready`
    // (ordinal-free, keyed by the occupant's death level). A claimant
    // takes the ready slot with the smallest death level: if that one
    // violates the level discipline, every ready slot does.
    std::priority_queue<Expiring, std::vector<Expiring>, std::greater<>>
        pending;
    using LevelSlot = std::pair<uint64_t, uint64_t>;  // (death_level, slot)
    std::priority_queue<LevelSlot, std::vector<LevelSlot>,
                        std::greater<>>
        ready;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const LiveInterval& v = intervals[i];
        while (!pending.empty() && pending.top().last_use <= v.def) {
            ready.emplace(pending.top().death_level, pending.top().slot);
            pending.pop();
        }
        uint64_t slot;
        if (!ready.empty() &&
            (!level_safe || ready.top().first + 1 <= v.def_level)) {
            slot = ready.top().second;
            ready.pop();
        } else {
            slot = out.num_slots++;
        }
        out.slot[i] = slot;
        if (!v.pinned) pending.push({v.last_use, v.death_level, slot});
    }
    return out;
}

}  // namespace pytfhe::circuit
