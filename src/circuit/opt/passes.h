/**
 * @file
 * Netlist optimization passes — the stand-in for Yosys synthesis cleanup in
 * the original toolchain.
 *
 * A single rebuilding pass applies, in topological order:
 *  - constant folding (gates with constant or duplicate/complementary
 *    inputs reduce to constants, wires, or NOTs);
 *  - double-negation elimination;
 *  - NOT absorption into consumers using the rich TFHE gate set
 *    (e.g. AND(NOT a, b) -> ANDNY(a, b));
 *  - structural hashing / common-subexpression elimination with canonical
 *    operand order;
 *  - dead-code elimination (only the output cone is rebuilt).
 *
 * Each rewrite can be disabled individually, which the ablation benchmark
 * uses to attribute gate-count savings per pass.
 */
#ifndef PYTFHE_CIRCUIT_OPT_PASSES_H
#define PYTFHE_CIRCUIT_OPT_PASSES_H

#include "circuit/netlist.h"

namespace pytfhe::circuit {

/** Which rewrites to apply. Defaults: everything on. */
struct OptOptions {
    bool fold_constants = true;
    bool cse = true;
    bool absorb_not = true;
    bool dce = true;
};

/** Rewrite statistics for reporting and ablation. */
struct OptStats {
    uint64_t folded = 0;        ///< Constant/identity folds.
    uint64_t deduped = 0;       ///< CSE hits.
    uint64_t absorbed_nots = 0; ///< NOTs fused into consumers.
    uint64_t gates_before = 0;
    uint64_t gates_after = 0;

    std::string ToString() const;
};

/** Result of optimization. */
struct OptResult {
    Netlist netlist;
    OptStats stats;
};

/**
 * Optimizes a netlist. Semantics are preserved exactly: for every input
 * assignment the optimized circuit produces identical outputs (property
 * tests enforce this on random circuits).
 */
OptResult Optimize(const Netlist& input, const OptOptions& options = {});

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_OPT_PASSES_H
