/**
 * @file
 * Netlist optimization passes — the stand-in for Yosys synthesis cleanup in
 * the original toolchain.
 *
 * A single rebuilding pass applies, in topological order:
 *  - constant folding (gates with constant or duplicate/complementary
 *    inputs reduce to constants, wires, or NOTs);
 *  - double-negation elimination;
 *  - NOT absorption into consumers using the rich TFHE gate set
 *    (e.g. AND(NOT a, b) -> ANDNY(a, b));
 *  - structural hashing / common-subexpression elimination with canonical
 *    operand order;
 *  - dead-code elimination (only the output cone is rebuilt).
 *
 * Each rewrite can be disabled individually, which the ablation benchmark
 * uses to attribute gate-count savings per pass.
 */
#ifndef PYTFHE_CIRCUIT_OPT_PASSES_H
#define PYTFHE_CIRCUIT_OPT_PASSES_H

#include "circuit/netlist.h"
#include "tfhe/noise.h"
#include "tfhe/params.h"

namespace pytfhe::circuit {

/** Which rewrites to apply. Defaults: everything on. */
struct OptOptions {
    bool fold_constants = true;
    bool cse = true;
    bool absorb_not = true;
    bool dce = true;
};

/** Rewrite statistics for reporting and ablation. */
struct OptStats {
    uint64_t folded = 0;        ///< Constant/identity folds.
    uint64_t deduped = 0;       ///< CSE hits.
    uint64_t absorbed_nots = 0; ///< NOTs fused into consumers.
    uint64_t gates_before = 0;
    uint64_t gates_after = 0;

    std::string ToString() const;
};

/** Result of optimization. */
struct OptResult {
    Netlist netlist;
    OptStats stats;
};

/**
 * Optimizes a netlist. Semantics are preserved exactly: for every input
 * assignment the optimized circuit produces identical outputs (property
 * tests enforce this on random circuits).
 */
OptResult Optimize(const Netlist& input, const OptOptions& options = {});

// ----------------------------------------------------------------------
// Noise-budget-aware bootstrap elision.
//
// XOR/XNOR/NOT are exact linear operations on LWE ciphertexts; the pass
// rewrites them to kLinXor/kLinXnor/kLinNot (skipping the blind-rotate +
// key-switch pipeline) whenever the CGGI noise model proves that every
// downstream decision — the sign bootstrap of each consuming gate and the
// sign decryption of each circuit output — keeps its failure probability
// under the per-gate bound. A gate is structurally eligible only when all
// its consumers can absorb the linear encoding (XOR/XNOR family, NOT
// chains that are themselves eligible, and outputs); AND-family consumers
// are parity-locked and can never absorb it (see DESIGN.md).

/** Knobs of the elision pass. */
struct ElisionOptions {
    bool enabled = true;
    /** Multiplier on predicted variances before the failure check. */
    double safety_margin = tfhe::kDefaultElisionSafetyMargin;
    /** Per-decision failure bound (matches CheckParams' default). */
    double max_failure = tfhe::kDefaultMaxGateFailure;
    /** Cap on chained linear gates; 0 derives it from the noise model. */
    int32_t max_linear_depth = 0;
};

/** What the pass did, for reporting and the elision benchmark. */
struct ElisionStats {
    uint64_t elided_xor = 0;
    uint64_t elided_xnor = 0;
    uint64_t elided_not = 0;       ///< NOTs retyped to kLinNot.
    uint64_t refused_consumer = 0; ///< Kept bootstrapped: AND-family user.
    uint64_t refused_noise = 0;    ///< Un-elided to keep a sink in budget.
    uint64_t refused_depth = 0;    ///< Un-elided by the chain-depth cap.
    uint64_t bootstraps_before = 0;
    uint64_t bootstraps_after = 0;
    double worst_sink_failure = 0.0;  ///< Over all decisions, post-pass.
    int32_t max_linear_depth = 0;     ///< Deepest chain actually emitted.
    int32_t depth_cap = 0;            ///< The cap that was in force.

    std::string ToString() const;
};

/** Result of the elision pass. */
struct ElisionResult {
    Netlist netlist;
    ElisionStats stats;
};

/**
 * Runs bootstrap elision against the noise budget of `params` (the
 * parameter set the program will execute under — the analysis is only
 * valid for ciphertexts of that set). Returns a netlist with identical
 * structure and plaintext semantics where some XOR/XNOR/NOT nodes carry
 * their kLin* types. With options.enabled == false the input is returned
 * unchanged (the compiler's --no-elide escape hatch).
 */
ElisionResult ElideBootstraps(const Netlist& input,
                              const tfhe::Params& params,
                              const ElisionOptions& options = {});

/**
 * Worst-case phase-variance propagation over a netlist (which may already
 * contain linear gates). variance[id] is the phase variance of node id's
 * ciphertext; linear_depth[id] counts the chained linear XOR/XNORs ending
 * at id (0 for bootstrapped/input nodes). worst_sink_failure is the
 * largest predicted failure probability over every bootstrapped gate's
 * sign decision and every output's sign decryption — no safety margin
 * applied; callers add their own slack.
 */
struct NoiseBudget {
    std::vector<double> variance;
    std::vector<int32_t> linear_depth;
    double worst_sink_failure = 0.0;
};

NoiseBudget AnalyzeNoiseBudget(const Netlist& netlist,
                               const tfhe::NoiseAnalysis& noise);

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_OPT_PASSES_H
