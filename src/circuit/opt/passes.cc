#include "circuit/opt/passes.h"

#include <algorithm>
#include <sstream>

#include "circuit/builder.h"

namespace pytfhe::circuit {

namespace {

/** One rebuild sweep through SimplifyingBuilder. */
Netlist RebuildOnce(const Netlist& in, const OptOptions& opts,
                    OptStats& stats) {
    // Liveness: only rebuild the output cone when DCE is on.
    std::vector<bool> live(in.NumNodes(), !opts.dce);
    if (opts.dce) {
        std::vector<NodeId> stack(in.Outputs().begin(), in.Outputs().end());
        for (NodeId id : in.Inputs()) live[id] = true;
        while (!stack.empty()) {
            const NodeId id = stack.back();
            stack.pop_back();
            if (live[id]) continue;
            live[id] = true;
            const Node& n = in.GetNode(id);
            if (n.kind == NodeKind::kGate) {
                for (NodeId op : in.Operands(id))
                    if (!live[op]) stack.push_back(op);
            }
        }
    }

    SimplifyingBuilder builder(BuilderOptions{
        opts.fold_constants, opts.cse, opts.absorb_not});
    if (in.MessageModulus() > 0)
        builder.SetMessageModulus(in.MessageModulus());
    std::vector<NodeId> map(in.NumNodes(), kConstFalse);
    map[kConstTrue] = kConstTrue;
    size_t input_idx = 0;
    std::vector<NodeId> mapped_ops;
    for (NodeId id = 2; id < in.NumNodes(); ++id) {
        const Node& n = in.GetNode(id);
        if (n.kind == NodeKind::kInput) {
            // Inputs are always preserved, in order.
            map[id] = builder.MakeInput(in.InputName(input_idx++));
            continue;
        }
        if (!live[id]) continue;
        if (n.type == GateType::kLut) {
            mapped_ops.clear();
            for (NodeId op : in.Operands(id)) mapped_ops.push_back(map[op]);
            map[id] = builder.MakeLut(in.Lut(id), mapped_ops);
        } else {
            map[id] = builder.MakeGate(n.type, map[in.Op(id, 0)],
                                       map[in.Op(id, 1)]);
        }
    }
    for (size_t i = 0; i < in.Outputs().size(); ++i)
        builder.AddOutput(map[in.Outputs()[i]], in.OutputName(i));

    stats.folded += builder.stats().folded;
    stats.deduped += builder.stats().deduped;
    stats.absorbed_nots += builder.stats().absorbed_nots;
    return std::move(builder.netlist());
}

}  // namespace

std::string OptStats::ToString() const {
    std::ostringstream os;
    os << "gates " << gates_before << " -> " << gates_after << " (folded "
       << folded << ", cse " << deduped << ", not-absorbed " << absorbed_nots
       << ")";
    return os.str();
}

OptResult Optimize(const Netlist& input, const OptOptions& options) {
    OptResult result{Netlist{}, OptStats{}};
    result.stats.gates_before = input.NumGates();

    Netlist current = RebuildOnce(input, options, result.stats);
    // NOT absorption can orphan nodes; rebuild until the size is stable
    // (bounded: each sweep only shrinks the netlist).
    for (int iter = 0; iter < 4; ++iter) {
        Netlist next = RebuildOnce(current, options, result.stats);
        const bool stable = next.NumGates() == current.NumGates();
        current = std::move(next);
        if (stable) break;
    }

    result.stats.gates_after = current.NumGates();
    result.netlist = std::move(current);
    return result;
}

// ----------------------------------------------------------------------
// Bootstrap elision.

namespace {

/** Coefficient an operand enters a XOR/XNOR combination with. */
constexpr double XorCoef(bool operand_linear) {
    return operand_linear ? 1.0 : 2.0;
}

/**
 * Variance of c_a*a + c_b*b under the worst-case-independence heuristic,
 * handling the duplicated-operand case (same sample, amplitudes add).
 */
double ComboVariance(double ca, double va, double cb, double vb, bool same) {
    if (same) return (ca + cb) * (ca + cb) * va;
    return ca * ca * va + cb * cb * vb;
}

/** Variance + margin of a bootstrapped gate's sign decision. */
struct Decision {
    double variance;
    double margin;
};

Decision GateDecision(GateType t, double va, bool la, double vb, bool lb,
                      bool same, const tfhe::NoiseAnalysis& noise) {
    if (t == GateType::kXor || t == GateType::kXnor) {
        // c*a + c*b +- 1/4 sits at distance 1/4 from the sign boundary.
        return {ComboVariance(XorCoef(la), va, XorCoef(lb), vb, same) +
                    noise.mod_switch_variance,
                tfhe::kLinearDecisionMargin};
    }
    // AND family: +-1 coefficients, +-1/8 offset, 1/8 margin. Validation
    // guarantees these never see a linear-domain operand.
    return {ComboVariance(1.0, va, 1.0, vb, same) + noise.mod_switch_variance,
            tfhe::kGateDecisionMargin};
}

/**
 * The whole pass as a little state machine: reverse-topological
 * structural eligibility, then one forward variance sweep that greedily
 * un-elides chain roots whenever a sink's decision would leave the
 * failure budget. Un-elision only ever lowers downstream variance and
 * depth, so checks that already passed stay valid and each node is
 * un-elided at most once.
 */
class ElisionPass {
  public:
    ElisionPass(const Netlist& in, const tfhe::NoiseAnalysis& noise,
                const ElisionOptions& opt, int32_t cap)
        : in_(in), noise_(noise), opt_(opt), cap_(cap) {}

    ElisionResult Run() {
        const size_t n = in_.NumNodes();
        elide_.assign(n, 0);
        lin_.assign(n, 0);
        var_.assign(n, 0.0);
        depth_.assign(n, 0);
        MarkEligibility();
        // Un-eliding a node mid-sweep can *raise* the variance its earlier
        // consumers already accounted (a gate-domain XOR operand enters
        // with coefficient 2), so sweep to a fixpoint: elide_ only ever
        // shrinks, each refusal clears one flag, and the final sweep ran
        // with no changes — every decision was judged on final variances.
        uint64_t refusals;
        do {
            refusals = stats_.refused_noise + stats_.refused_depth;
            ForwardPass();
            CheckOutputs();
        } while (stats_.refused_noise + stats_.refused_depth != refusals);
        return Rebuild();
    }

  private:
    /** Node type with any pre-existing linear gates dropped to base form. */
    GateType BaseType(NodeId id) const {
        return BootstrappedForm(in_.GetNode(id).type);
    }

    NodeId A(NodeId id) const { return in_.Op(id, 0); }
    NodeId B(NodeId id) const { return in_.Op(id, 1); }

    /**
     * elide_[id] (for XOR/XNOR/NOT nodes) = every consumer can absorb a
     * linear-domain operand. Consumers have larger ids, so a reverse scan
     * sees their eligibility first.
     */
    void MarkEligibility() {
        const size_t n = in_.NumNodes();
        // blocked[id] = some consumer of id cannot absorb a linear-domain
        // operand. Consumers have larger ids, so one reverse sweep sees
        // every consumer's verdict before deciding a node — no explicit
        // consumer lists needed.
        std::vector<uint8_t> blocked(n, 0);
        for (NodeId id = n; id-- > 2;) {
            const Node& node = in_.GetNode(id);
            if (node.kind != NodeKind::kGate) continue;
            const GateType t = BaseType(id);
            const bool xorlike = t == GateType::kXor || t == GateType::kXnor;
            if (xorlike || t == GateType::kNot)
                elide_[id] = !blocked[id];
            // XOR/XNOR absorb linear operands whether or not they elide;
            // a NOT only via its kLinNot form, i.e. when itself eligible.
            const bool absorbs =
                xorlike || (t == GateType::kNot && elide_[id]);
            if (!absorbs) {
                for (NodeId op : in_.Operands(id)) blocked[op] = 1;
            }
            if (xorlike && !elide_[id]) ++stats_.refused_consumer;
        }
    }

    void ForwardPass() {
        const size_t n = in_.NumNodes();
        for (NodeId id = 0; id < n; ++id) {
            const Node& node = in_.GetNode(id);
            switch (node.kind) {
                case NodeKind::kConst:
                    var_[id] = 0.0;
                    break;
                case NodeKind::kInput:
                    var_[id] = noise_.fresh_lwe_variance;
                    break;
                case NodeKind::kGate:
                    ComputeGate(id);
                    break;
            }
        }
    }

    void ComputeGate(NodeId id) {
        const NodeId a = A(id);
        const GateType t = BaseType(id);
        if (t == GateType::kNot) {
            // Becomes kLinNot exactly when the operand ends up linear;
            // either way negation preserves variance.
            lin_[id] = elide_[id] && lin_[a];
            var_[id] = var_[a];
            depth_[id] = depth_[a];
            return;
        }
        const NodeId b = B(id);
        if (elide_[id]) {
            const int32_t d = 1 + std::max(lin_[a] ? depth_[a] : 0,
                                           lin_[b] ? depth_[b] : 0);
            if (d > cap_) {
                elide_[id] = 0;
                ++stats_.refused_depth;
            } else {
                lin_[id] = 1;
                depth_[id] = d;
                var_[id] = ComboVariance(XorCoef(lin_[a]), var_[a],
                                         XorCoef(lin_[b]), var_[b], a == b);
                return;
            }
        }
        ComputeBootstrapped(id);
    }

    /** Decision check of a bootstrapped gate, un-eliding until in budget. */
    void ComputeBootstrapped(NodeId id) {
        const NodeId a = A(id);
        const NodeId b = B(id);
        const GateType t = BaseType(id);
        while (true) {
            const Decision d = GateDecision(t, var_[a], lin_[a], var_[b],
                                            lin_[b], a == b, noise_);
            if (tfhe::FailureProbability(opt_.safety_margin * d.variance,
                                         d.margin) <= opt_.max_failure)
                break;
            if (!UnelideWorstOperand(a, b)) break;  // All gate-domain.
        }
        lin_[id] = 0;
        depth_[id] = 0;
        var_[id] = noise_.gate_output_variance;
    }

    /**
     * Un-elides the linear operand (of a or b) with the larger variance
     * (its chain root: LinNots forward to the XOR/XNOR that owns the
     * encoding). Returns false when neither operand is linear.
     */
    bool UnelideWorstOperand(NodeId a, NodeId b) {
        NodeId victim;
        if (lin_[a] && (!lin_[b] || var_[a] >= var_[b])) {
            victim = a;
        } else if (lin_[b]) {
            victim = b;
        } else {
            return false;
        }
        ++stats_.refused_noise;
        // Walk down the LinNot chain to the owning XOR/XNOR.
        std::vector<NodeId> nots;
        while (BaseType(victim) == GateType::kNot) {
            nots.push_back(victim);
            victim = A(victim);
        }
        elide_[victim] = 0;
        ComputeBootstrapped(victim);  // May recursively un-elide further.
        // The NOT chain above reverts to plain gate-domain NOTs.
        for (auto it = nots.rbegin(); it != nots.rend(); ++it) {
            const NodeId m = *it;
            lin_[m] = 0;
            var_[m] = var_[A(m)];
            depth_[m] = 0;
        }
        return true;
    }

    /** Output sinks decide by decryption sign; margin set by encoding. */
    void CheckOutputs() {
        for (NodeId id : in_.Outputs()) {
            // Gate-domain outputs carry at most one bootstrapped sample's
            // variance, already covered by the per-gate analysis.
            while (lin_[id] &&
                   tfhe::FailureProbability(opt_.safety_margin * var_[id],
                                            tfhe::kLinearDecisionMargin) >
                       opt_.max_failure) {
                // Reuse the operand walker on a synthetic edge to id; it
                // resets lin_[id] via the chain recompute.
                UnelideWorstOperand(id, id);
            }
        }
    }

    ElisionResult Rebuild() {
        Netlist out;
        size_t input_idx = 0;
        int32_t max_depth = 0;
        for (NodeId id = 2; id < in_.NumNodes(); ++id) {
            const Node& node = in_.GetNode(id);
            if (node.kind == NodeKind::kInput) {
                out.AddInput(in_.InputName(input_idx++));
                continue;
            }
            GateType t = BaseType(id);
            if (t == GateType::kNot) {
                if (lin_[id]) t = GateType::kLinNot;
            } else if (elide_[id]) {
                t = LinearForm(t);
            }
            out.AddGate(t, A(id), B(id));
            switch (t) {
                case GateType::kLinXor: ++stats_.elided_xor; break;
                case GateType::kLinXnor: ++stats_.elided_xnor; break;
                case GateType::kLinNot: ++stats_.elided_not; break;
                default:
                    if (NeedsBootstrap(t)) ++stats_.bootstraps_after;
                    break;
            }
            max_depth = std::max(max_depth, depth_[id]);
        }
        for (size_t i = 0; i < in_.Outputs().size(); ++i)
            out.AddOutput(in_.Outputs()[i], in_.OutputName(i));
        stats_.max_linear_depth = max_depth;
        stats_.depth_cap = cap_;
        // Raw (no safety margin) predicted failure of the final netlist.
        stats_.worst_sink_failure =
            AnalyzeNoiseBudget(out, noise_).worst_sink_failure;
        return ElisionResult{std::move(out), stats_};
    }

    const Netlist& in_;
    const tfhe::NoiseAnalysis& noise_;
    const ElisionOptions& opt_;
    const int32_t cap_;
    std::vector<uint8_t> elide_;   ///< Candidate decision per node.
    std::vector<uint8_t> lin_;     ///< Final: node carries +-1/4 encoding.
    std::vector<double> var_;      ///< Phase variance per node.
    std::vector<int32_t> depth_;   ///< Chained linear gates ending here.
    ElisionStats stats_;
};

uint64_t CountBootstraps(const Netlist& nl) {
    uint64_t count = 0;
    for (NodeId id = 0; id < nl.NumNodes(); ++id) {
        const Node& n = nl.GetNode(id);
        if (n.kind == NodeKind::kGate && NeedsBootstrap(n.type)) ++count;
    }
    return count;
}

}  // namespace

std::string ElisionStats::ToString() const {
    std::ostringstream os;
    os << "bootstraps " << bootstraps_before << " -> " << bootstraps_after
       << " (elided xor " << elided_xor << ", xnor " << elided_xnor
       << ", not " << elided_not << "; refused: consumer "
       << refused_consumer << ", noise " << refused_noise << ", depth "
       << refused_depth << "; chain depth " << max_linear_depth << "/"
       << depth_cap << ", worst sink failure " << worst_sink_failure << ")";
    return os.str();
}

NoiseBudget AnalyzeNoiseBudget(const Netlist& netlist,
                               const tfhe::NoiseAnalysis& noise) {
    NoiseBudget b;
    const size_t n = netlist.NumNodes();
    b.variance.assign(n, 0.0);
    b.linear_depth.assign(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        const Node& node = netlist.GetNode(id);
        if (node.kind == NodeKind::kInput) {
            b.variance[id] = noise.fresh_lwe_variance;
            continue;
        }
        if (node.kind != NodeKind::kGate) continue;
        if (node.type == GateType::kLut) {
            // Multibit LUT gates reset noise by construction (one
            // bootstrap each); their packing-failure model lives in
            // tfhe::CheckMultibitParams, not in this boolean analysis.
            b.variance[id] = noise.gate_output_variance;
            continue;
        }
        const NodeId a_id = netlist.Op(id, 0);
        const NodeId b_id = netlist.Op(id, 1);
        const double va = b.variance[a_id];
        const double vb = b.variance[b_id];
        const bool la = netlist.ProducesLinearDomain(a_id);
        const bool lb = netlist.ProducesLinearDomain(b_id);
        const bool same = a_id == b_id;
        switch (node.type) {
            case GateType::kNot:
            case GateType::kLinNot:
                b.variance[id] = va;
                b.linear_depth[id] = b.linear_depth[a_id];
                break;
            case GateType::kLinXor:
            case GateType::kLinXnor:
                b.variance[id] =
                    ComboVariance(XorCoef(la), va, XorCoef(lb), vb, same);
                b.linear_depth[id] =
                    1 + std::max(la ? b.linear_depth[a_id] : 0,
                                 lb ? b.linear_depth[b_id] : 0);
                break;
            default: {
                const Decision d =
                    GateDecision(node.type, va, la, vb, lb, same, noise);
                b.worst_sink_failure =
                    std::max(b.worst_sink_failure,
                             tfhe::FailureProbability(d.variance, d.margin));
                b.variance[id] = noise.gate_output_variance;
                break;
            }
        }
    }
    for (NodeId id : netlist.Outputs()) {
        const double margin = netlist.ProducesLinearDomain(id)
                                  ? tfhe::kLinearDecisionMargin
                                  : tfhe::kGateDecisionMargin;
        b.worst_sink_failure =
            std::max(b.worst_sink_failure,
                     tfhe::FailureProbability(b.variance[id], margin));
    }
    return b;
}

ElisionResult ElideBootstraps(const Netlist& input,
                              const tfhe::Params& params,
                              const ElisionOptions& options) {
    ElisionStats stats;
    stats.bootstraps_before = CountBootstraps(input);
    // Multibit netlists pass through untouched: every kLut gate already
    // costs exactly one bootstrap and there is no boolean linear form to
    // elide into (digit wires use the (2v+1)/(4p) encoding).
    if (!options.enabled || input.MessageModulus() > 0) {
        stats.bootstraps_after = stats.bootstraps_before;
        return ElisionResult{input, stats};
    }
    const tfhe::NoiseAnalysis noise =
        tfhe::AnalyzeNoise(params, options.safety_margin);
    const int32_t cap =
        options.max_linear_depth > 0
            ? options.max_linear_depth
            : tfhe::MaxLinearDepth(noise, options.max_failure,
                                   options.safety_margin);
    if (cap <= 0) {
        stats.bootstraps_after = stats.bootstraps_before;
        stats.depth_cap = 0;
        return ElisionResult{input, stats};
    }
    ElisionPass pass(input, noise, options, cap);
    ElisionResult result = pass.Run();
    result.stats.bootstraps_before = stats.bootstraps_before;
    return result;
}

}  // namespace pytfhe::circuit
