#include "circuit/opt/passes.h"

#include <sstream>

#include "circuit/builder.h"

namespace pytfhe::circuit {

namespace {

/** One rebuild sweep through SimplifyingBuilder. */
Netlist RebuildOnce(const Netlist& in, const OptOptions& opts,
                    OptStats& stats) {
    // Liveness: only rebuild the output cone when DCE is on.
    std::vector<bool> live(in.NumNodes(), !opts.dce);
    if (opts.dce) {
        std::vector<NodeId> stack(in.Outputs().begin(), in.Outputs().end());
        for (NodeId id : in.Inputs()) live[id] = true;
        while (!stack.empty()) {
            const NodeId id = stack.back();
            stack.pop_back();
            if (live[id]) continue;
            live[id] = true;
            const Node& n = in.GetNode(id);
            if (n.kind == NodeKind::kGate) {
                if (!live[n.in0]) stack.push_back(n.in0);
                if (!live[n.in1]) stack.push_back(n.in1);
            }
        }
    }

    SimplifyingBuilder builder(BuilderOptions{
        opts.fold_constants, opts.cse, opts.absorb_not});
    std::vector<NodeId> map(in.NumNodes(), kConstFalse);
    map[kConstTrue] = kConstTrue;
    size_t input_idx = 0;
    for (NodeId id = 2; id < in.NumNodes(); ++id) {
        const Node& n = in.GetNode(id);
        if (n.kind == NodeKind::kInput) {
            // Inputs are always preserved, in order.
            map[id] = builder.MakeInput(in.InputName(input_idx++));
            continue;
        }
        if (!live[id]) continue;
        map[id] = builder.MakeGate(n.type, map[n.in0], map[n.in1]);
    }
    for (size_t i = 0; i < in.Outputs().size(); ++i)
        builder.AddOutput(map[in.Outputs()[i]], in.OutputName(i));

    stats.folded += builder.stats().folded;
    stats.deduped += builder.stats().deduped;
    stats.absorbed_nots += builder.stats().absorbed_nots;
    return std::move(builder.netlist());
}

}  // namespace

std::string OptStats::ToString() const {
    std::ostringstream os;
    os << "gates " << gates_before << " -> " << gates_after << " (folded "
       << folded << ", cse " << deduped << ", not-absorbed " << absorbed_nots
       << ")";
    return os.str();
}

OptResult Optimize(const Netlist& input, const OptOptions& options) {
    OptResult result{Netlist{}, OptStats{}};
    result.stats.gates_before = input.NumGates();

    Netlist current = RebuildOnce(input, options, result.stats);
    // NOT absorption can orphan nodes; rebuild until the size is stable
    // (bounded: each sweep only shrinks the netlist).
    for (int iter = 0; iter < 4; ++iter) {
        Netlist next = RebuildOnce(current, options, result.stats);
        const bool stable = next.NumGates() == current.NumGates();
        current = std::move(next);
        if (stable) break;
    }

    result.stats.gates_after = current.NumGates();
    result.netlist = std::move(current);
    return result;
}

}  // namespace pytfhe::circuit
