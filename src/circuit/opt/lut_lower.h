/**
 * @file
 * Boolean-to-LUT lowering: converts any classic-gate netlist into a
 * homogeneous multibit (all-kLut) netlist for programmable-bootstrap
 * execution. This is the generic path behind `pytfhec --multibit=k` and
 * core::CompileOptions::multibit; the hdl word generators
 * (hdl/multibit_ops.h) build structured LUTs directly and do better on
 * arithmetic, but this pass handles arbitrary circuits.
 *
 * The lowering is a small cone mapper:
 *  - NOT (and kLinNot) chains vanish: negations fold into every
 *    consumer's table, whatever the fanout, because flipping table bits
 *    is free.
 *  - Each remaining gate becomes one LUT over its cone's leaves, packed
 *    with binary weights 1, 2, 4, ... so the weighted sum IS the leaf
 *    assignment index.
 *  - Single-fanout operand gates are absorbed into their consumer's
 *    cone while the leaf count stays within `max_cone_leaves` (also
 *    capped by the message modulus — 2^k leaf assignments must fit p
 *    table slots — and by the noise budget on sum w_i^2, which is
 *    (4^k - 1)/3 for binary weights). A MUX pair collapses to one LUT3;
 *    a full-adder carry cone to one LUT4.
 *
 * Every absorbed gate is a bootstrap saved; every gate that survives
 * costs exactly one bootstrap, same as before — so the lowered netlist
 * never bootstraps more than the boolean one, minus what elision would
 * have saved (linear XORs do cost a bootstrap again; see DESIGN.md for
 * when multibit still wins).
 */
#ifndef PYTFHE_CIRCUIT_OPT_LUT_LOWER_H
#define PYTFHE_CIRCUIT_OPT_LUT_LOWER_H

#include <string>

#include "circuit/netlist.h"

namespace pytfhe::circuit {

/** Knobs of the boolean-to-LUT lowering. */
struct LutLowerOptions {
    /** Target message modulus p (power of two, 4 <= p <= 16). */
    int32_t message_modulus = 16;
    /**
     * Largest sum of squared weights a lowered LUT may carry; the noise
     * budget of the parameter set (tfhe::MaxMultibitWeightBudget). The
     * default admits 4-leaf cones (1+4+16+64 = 85).
     */
    int64_t weight_budget = 85;
    /** Cap on leaves per merged cone, before the modulus/budget caps. */
    int32_t max_cone_leaves = 4;
};

/** What the lowering did, for reporting. */
struct LutLowerStats {
    uint64_t luts = 0;           ///< LUT gates in the lowered netlist.
    uint64_t merged_gates = 0;   ///< Boolean gates absorbed into a cone.
    uint64_t absorbed_nots = 0;  ///< NOT gates folded into tables.

    std::string ToString() const;
};

/** Result of LowerToLuts. */
struct LutLowerResult {
    Netlist netlist;
    LutLowerStats stats;
};

/**
 * Lowers a boolean netlist to a homogeneous multibit netlist under the
 * given modulus. Semantics are preserved exactly (1-bit digits in, 1-bit
 * digits out, same truth table). Throws UnsupportedGateError when the
 * input is already multibit or the modulus is outside {4, 8, 16}.
 */
LutLowerResult LowerToLuts(const Netlist& input,
                           const LutLowerOptions& options = {});

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_OPT_LUT_LOWER_H
