#include "circuit/builder.h"

#include <cassert>

namespace pytfhe::circuit {

namespace {

/** The gate type computing the same function with operands swapped. */
GateType SwappedGate(GateType t) {
    switch (t) {
        case GateType::kAndNY: return GateType::kAndYN;
        case GateType::kAndYN: return GateType::kAndNY;
        case GateType::kOrNY: return GateType::kOrYN;
        case GateType::kOrYN: return GateType::kOrNY;
        default: return t;  // Commutative gates and NOT.
    }
}

}  // namespace

std::optional<NodeId> SimplifyingBuilder::NotInputOf(NodeId id) const {
    const Node& n = out_.GetNode(id);
    if (n.kind == NodeKind::kGate && n.type == GateType::kNot) return n.in0;
    return std::nullopt;
}

NodeId SimplifyingBuilder::MakeNot(NodeId a) {
    if (opts_.fold_constants) {
        if (a == kConstFalse) return kConstTrue;
        if (a == kConstTrue) return kConstFalse;
        if (auto inner = NotInputOf(a)) {
            ++stats_.folded;
            return *inner;
        }
    }
    if (opts_.absorb_not && opts_.cse) {
        // NOT of a binary gate becomes the negated gate directly — but
        // only when CSE is on: without it, negating a gate that has other
        // consumers duplicates logic instead of saving the (noiseless)
        // NOT. Only pay when the negated twin already exists.
        const Node& n = out_.GetNode(a);
        if (n.kind == NodeKind::kGate && n.type != GateType::kNot) {
            const GateKey key{NegatedGate(n.type), n.in0, n.in1};
            auto it = cse_.find(key);
            if (it != cse_.end()) {
                ++stats_.absorbed_nots;
                return it->second;
            }
        }
    }
    return Emit(GateType::kNot, a, a);
}

NodeId SimplifyingBuilder::MakeGate(GateType t, NodeId a, NodeId b) {
    // Linear gates are an execution detail chosen by the elision pass from
    // whole-DAG noise analysis; rebuilding through the builder drops them to
    // their bootstrapped form and lets the pass re-derive elision afterwards.
    t = BootstrappedForm(t);
    if (t == GateType::kNot) return MakeNot(a);

    if (opts_.basic_gates_only) {
        assert(!opts_.absorb_not && "absorb_not would undo the lowering");
        switch (t) {
            case GateType::kNand:
                return MakeNot(MakeGate(GateType::kAnd, a, b));
            case GateType::kNor:
                return MakeNot(MakeGate(GateType::kOr, a, b));
            case GateType::kXnor:
                return MakeNot(MakeGate(GateType::kXor, a, b));
            case GateType::kAndNY:
                return MakeGate(GateType::kAnd, MakeNot(a), b);
            case GateType::kAndYN:
                return MakeGate(GateType::kAnd, a, MakeNot(b));
            case GateType::kOrNY:
                return MakeGate(GateType::kOr, MakeNot(a), b);
            case GateType::kOrYN:
                return MakeGate(GateType::kOr, a, MakeNot(b));
            default:
                break;  // AND/OR/XOR pass through.
        }
    }

    if (opts_.absorb_not) {
        bool changed = true;
        while (changed) {
            changed = false;
            if (auto inner = NotInputOf(a)) {
                t = GateWithFirstInputNegated(t);
                a = *inner;
                ++stats_.absorbed_nots;
                changed = true;
            }
            if (auto inner = NotInputOf(b)) {
                t = GateWithSecondInputNegated(t);
                b = *inner;
                ++stats_.absorbed_nots;
                changed = true;
            }
        }
    }

    if (opts_.fold_constants) {
        const bool a_const = a <= kConstTrue;
        const bool b_const = b <= kConstTrue;
        if (a_const && b_const) {
            ++stats_.folded;
            return EvalGate(t, a == kConstTrue, b == kConstTrue) ? kConstTrue
                                                                 : kConstFalse;
        }
        if (a_const) {
            ++stats_.folded;
            return UnaryOf(t, b, /*fixed_first=*/true, a == kConstTrue);
        }
        if (b_const) {
            ++stats_.folded;
            return UnaryOf(t, a, /*fixed_first=*/false, b == kConstTrue);
        }
        if (a == b) {
            ++stats_.folded;
            return FromTruth(EvalGate(t, false, false), EvalGate(t, true, true),
                             a);
        }
    }

    if (a > b) {
        t = SwappedGate(t);
        std::swap(a, b);
    }
    return Emit(t, a, b);
}

NodeId SimplifyingBuilder::MakeMux(NodeId sel, NodeId t, NodeId f) {
    if (opts_.fold_constants) {
        if (sel == kConstTrue) return t;
        if (sel == kConstFalse) return f;
        if (t == f) return t;
        // Constant arms collapse to a single gate.
        if (t == kConstTrue) return MakeGate(GateType::kOr, sel, f);
        if (t == kConstFalse) return MakeGate(GateType::kAndNY, sel, f);
        if (f == kConstTrue) return MakeGate(GateType::kOrNY, sel, t);
        if (f == kConstFalse) return MakeGate(GateType::kAnd, sel, t);
    }
    // sel ? t : f == (sel AND t) OR (NOT sel AND f). With folding enabled,
    // constant t/f collapse the arms (e.g. t == 1 gives OR(sel, f)).
    const NodeId arm_t = MakeGate(GateType::kAnd, sel, t);
    const NodeId arm_f = MakeGate(GateType::kAndNY, sel, f);
    return MakeGate(GateType::kOr, arm_t, arm_f);
}

std::vector<NodeId> SimplifyingBuilder::MakeWideGate(
    GateType t, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
    std::vector<NodeId> results;
    results.reserve(pairs.size());
    // Fresh bootstrapped gates bucketed by their emitted type: absorb_not
    // can rewrite e.g. AND(NOT a, b) into ANDNY, splitting one logical
    // wide op across types, and each bucket batches independently.
    std::unordered_map<GateType, std::vector<NodeId>> fresh;
    for (const auto& [a, b] : pairs) {
        const NodeId before = out_.NumNodes();
        const NodeId id = MakeGate(t, a, b);
        results.push_back(id);
        // A folded/deduped result reuses an existing node (id < before)
        // and stays out of the group; a gate already executed once per
        // program cannot be re-batched.
        if (id < before) continue;
        const GateType emitted = out_.GetNode(id).type;
        if (NeedsBootstrap(emitted)) fresh[emitted].push_back(id);
    }
    for (auto& [type, members] : fresh) {
        if (members.size() >= 2) out_.AddWideGroup(std::move(members));
    }
    return results;
}

NodeId SimplifyingBuilder::UnaryOf(GateType t, NodeId x, bool fixed_first,
                                   bool cval) {
    const bool r0 =
        fixed_first ? EvalGate(t, cval, false) : EvalGate(t, false, cval);
    const bool r1 =
        fixed_first ? EvalGate(t, cval, true) : EvalGate(t, true, cval);
    return FromTruth(r0, r1, x);
}

NodeId SimplifyingBuilder::FromTruth(bool r0, bool r1, NodeId x) {
    if (r0 == r1) return r0 ? kConstTrue : kConstFalse;
    if (!r0 && r1) return x;
    return MakeNot(x);
}

NodeId SimplifyingBuilder::Emit(GateType t, NodeId a, NodeId b) {
    if (opts_.cse) {
        const GateKey key{t, a, b};
        auto it = cse_.find(key);
        if (it != cse_.end()) {
            ++stats_.deduped;
            return it->second;
        }
        const NodeId id = out_.AddGate(t, a, b);
        cse_.emplace(key, id);
        return id;
    }
    return out_.AddGate(t, a, b);
}

}  // namespace pytfhe::circuit
