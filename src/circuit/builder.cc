#include "circuit/builder.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace pytfhe::circuit {

namespace {

/** The gate type computing the same function with operands swapped. */
GateType SwappedGate(GateType t) {
    switch (t) {
        case GateType::kAndNY: return GateType::kAndYN;
        case GateType::kAndYN: return GateType::kAndNY;
        case GateType::kOrNY: return GateType::kOrYN;
        case GateType::kOrYN: return GateType::kOrNY;
        default: return t;  // Commutative gates and NOT.
    }
}

}  // namespace

std::optional<NodeId> SimplifyingBuilder::NotInputOf(NodeId id) const {
    const Node& n = out_.GetNode(id);
    if (n.kind == NodeKind::kGate && n.type == GateType::kNot) {
        return out_.Op(id, 0);
    }
    return std::nullopt;
}

NodeId SimplifyingBuilder::MakeNot(NodeId a) {
    if (opts_.fold_constants) {
        if (a == kConstFalse) return kConstTrue;
        if (a == kConstTrue) return kConstFalse;
        if (auto inner = NotInputOf(a)) {
            ++stats_.folded;
            return *inner;
        }
    }
    if (opts_.absorb_not && opts_.cse) {
        // NOT of a binary gate becomes the negated gate directly — but
        // only when CSE is on: without it, negating a gate that has other
        // consumers duplicates logic instead of saving the (noiseless)
        // NOT. Only pay when the negated twin already exists.
        const Node& n = out_.GetNode(a);
        if (n.kind == NodeKind::kGate && n.type != GateType::kNot &&
            n.type != GateType::kLut) {
            const GateKey key{NegatedGate(n.type), out_.Op(a, 0), out_.Op(a, 1)};
            auto it = cse_.find(key);
            if (it != cse_.end()) {
                ++stats_.absorbed_nots;
                return it->second;
            }
        }
    }
    return Emit(GateType::kNot, a, a);
}

NodeId SimplifyingBuilder::MakeGate(GateType t, NodeId a, NodeId b) {
    // Linear gates are an execution detail chosen by the elision pass from
    // whole-DAG noise analysis; rebuilding through the builder drops them to
    // their bootstrapped form and lets the pass re-derive elision afterwards.
    t = BootstrappedForm(t);
    if (t == GateType::kNot) return MakeNot(a);

    if (opts_.basic_gates_only) {
        assert(!opts_.absorb_not && "absorb_not would undo the lowering");
        switch (t) {
            case GateType::kNand:
                return MakeNot(MakeGate(GateType::kAnd, a, b));
            case GateType::kNor:
                return MakeNot(MakeGate(GateType::kOr, a, b));
            case GateType::kXnor:
                return MakeNot(MakeGate(GateType::kXor, a, b));
            case GateType::kAndNY:
                return MakeGate(GateType::kAnd, MakeNot(a), b);
            case GateType::kAndYN:
                return MakeGate(GateType::kAnd, a, MakeNot(b));
            case GateType::kOrNY:
                return MakeGate(GateType::kOr, MakeNot(a), b);
            case GateType::kOrYN:
                return MakeGate(GateType::kOr, a, MakeNot(b));
            default:
                break;  // AND/OR/XOR pass through.
        }
    }

    if (opts_.absorb_not) {
        bool changed = true;
        while (changed) {
            changed = false;
            if (auto inner = NotInputOf(a)) {
                t = GateWithFirstInputNegated(t);
                a = *inner;
                ++stats_.absorbed_nots;
                changed = true;
            }
            if (auto inner = NotInputOf(b)) {
                t = GateWithSecondInputNegated(t);
                b = *inner;
                ++stats_.absorbed_nots;
                changed = true;
            }
        }
    }

    if (opts_.fold_constants) {
        const bool a_const = a <= kConstTrue;
        const bool b_const = b <= kConstTrue;
        if (a_const && b_const) {
            ++stats_.folded;
            return EvalGate(t, a == kConstTrue, b == kConstTrue) ? kConstTrue
                                                                 : kConstFalse;
        }
        if (a_const) {
            ++stats_.folded;
            return UnaryOf(t, b, /*fixed_first=*/true, a == kConstTrue);
        }
        if (b_const) {
            ++stats_.folded;
            return UnaryOf(t, a, /*fixed_first=*/false, b == kConstTrue);
        }
        if (a == b) {
            ++stats_.folded;
            return FromTruth(EvalGate(t, false, false), EvalGate(t, true, true),
                             a);
        }
    }

    if (a > b) {
        t = SwappedGate(t);
        std::swap(a, b);
    }
    return Emit(t, a, b);
}

NodeId SimplifyingBuilder::MakeGate(GateType t,
                                    std::span<const NodeId> operands) {
    if (t == GateType::kLut) {
        throw UnsupportedGateError(
            "SimplifyingBuilder::MakeGate cannot build a kLut gate: LUT "
            "semantics need a LutSpec — use MakeLut");
    }
    if (operands.size() == 1) {
        if (!IsUnary(BootstrappedForm(t))) {
            throw UnsupportedGateError(
                std::string("gate type ") + std::string(GateTypeName(t)) +
                " takes two operands, got 1");
        }
        return MakeNot(operands[0]);
    }
    if (operands.size() == 2) return MakeGate(t, operands[0], operands[1]);
    throw UnsupportedGateError(
        std::string("gate type ") + std::string(GateTypeName(t)) +
        " takes at most two operands, got " + std::to_string(operands.size()));
}

NodeId SimplifyingBuilder::MakeLut(LutSpec spec,
                                   std::span<const NodeId> operands) {
    if (spec.weights.size() != operands.size()) {
        throw UnsupportedGateError(
            "MakeLut: " + std::to_string(spec.weights.size()) +
            " weights for " + std::to_string(operands.size()) + " operands");
    }
    if (operands.empty()) {
        throw UnsupportedGateError("MakeLut: a LUT needs at least one operand");
    }
    // Fail fast on a mis-declared lo, at the build site where the mistake
    // is debuggable. The reachable minimum may exceed the declared lo (a
    // rebuild pass can map a digit operand to a constant, shrinking its
    // range); it must never dip below it, or the table has no entry.
    int64_t reachable_lo = 0;
    for (size_t i = 0; i < operands.size(); ++i) {
        if (spec.weights[i] < 0) {
            reachable_lo += int64_t{spec.weights[i]} *
                            ((int64_t{1} << out_.DigitBits(operands[i])) - 1);
        }
    }
    if (reachable_lo < spec.lo) {
        throw UnsupportedGateError(
            "MakeLut: declared lo " + std::to_string(spec.lo) +
            " above the minimum reachable weighted sum " +
            std::to_string(reachable_lo));
    }

    // Canonicalize: fold constant operands into the table bias, merge
    // duplicate operands by summing their weights, drop zero weights, and
    // sort the surviving (operand, weight) pairs — m = sum w_i * v_i is
    // order-independent, so reordering never touches the table. All of it
    // preserves the weighted sum up to the folded constant contribution
    // `delta`, so the table is rebased, never refilled:
    // new_entry[m] = old_entry[m + delta].
    int64_t delta = 0;
    std::vector<std::pair<NodeId, int64_t>> pairs;
    for (size_t i = 0; i < operands.size(); ++i) {
        const NodeId op = operands[i];
        const int64_t w = spec.weights[i];
        if (w == 0) continue;
        if (op == kConstFalse) continue;  // Contributes 0 to the sum.
        if (op == kConstTrue) {
            delta += w;
            continue;
        }
        bool merged = false;
        for (auto& [prev_op, prev_w] : pairs) {
            if (prev_op == op) {
                prev_w += w;
                merged = true;
                break;
            }
        }
        if (!merged) pairs.emplace_back(op, w);
    }
    std::erase_if(pairs, [](const auto& p) { return p.second == 0; });
    std::sort(pairs.begin(), pairs.end());

    // Rebase onto the surviving operands' reachable range [lo, hi]. Folding
    // only ever shrinks the reachable set, so (m + delta) stays inside the
    // caller's declared domain and old entries cover every new index.
    int64_t lo = 0;
    int64_t hi = 0;
    for (const auto& [op, w] : pairs) {
        const int64_t vmax = (int64_t{1} << out_.DigitBits(op)) - 1;
        (w < 0 ? lo : hi) += w * vmax;
    }
    LutSpec canon;
    canon.out_bits = spec.out_bits;
    canon.lo = static_cast<int32_t>(lo);
    canon.weights.reserve(pairs.size());
    std::vector<NodeId> ops;
    ops.reserve(pairs.size());
    for (const auto& [op, w] : pairs) {
        if (w < -127 || w > 127) {
            throw UnsupportedGateError(
                "MakeLut: merged operand weight " + std::to_string(w) +
                " exceeds the int8 weight range");
        }
        canon.weights.push_back(static_cast<int8_t>(w));
        ops.push_back(op);
    }
    if ((hi + delta - spec.lo + 1) * canon.out_bits > 32) {
        throw UnsupportedGateError(
            "MakeLut: reachable weighted sums span " +
            std::to_string(hi + delta - spec.lo + 1) +
            " table entries past the declared lo; the table word holds at "
            "most " + std::to_string(32 / canon.out_bits));
    }
    for (int64_t m = lo; m <= hi; ++m) {
        canon.table |= spec.Entry(static_cast<int32_t>(m + delta))
                       << (static_cast<uint32_t>(m - lo) * canon.out_bits);
    }

    if (ops.empty()) {
        // Every operand folded away: the LUT is the single entry at delta.
        if (canon.out_bits != 1) {
            throw UnsupportedGateError(
                "MakeLut: a fully constant multi-bit LUT has no node "
                "representation (split it into 1-bit outputs)");
        }
        ++stats_.folded;
        return canon.table & 1 ? kConstTrue : kConstFalse;
    }
    if (ops.size() == 1 && out_.DigitBits(ops[0]) == 1) {
        // Unary LUT over one bit: only m = 0 and m = w are reachable.
        const uint32_t e0 = canon.Entry(0);
        const uint32_t e1 = canon.Entry(canon.weights[0]);
        if (opts_.fold_constants && canon.out_bits == 1 &&
            !((e0 & 1) == 1 && (e1 & 1) == 0)) {
            // Constant or identity table: no gate needed. The remaining
            // shape (a NOT) stays a LUT — a multibit netlist has no kNot.
            ++stats_.folded;
            return FromTruth(e0 & 1, e1 & 1, ops[0]);
        }
        // Normalize to weight 1 so structurally equal unary LUTs that
        // arrived with different weights CSE together.
        canon.weights[0] = 1;
        canon.lo = 0;
        canon.table = e0 | (e1 << canon.out_bits);
    }

    if (opts_.cse) {
        uint64_t h = (canon.table + 0x9E3779B97F4A7C15ull) *
                     0x100000001B3ull;
        h = h * 0x100000001B3ull + static_cast<uint32_t>(canon.lo + 512);
        h = h * 0x100000001B3ull + canon.out_bits;
        for (size_t i = 0; i < ops.size(); ++i) {
            h = h * 0x100000001B3ull + ops[i];
            h = h * 0x100000001B3ull + static_cast<uint8_t>(canon.weights[i]);
        }
        auto& bucket = lut_cse_[h];
        for (const NodeId cand : bucket) {
            const auto cand_ops = out_.Operands(cand);
            if (std::equal(cand_ops.begin(), cand_ops.end(), ops.begin(),
                           ops.end()) &&
                out_.Lut(cand) == canon) {
                ++stats_.deduped;
                return cand;
            }
        }
        const NodeId id = out_.AddLut(std::move(canon), ops);
        bucket.push_back(id);
        return id;
    }
    return out_.AddLut(std::move(canon), ops);
}

NodeId SimplifyingBuilder::MakeMux(NodeId sel, NodeId t, NodeId f) {
    if (opts_.fold_constants) {
        if (sel == kConstTrue) return t;
        if (sel == kConstFalse) return f;
        if (t == f) return t;
        // Constant arms collapse to a single gate.
        if (t == kConstTrue) return MakeGate(GateType::kOr, sel, f);
        if (t == kConstFalse) return MakeGate(GateType::kAndNY, sel, f);
        if (f == kConstTrue) return MakeGate(GateType::kOrNY, sel, t);
        if (f == kConstFalse) return MakeGate(GateType::kAnd, sel, t);
    }
    // sel ? t : f == (sel AND t) OR (NOT sel AND f). With folding enabled,
    // constant t/f collapse the arms (e.g. t == 1 gives OR(sel, f)).
    const NodeId arm_t = MakeGate(GateType::kAnd, sel, t);
    const NodeId arm_f = MakeGate(GateType::kAndNY, sel, f);
    return MakeGate(GateType::kOr, arm_t, arm_f);
}

std::vector<NodeId> SimplifyingBuilder::MakeWideGate(
    GateType t, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
    std::vector<NodeId> results;
    results.reserve(pairs.size());
    // Fresh bootstrapped gates bucketed by their emitted type: absorb_not
    // can rewrite e.g. AND(NOT a, b) into ANDNY, splitting one logical
    // wide op across types, and each bucket batches independently.
    std::unordered_map<GateType, std::vector<NodeId>> fresh;
    for (const auto& [a, b] : pairs) {
        const NodeId before = out_.NumNodes();
        const NodeId id = MakeGate(t, a, b);
        results.push_back(id);
        // A folded/deduped result reuses an existing node (id < before)
        // and stays out of the group; a gate already executed once per
        // program cannot be re-batched.
        if (id < before) continue;
        const GateType emitted = out_.GetNode(id).type;
        if (NeedsBootstrap(emitted)) fresh[emitted].push_back(id);
    }
    for (auto& [type, members] : fresh) {
        if (members.size() >= 2) out_.AddWideGroup(std::move(members));
    }
    return results;
}

NodeId SimplifyingBuilder::UnaryOf(GateType t, NodeId x, bool fixed_first,
                                   bool cval) {
    const bool r0 =
        fixed_first ? EvalGate(t, cval, false) : EvalGate(t, false, cval);
    const bool r1 =
        fixed_first ? EvalGate(t, cval, true) : EvalGate(t, true, cval);
    return FromTruth(r0, r1, x);
}

NodeId SimplifyingBuilder::FromTruth(bool r0, bool r1, NodeId x) {
    if (r0 == r1) return r0 ? kConstTrue : kConstFalse;
    if (!r0 && r1) return x;
    return MakeNot(x);
}

NodeId SimplifyingBuilder::Emit(GateType t, NodeId a, NodeId b) {
    if (opts_.cse) {
        const GateKey key{t, a, b};
        auto it = cse_.find(key);
        if (it != cse_.end()) {
            ++stats_.deduped;
            return it->second;
        }
        const NodeId id = out_.AddGate(t, a, b);
        cse_.emplace(key, id);
        return id;
    }
    return out_.AddGate(t, a, b);
}

}  // namespace pytfhe::circuit
