#include "circuit/netlist.h"

#include <cassert>
#include <sstream>
#include <unordered_set>

namespace pytfhe::circuit {

std::string NetlistStats::ToString() const {
    std::ostringstream os;
    os << "inputs=" << num_inputs << " outputs=" << num_outputs
       << " gates=" << num_gates << " bootstraps=" << num_bootstrap_gates
       << " linear=" << num_linear_gates << " depth=" << depth
       << " max_width=" << max_width;
    if (num_wide_groups > 0)
        os << " wide_groups=" << num_wide_groups
           << " wide_gates=" << num_wide_gates;
    os << "\n";
    for (int32_t t = 0; t < kNumGateTypes; ++t) {
        if (gate_histogram[t] == 0) continue;
        os << "  " << GateTypeName(static_cast<GateType>(t)) << ": "
           << gate_histogram[t] << "\n";
    }
    return os.str();
}

Netlist::Netlist() {
    nodes_.push_back(Node{NodeKind::kConst, GateType::kAnd, 0, 0});
    nodes_.push_back(Node{NodeKind::kConst, GateType::kAnd, 0, 0});
}

NodeId Netlist::AddInput(std::string name) {
    const NodeId id = nodes_.size();
    nodes_.push_back(Node{NodeKind::kInput, GateType::kAnd, 0, 0});
    inputs_.push_back(id);
    if (name.empty()) name = "in" + std::to_string(inputs_.size() - 1);
    input_names_.push_back(std::move(name));
    return id;
}

NodeId Netlist::AddGate(GateType type, NodeId a, NodeId b) {
    assert(a < nodes_.size() && b < nodes_.size());
    const NodeId id = nodes_.size();
    nodes_.push_back(Node{NodeKind::kGate, type, a, IsUnary(type) ? a : b});
    ++num_gates_;
    return id;
}

size_t Netlist::AddWideGroup(std::vector<NodeId> members) {
    wide_groups_.push_back(std::move(members));
    return wide_groups_.size() - 1;
}

size_t Netlist::AddOutput(NodeId id, std::string name) {
    assert(id < nodes_.size());
    outputs_.push_back(id);
    if (name.empty()) name = "out" + std::to_string(outputs_.size() - 1);
    output_names_.push_back(std::move(name));
    return outputs_.size() - 1;
}

std::optional<std::string> Netlist::Validate() const {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (id <= kConstTrue) {
            if (n.kind != NodeKind::kConst)
                return "node " + std::to_string(id) + " must be a constant";
            continue;
        }
        if (n.kind == NodeKind::kConst)
            return "constant node at non-reserved id " + std::to_string(id);
        if (n.kind == NodeKind::kGate) {
            if (n.in0 >= id || n.in1 >= id)
                return "gate " + std::to_string(id) +
                       " references a non-topological input";
            // Torus-domain rules (see ProducesLinearDomain). Inputs are
            // topological, so their domains are already decided here.
            const bool lin0 = ProducesLinearDomain(n.in0);
            const bool lin1 = ProducesLinearDomain(n.in1);
            switch (n.type) {
                case GateType::kXor:
                case GateType::kXnor:
                case GateType::kLinXor:
                case GateType::kLinXnor:
                    break;  // Absorb any operand-domain mix.
                case GateType::kNot:
                    if (lin0)
                        return "NOT gate " + std::to_string(id) +
                               " consumes a linear-domain value (use LNOT)";
                    break;
                case GateType::kLinNot:
                    if (!lin0)
                        return "LNOT gate " + std::to_string(id) +
                               " consumes a gate-domain value (use NOT)";
                    break;
                default:
                    if (lin0 || lin1)
                        return std::string(GateTypeName(n.type)) + " gate " +
                               std::to_string(id) +
                               " consumes a linear-domain value";
                    break;
            }
        }
    }
    for (NodeId id : outputs_) {
        if (id >= nodes_.size())
            return "output references missing node " + std::to_string(id);
    }
    std::unordered_set<NodeId> grouped;
    for (size_t gi = 0; gi < wide_groups_.size(); ++gi) {
        const auto& group = wide_groups_[gi];
        const std::string where = "wide group " + std::to_string(gi);
        if (group.size() < 2) return where + " needs at least 2 members";
        std::unordered_set<NodeId> local(group.begin(), group.end());
        if (local.size() != group.size())
            return where + " repeats a member";
        for (NodeId id : group) {
            if (id >= nodes_.size() || nodes_[id].kind != NodeKind::kGate)
                return where + " member " + std::to_string(id) +
                       " is not a gate";
            const Node& n = nodes_[id];
            if (n.type != nodes_[group[0]].type)
                return where + " mixes gate types";
            if (!NeedsBootstrap(n.type))
                return where + " member " + std::to_string(id) +
                       " is not a bootstrapped gate";
            if (!grouped.insert(id).second)
                return "gate " + std::to_string(id) +
                       " appears in more than one wide group";
            // Members must be mutually independent to share a batch; the
            // direct-edge check catches the common construction mistakes
            // (chained adder carries, reductions) cheaply.
            if (local.count(n.in0) || local.count(n.in1))
                return where + " member " + std::to_string(id) +
                       " consumes another member";
        }
    }
    return std::nullopt;
}

std::vector<std::vector<NodeId>> Netlist::ComputeLevels() const {
    // level[id] = 0 for inputs/constants; gates get
    // 1 + max(level of gate inputs). NOT gates are noiseless but still
    // scheduled; they do not add bootstrap depth (tracked separately in
    // stats) yet occupy a slot in their level.
    std::vector<uint32_t> level(nodes_.size(), 0);
    uint32_t max_level = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind != NodeKind::kGate) continue;
        level[id] = 1 + std::max(level[n.in0], level[n.in1]);
        max_level = std::max(max_level, level[id]);
    }
    std::vector<std::vector<NodeId>> levels(max_level);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::kGate)
            levels[level[id] - 1].push_back(id);
    }
    return levels;
}

NetlistStats Netlist::ComputeStats() const {
    NetlistStats s;
    s.num_inputs = inputs_.size();
    s.num_outputs = outputs_.size();

    // Depth in *bootstrapped* gates: NOT is free.
    std::vector<uint32_t> bdepth(nodes_.size(), 0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind != NodeKind::kGate) continue;
        ++s.num_gates;
        ++s.gate_histogram[static_cast<int32_t>(n.type)];
        const uint32_t in_depth = std::max(bdepth[n.in0], bdepth[n.in1]);
        if (NeedsBootstrap(n.type)) {
            ++s.num_bootstrap_gates;
            bdepth[id] = in_depth + 1;
        } else {
            if (IsLinearGate(n.type)) ++s.num_linear_gates;
            bdepth[id] = in_depth;
        }
        s.depth = std::max<uint64_t>(s.depth, bdepth[id]);
    }
    for (const auto& lvl : ComputeLevels())
        s.max_width = std::max<uint64_t>(s.max_width, lvl.size());
    s.num_wide_groups = wide_groups_.size();
    for (const auto& group : wide_groups_) s.num_wide_gates += group.size();
    return s;
}

std::vector<bool> Netlist::EvaluatePlain(
    const std::vector<bool>& input_values) const {
    assert(input_values.size() == inputs_.size());
    std::vector<bool> value(nodes_.size(), false);
    value[kConstTrue] = true;
    for (size_t i = 0; i < inputs_.size(); ++i)
        value[inputs_[i]] = input_values[i];
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind == NodeKind::kGate)
            value[id] = EvalGate(n.type, value[n.in0], value[n.in1]);
    }
    std::vector<bool> out(outputs_.size());
    for (size_t i = 0; i < outputs_.size(); ++i) out[i] = value[outputs_[i]];
    return out;
}

std::string Netlist::ToDot() const {
    std::ostringstream os;
    os << "digraph netlist {\n  rankdir=LR;\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        switch (n.kind) {
            case NodeKind::kConst:
                os << "  n" << id << " [label=\""
                   << (id == kConstTrue ? "1" : "0")
                   << "\" shape=plaintext];\n";
                break;
            case NodeKind::kInput:
                os << "  n" << id << " [label=\"in\" shape=box];\n";
                break;
            case NodeKind::kGate:
                os << "  n" << id << " [label=\"" << GateTypeName(n.type)
                   << "\"];\n";
                os << "  n" << n.in0 << " -> n" << id << ";\n";
                if (!IsUnary(n.type))
                    os << "  n" << n.in1 << " -> n" << id << ";\n";
                break;
        }
    }
    for (size_t i = 0; i < outputs_.size(); ++i) {
        os << "  o" << i << " [label=\"" << output_names_[i]
           << "\" shape=box];\n  n" << outputs_[i] << " -> o" << i << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace pytfhe::circuit
