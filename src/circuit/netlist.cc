#include "circuit/netlist.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace pytfhe::circuit {

std::string NetlistStats::ToString() const {
    std::ostringstream os;
    os << "inputs=" << num_inputs << " outputs=" << num_outputs
       << " gates=" << num_gates << " bootstraps=" << num_bootstrap_gates
       << " linear=" << num_linear_gates << " depth=" << depth
       << " max_width=" << max_width;
    if (num_wide_groups > 0)
        os << " wide_groups=" << num_wide_groups
           << " wide_gates=" << num_wide_gates;
    if (num_lut_gates > 0)
        os << " luts=" << num_lut_gates << " max_lut_arity=" << max_lut_arity;
    os << "\n";
    for (int32_t t = 0; t < kNumGateTypes; ++t) {
        if (gate_histogram[t] == 0) continue;
        os << "  " << GateTypeName(static_cast<GateType>(t)) << ": "
           << gate_histogram[t] << "\n";
    }
    return os.str();
}

Netlist::Netlist() {
    nodes_.push_back(Node{NodeKind::kConst, GateType::kAnd, 0, -1, 0});
    nodes_.push_back(Node{NodeKind::kConst, GateType::kAnd, 0, -1, 0});
}

NodeId Netlist::AddInput(std::string name) {
    const NodeId id = nodes_.size();
    nodes_.push_back(Node{NodeKind::kInput, GateType::kAnd, 0, -1, 0});
    inputs_.push_back(id);
    if (name.empty()) name = "in" + std::to_string(inputs_.size() - 1);
    input_names_.push_back(std::move(name));
    return id;
}

NodeId Netlist::AddGate(GateType type, std::span<const NodeId> operands) {
    if (type == GateType::kLut)
        throw UnsupportedGateError(
            "AddGate cannot build a kLut gate: use AddLut so the gate "
            "carries its LutSpec (weights, table, output width)");
    // Unary gates take one operand but, for compatibility with the long-
    // standing two-operand calling convention, also accept two — the
    // second is ignored (callers historically passed anything there).
    const size_t arity = IsUnary(type) ? 1 : 2;
    if (operands.size() != arity && !(IsUnary(type) && operands.size() == 2))
        throw UnsupportedGateError(
            std::string(GateTypeName(type)) + " gate takes " +
            std::to_string(arity) + " operand(s), got " +
            std::to_string(operands.size()));
    for ([[maybe_unused]] NodeId op : operands) assert(op < nodes_.size());
    const NodeId id = nodes_.size();
    Node n;
    n.kind = NodeKind::kGate;
    n.type = type;
    n.first_op = operands_.size();
    n.num_ops = 2;
    // NOT stores its operand twice, preserving the historical in1 == in0
    // convention every consumer of two-operand gates relies on (any
    // second operand a caller did pass is ignored, per the old API).
    operands_.push_back(operands[0]);
    operands_.push_back(IsUnary(type) ? operands[0] : operands[1]);
    nodes_.push_back(n);
    ++num_gates_;
    return id;
}

NodeId Netlist::AddLut(LutSpec spec, std::span<const NodeId> operands) {
    if (message_modulus_ == 0)
        throw UnsupportedGateError(
            "AddLut on a boolean netlist: call SetMessageModulus(p) first "
            "(kLut gates only exist in multibit netlists)");
    if (spec.weights.size() != operands.size())
        throw UnsupportedGateError(
            "AddLut: " + std::to_string(spec.weights.size()) +
            " weights for " + std::to_string(operands.size()) + " operands");
    if (operands.empty() ||
        operands.size() > static_cast<size_t>(kMaxLutArity))
        throw UnsupportedGateError(
            "AddLut: arity " + std::to_string(operands.size()) +
            " outside [1, " + std::to_string(kMaxLutArity) + "]");
    if (spec.out_bits < 1 || spec.out_bits > kMaxLutOutBits)
        throw UnsupportedGateError(
            "AddLut: out_bits " + std::to_string(spec.out_bits) +
            " outside [1, " + std::to_string(kMaxLutOutBits) + "]");
    for ([[maybe_unused]] NodeId op : operands) assert(op < nodes_.size());
    const NodeId id = nodes_.size();
    Node n;
    n.kind = NodeKind::kGate;
    n.type = GateType::kLut;
    n.first_op = operands_.size();
    n.num_ops = static_cast<uint16_t>(operands.size());
    n.lut = static_cast<int32_t>(luts_.size());
    operands_.insert(operands_.end(), operands.begin(), operands.end());
    luts_.push_back(std::move(spec));
    nodes_.push_back(n);
    ++num_gates_;
    return id;
}

void Netlist::SetMessageModulus(int32_t p) {
    assert(p >= 2 && p <= kMaxMessageModulus);
    message_modulus_ = p;
}

size_t Netlist::AddWideGroup(std::vector<NodeId> members) {
    wide_groups_.push_back(std::move(members));
    return wide_groups_.size() - 1;
}

size_t Netlist::AddOutput(NodeId id, std::string name) {
    assert(id < nodes_.size());
    outputs_.push_back(id);
    if (name.empty()) name = "out" + std::to_string(outputs_.size() - 1);
    output_names_.push_back(std::move(name));
    return outputs_.size() - 1;
}

std::optional<std::string> Netlist::Validate() const {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (id <= kConstTrue) {
            if (n.kind != NodeKind::kConst)
                return "node " + std::to_string(id) + " must be a constant";
            continue;
        }
        if (n.kind == NodeKind::kConst)
            return "constant node at non-reserved id " + std::to_string(id);
        if (n.kind != NodeKind::kGate) continue;
        for (NodeId op : Operands(id)) {
            if (op >= id)
                return "gate " + std::to_string(id) +
                       " references a non-topological input";
        }
        if (n.type == GateType::kLut) {
            if (message_modulus_ == 0)
                return "LUT gate " + std::to_string(id) +
                       " in a boolean netlist (no message modulus set); "
                       "multibit lowering must set one before emitting LUTs";
            const LutSpec& lut = luts_[n.lut];
            if (lut.weights.size() != n.num_ops)
                return "LUT gate " + std::to_string(id) +
                       " weight/operand count mismatch";
            // Recompute the reachable weighted-sum range and check the
            // declared lo and the message-space fit.
            int32_t lo = 0, hi = 0;
            for (size_t i = 0; i < lut.weights.size(); ++i) {
                const int32_t w = lut.weights[i];
                if (w == 0)
                    return "LUT gate " + std::to_string(id) +
                           " has a zero operand weight";
                const int32_t vmax = (1 << DigitBits(Op(id, i))) - 1;
                if (w > 0)
                    hi += w * vmax;
                else
                    lo += w * vmax;
            }
            if (lo != lut.lo)
                return "LUT gate " + std::to_string(id) + " declares lo=" +
                       std::to_string(lut.lo) + " but the reachable minimum "
                       "is " + std::to_string(lo);
            const int32_t domain = hi - lo + 1;
            if (domain > message_modulus_)
                return "LUT gate " + std::to_string(id) + " packs a domain "
                       "of " + std::to_string(domain) +
                       " into message modulus " +
                       std::to_string(message_modulus_) +
                       "; split the cone or raise the modulus";
            if (domain * lut.out_bits > 32)
                return "LUT gate " + std::to_string(id) +
                       " table does not fit 32 bits";
            continue;
        }
        if (message_modulus_ != 0)
            return std::string(GateTypeName(n.type)) + " gate " +
                   std::to_string(id) + " in a multibit netlist: multibit "
                   "programs are homogeneous (every gate must be a LUT; "
                   "run LowerToLuts)";
        // Torus-domain rules (see ProducesLinearDomain). Inputs are
        // topological, so their domains are already decided here.
        const bool lin0 = ProducesLinearDomain(Op(id, 0));
        const bool lin1 = ProducesLinearDomain(Op(id, 1));
        switch (n.type) {
            case GateType::kXor:
            case GateType::kXnor:
            case GateType::kLinXor:
            case GateType::kLinXnor:
                break;  // Absorb any operand-domain mix.
            case GateType::kNot:
                if (lin0)
                    return "NOT gate " + std::to_string(id) +
                           " consumes a linear-domain value (use LNOT)";
                break;
            case GateType::kLinNot:
                if (!lin0)
                    return "LNOT gate " + std::to_string(id) +
                           " consumes a gate-domain value (use NOT)";
                break;
            default:
                if (lin0 || lin1)
                    return std::string(GateTypeName(n.type)) + " gate " +
                           std::to_string(id) +
                           " consumes a linear-domain value";
                break;
        }
    }
    for (NodeId id : outputs_) {
        if (id >= nodes_.size())
            return "output references missing node " + std::to_string(id);
        if (DigitBits(id) != 1)
            return "output references node " + std::to_string(id) +
                   " carrying a " + std::to_string(DigitBits(id)) +
                   "-bit digit; only 1-bit wires may be circuit outputs";
    }
    std::unordered_set<NodeId> grouped;
    for (size_t gi = 0; gi < wide_groups_.size(); ++gi) {
        const auto& group = wide_groups_[gi];
        const std::string where = "wide group " + std::to_string(gi);
        if (group.size() < 2) return where + " needs at least 2 members";
        std::unordered_set<NodeId> local(group.begin(), group.end());
        if (local.size() != group.size())
            return where + " repeats a member";
        for (NodeId id : group) {
            if (id >= nodes_.size() || nodes_[id].kind != NodeKind::kGate)
                return where + " member " + std::to_string(id) +
                       " is not a gate";
            const Node& n = nodes_[id];
            if (n.type != nodes_[group[0]].type)
                return where + " mixes gate types";
            if (n.type == GateType::kLut)
                return where + " member " + std::to_string(id) +
                       " is a LUT gate; LUT bootstraps carry per-gate test "
                       "vectors and cannot share a wide batch";
            if (!NeedsBootstrap(n.type))
                return where + " member " + std::to_string(id) +
                       " is not a bootstrapped gate";
            if (!grouped.insert(id).second)
                return "gate " + std::to_string(id) +
                       " appears in more than one wide group";
            // Members must be mutually independent to share a batch; the
            // direct-edge check catches the common construction mistakes
            // (chained adder carries, reductions) cheaply.
            for (NodeId op : Operands(id))
                if (local.count(op))
                    return where + " member " + std::to_string(id) +
                           " consumes another member";
        }
    }
    return std::nullopt;
}

std::vector<std::vector<NodeId>> Netlist::ComputeLevels() const {
    // level[id] = 0 for inputs/constants; gates get
    // 1 + max(level of gate inputs). NOT gates are noiseless but still
    // scheduled; they do not add bootstrap depth (tracked separately in
    // stats) yet occupy a slot in their level.
    std::vector<uint32_t> level(nodes_.size(), 0);
    uint32_t max_level = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind != NodeKind::kGate) continue;
        uint32_t in_level = 0;
        for (NodeId op : Operands(id))
            in_level = std::max(in_level, level[op]);
        level[id] = 1 + in_level;
        max_level = std::max(max_level, level[id]);
    }
    std::vector<std::vector<NodeId>> levels(max_level);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::kGate)
            levels[level[id] - 1].push_back(id);
    }
    return levels;
}

NetlistStats Netlist::ComputeStats() const {
    NetlistStats s;
    s.num_inputs = inputs_.size();
    s.num_outputs = outputs_.size();

    // Depth in *bootstrapped* gates: NOT is free.
    std::vector<uint32_t> bdepth(nodes_.size(), 0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind != NodeKind::kGate) continue;
        ++s.num_gates;
        ++s.gate_histogram[static_cast<int32_t>(n.type)];
        if (n.type == GateType::kLut) {
            ++s.num_lut_gates;
            s.max_lut_arity = std::max<uint64_t>(s.max_lut_arity, n.num_ops);
        }
        uint32_t in_depth = 0;
        for (NodeId op : Operands(id))
            in_depth = std::max(in_depth, bdepth[op]);
        if (NeedsBootstrap(n.type)) {
            ++s.num_bootstrap_gates;
            bdepth[id] = in_depth + 1;
        } else {
            if (IsLinearGate(n.type)) ++s.num_linear_gates;
            bdepth[id] = in_depth;
        }
        s.depth = std::max<uint64_t>(s.depth, bdepth[id]);
    }
    for (const auto& lvl : ComputeLevels())
        s.max_width = std::max<uint64_t>(s.max_width, lvl.size());
    s.num_wide_groups = wide_groups_.size();
    for (const auto& group : wide_groups_) s.num_wide_gates += group.size();
    return s;
}

std::vector<bool> Netlist::EvaluatePlain(
    const std::vector<bool>& input_values) const {
    assert(input_values.size() == inputs_.size());
    // Digit wires make node values small integers, not booleans.
    std::vector<uint8_t> value(nodes_.size(), 0);
    value[kConstTrue] = 1;
    for (size_t i = 0; i < inputs_.size(); ++i)
        value[inputs_[i]] = input_values[i] ? 1 : 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (n.kind != NodeKind::kGate) continue;
        if (n.type == GateType::kLut) {
            const LutSpec& lut = luts_[n.lut];
            int32_t m = 0;
            const auto ops = Operands(id);
            for (size_t i = 0; i < ops.size(); ++i)
                m += lut.weights[i] * static_cast<int32_t>(value[ops[i]]);
            value[id] = static_cast<uint8_t>(lut.Entry(m));
        } else {
            value[id] = EvalGate(n.type, value[Op(id, 0)] != 0,
                                 value[Op(id, 1)] != 0)
                            ? 1
                            : 0;
        }
    }
    std::vector<bool> out(outputs_.size());
    for (size_t i = 0; i < outputs_.size(); ++i)
        out[i] = value[outputs_[i]] != 0;
    return out;
}

std::string Netlist::ToDot() const {
    std::ostringstream os;
    os << "digraph netlist {\n  rankdir=LR;\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        switch (n.kind) {
            case NodeKind::kConst:
                os << "  n" << id << " [label=\""
                   << (id == kConstTrue ? "1" : "0")
                   << "\" shape=plaintext];\n";
                break;
            case NodeKind::kInput:
                os << "  n" << id << " [label=\"in\" shape=box];\n";
                break;
            case NodeKind::kGate:
                os << "  n" << id << " [label=\"" << GateTypeName(n.type);
                if (n.type == GateType::kLut)
                    os << n.num_ops << "x" << int32_t{luts_[n.lut].out_bits};
                os << "\"];\n";
                if (n.type == GateType::kLut) {
                    for (NodeId op : Operands(id))
                        os << "  n" << op << " -> n" << id << ";\n";
                } else {
                    os << "  n" << Op(id, 0) << " -> n" << id << ";\n";
                    if (!IsUnary(n.type))
                        os << "  n" << Op(id, 1) << " -> n" << id << ";\n";
                }
                break;
        }
    }
    for (size_t i = 0; i < outputs_.size(); ++i) {
        os << "  o" << i << " [label=\"" << output_names_[i]
           << "\" shape=box];\n  n" << outputs_[i] << " -> o" << i << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace pytfhe::circuit
