/**
 * @file
 * The gate-level intermediate representation: a DAG of 2-input gates.
 *
 * A Netlist is the common artifact of every frontend (ChiselTorch, the
 * baseline models, hand-written circuits) and the common input of the
 * assembler and every backend. Nodes are identified by dense NodeIds in
 * creation order, which is also a valid topological order: a gate's inputs
 * always have smaller ids. Node 0 and 1 are reserved constant-false /
 * constant-true nodes (frontends fold them away before assembly; see
 * opt/passes.h).
 */
#ifndef PYTFHE_CIRCUIT_NETLIST_H
#define PYTFHE_CIRCUIT_NETLIST_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/gate_type.h"

namespace pytfhe::circuit {

using NodeId = uint64_t;

/** Reserved node ids for the two constants. */
constexpr NodeId kConstFalse = 0;
constexpr NodeId kConstTrue = 1;

/** What a node is. */
enum class NodeKind : uint8_t {
    kConst,  ///< One of the two reserved constants.
    kInput,  ///< Primary input.
    kGate,   ///< Two-input (or NOT) gate.
};

/** One DAG node. POD; 24 bytes. */
struct Node {
    NodeKind kind = NodeKind::kConst;
    GateType type = GateType::kAnd;  ///< Valid when kind == kGate.
    NodeId in0 = 0;                  ///< Valid when kind == kGate.
    NodeId in1 = 0;                  ///< Valid for binary gates; == in0 for NOT.
};

/** Aggregate statistics over a netlist. */
struct NetlistStats {
    uint64_t num_inputs = 0;
    uint64_t num_outputs = 0;
    uint64_t num_gates = 0;               ///< All gates, including NOT.
    uint64_t num_bootstrap_gates = 0;     ///< Gates that cost a bootstrap.
    uint64_t num_linear_gates = 0;        ///< Elided (kLin*) gates.
    uint64_t gate_histogram[kNumGateTypes] = {};
    uint64_t depth = 0;       ///< Critical path in bootstrapped gates.
    uint64_t max_width = 0;   ///< Largest level of the BFS schedule.
    uint64_t num_wide_groups = 0;  ///< Explicitly batchable wide groups.
    uint64_t num_wide_gates = 0;   ///< Gates covered by wide groups.

    std::string ToString() const;
};

/**
 * A combinational circuit as a DAG of gates.
 *
 * Invariants (checked by Validate):
 *  - every gate input id is smaller than the gate's own id;
 *  - every referenced id exists;
 *  - outputs reference existing nodes;
 *  - wide groups name >= 2 distinct bootstrapped gates of one type, no
 *    gate sits in two groups, and no member directly consumes another
 *    member (members must be co-schedulable in one batch);
 *  - torus-domain rules for elided gates: a node carries the linear
 *    encoding (+-1/4) iff its type is kLin*; only XOR/XNOR (bootstrapped
 *    or linear), kLinNot, and circuit outputs may consume a linear-domain
 *    value, and kLinNot/kNot require a linear-/gate-domain operand
 *    respectively so every node's encoding is static.
 */
class Netlist {
  public:
    Netlist();

    /** Adds a primary input and returns its node id. */
    NodeId AddInput(std::string name = {});

    /**
     * Adds a gate node without any simplification (frontends that want
     * hash-consing use hdl::Builder). For NOT gates pass b == a.
     */
    NodeId AddGate(GateType type, NodeId a, NodeId b);

    /** Registers an output. Returns its output index. */
    size_t AddOutput(NodeId id, std::string name = {});

    /**
     * Registers a kSimd-style wide group: the same bootstrapped gate type
     * applied to independent operand pairs, batchable through one SoA
     * bootstrap kernel call (tfhe/bootstrap_batch.h). Groups are
     * scheduling hints carried through pasm to the backends — correctness
     * never depends on them, and a gate belongs to at most one group.
     * Returns the group index.
     */
    size_t AddWideGroup(std::vector<NodeId> members);
    const std::vector<std::vector<NodeId>>& WideGroups() const {
        return wide_groups_;
    }

    size_t NumNodes() const { return nodes_.size(); }
    const Node& GetNode(NodeId id) const { return nodes_[id]; }

    const std::vector<NodeId>& Inputs() const { return inputs_; }
    const std::vector<NodeId>& Outputs() const { return outputs_; }
    const std::string& InputName(size_t i) const { return input_names_[i]; }
    const std::string& OutputName(size_t i) const { return output_names_[i]; }

    uint64_t NumGates() const { return num_gates_; }

    /** Returns an error description, or nullopt if the netlist is valid. */
    std::optional<std::string> Validate() const;

    /**
     * True if the node's ciphertext uses the linear torus encoding
     * (+-1/4): exactly the kLin* gates. Inputs, constants, and every
     * bootstrapped or NOT gate produce the gate encoding (+-1/8).
     */
    bool ProducesLinearDomain(NodeId id) const {
        const Node& n = nodes_[id];
        return n.kind == NodeKind::kGate && IsLinearGate(n.type);
    }

    /**
     * Level-by-level BFS schedule per Algorithm 1 of the paper: level[0] is
     * every gate whose inputs are all primary inputs or constants; level[i]
     * contains gates whose deepest predecessor gate sits in level[i-1].
     * Only gate nodes appear in the result.
     */
    std::vector<std::vector<NodeId>> ComputeLevels() const;

    /** Full statistics (walks the DAG; O(nodes)). */
    NetlistStats ComputeStats() const;

    /**
     * Evaluates the circuit on plaintext bits (reference semantics used by
     * tests and the functional backends). input_values must match Inputs().
     */
    std::vector<bool> EvaluatePlain(const std::vector<bool>& input_values) const;

    /** Graphviz dump for debugging small circuits. */
    std::string ToDot() const;

  private:
    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<std::string> input_names_;
    std::vector<NodeId> outputs_;
    std::vector<std::string> output_names_;
    std::vector<std::vector<NodeId>> wide_groups_;
    uint64_t num_gates_ = 0;
};

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_NETLIST_H
