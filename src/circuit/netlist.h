/**
 * @file
 * The gate-level intermediate representation: a DAG of variadic gates.
 *
 * A Netlist is the common artifact of every frontend (ChiselTorch, the
 * baseline models, hand-written circuits) and the common input of the
 * assembler and every backend. Nodes are identified by dense NodeIds in
 * creation order, which is also a valid topological order: a gate's
 * operands always have smaller ids. Node 0 and 1 are reserved constant-
 * false / constant-true nodes (frontends fold them away before assembly;
 * see opt/passes.h).
 *
 * Nodes do not embed operand ids; operands live in one pooled array owned
 * by the Netlist and are addressed per node as a span (Operands()). The
 * classic two-input gates store exactly two operands (NOT duplicates its
 * single operand, preserving the historical in0 == in1 convention);
 * kLut gates store k weighted operands plus a LutSpec side entry.
 */
#ifndef PYTFHE_CIRCUIT_NETLIST_H
#define PYTFHE_CIRCUIT_NETLIST_H

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/gate_type.h"

namespace pytfhe::circuit {

using NodeId = uint64_t;

/**
 * A construction or export saw a gate shape its target cannot represent:
 * a classic gate with an operand count other than its arity, a kLut fed
 * to a 2-input-only consumer (Bristol text, the boolean assembler's
 * legacy versions), or a LUT added to a boolean netlist. Raised instead
 * of silently truncating the operand list to two.
 */
class UnsupportedGateError : public std::runtime_error {
  public:
    explicit UnsupportedGateError(const std::string& what)
        : std::runtime_error(what) {}
};

/** Reserved node ids for the two constants. */
constexpr NodeId kConstFalse = 0;
constexpr NodeId kConstTrue = 1;

/** What a node is. */
enum class NodeKind : uint8_t {
    kConst,  ///< One of the two reserved constants.
    kInput,  ///< Primary input.
    kGate,   ///< Gate with operands in the netlist's pooled storage.
};

/**
 * One DAG node. Operand ids live in the Netlist's operand pool at
 * [first_op, first_op + num_ops); use Netlist::Operands()/Op() to read
 * them. `lut` indexes the LutSpec side table for kLut gates (-1 else).
 */
struct Node {
    NodeKind kind = NodeKind::kConst;
    GateType type = GateType::kAnd;  ///< Valid when kind == kGate.
    uint16_t num_ops = 0;            ///< Operand count (2 for classic gates).
    int32_t lut = -1;                ///< LutSpec index for kLut gates.
    uint64_t first_op = 0;           ///< Offset into the operand pool.
};

/** Upper bound on kLut operand count (pasm encodes arity in 4 bits). */
constexpr int32_t kMaxLutArity = 8;

/** Widest digit a kLut node may output (2 bits; see tfhe/multibit.h). */
constexpr int32_t kMaxLutOutBits = 2;

/** Largest supported multibit message modulus (p = 2^k, k <= 4). */
constexpr int32_t kMaxMessageModulus = 16;

/**
 * Semantics of one kLut gate: a programmable-bootstrap lookup over the
 * weighted sum of its operand digits.
 *
 *   m     = sum_i weights[i] * value(operand_i)      (an integer)
 *   index = m - lo                                    (in [0, domain))
 *   out   = (table >> (index * out_bits)) & (2^out_bits - 1)
 *
 * `lo` is the minimum reachable m (negative weights are allowed; equal
 * weights turn the LUT into a symmetric/counting function — the trick
 * multi-bit adders and multiplier column compressors are built on). The
 * reachable domain must satisfy domain <= MessageModulus() of the owning
 * netlist, and domain * out_bits <= 32 so the table fits one word.
 * Operand values are 1 for ordinary bit wires and up to 2^out_bits - 1
 * for digit wires produced by other kLut gates.
 */
struct LutSpec {
    std::vector<int8_t> weights;  ///< One nonzero weight per operand.
    int32_t lo = 0;               ///< Minimum reachable weighted sum.
    uint32_t table = 0;           ///< Packed out_bits-wide entries.
    uint8_t out_bits = 1;         ///< Output digit width (1 or 2).

    /** Entry at packed sum m (callers guarantee lo <= m < lo + domain). */
    uint32_t Entry(int32_t m) const {
        const uint32_t mask = (uint32_t{1} << out_bits) - 1;
        return (table >> (static_cast<uint32_t>(m - lo) * out_bits)) & mask;
    }

    friend bool operator==(const LutSpec& a, const LutSpec& b) {
        return a.lo == b.lo && a.table == b.table &&
               a.out_bits == b.out_bits && a.weights == b.weights;
    }
};

/** Aggregate statistics over a netlist. */
struct NetlistStats {
    uint64_t num_inputs = 0;
    uint64_t num_outputs = 0;
    uint64_t num_gates = 0;               ///< All gates, including NOT.
    uint64_t num_bootstrap_gates = 0;     ///< Gates that cost a bootstrap.
    uint64_t num_linear_gates = 0;        ///< Elided (kLin*) gates.
    uint64_t gate_histogram[kNumGateTypes] = {};
    uint64_t depth = 0;       ///< Critical path in bootstrapped gates.
    uint64_t max_width = 0;   ///< Largest level of the BFS schedule.
    uint64_t num_wide_groups = 0;  ///< Explicitly batchable wide groups.
    uint64_t num_wide_gates = 0;   ///< Gates covered by wide groups.
    uint64_t num_lut_gates = 0;    ///< kLut gates (multibit netlists).
    uint64_t max_lut_arity = 0;    ///< Widest kLut operand list.

    std::string ToString() const;
};

/**
 * A combinational circuit as a DAG of gates.
 *
 * Invariants (checked by Validate):
 *  - every gate operand id is smaller than the gate's own id;
 *  - every referenced id exists;
 *  - outputs reference existing nodes;
 *  - wide groups name >= 2 distinct bootstrapped gates of one type, no
 *    gate sits in two groups, and no member directly consumes another
 *    member (members must be co-schedulable in one batch);
 *  - torus-domain rules for elided gates: a node carries the linear
 *    encoding (+-1/4) iff its type is kLin*; only XOR/XNOR (bootstrapped
 *    or linear), kLinNot, and circuit outputs may consume a linear-domain
 *    value, and kLinNot/kNot require a linear-/gate-domain operand
 *    respectively so every node's encoding is static;
 *  - multibit rules: kLut gates appear iff MessageModulus() > 0, in which
 *    case every gate is a kLut (multibit programs are homogeneous — there
 *    is no mixed boolean/LUT torus encoding), LUT domains fit the message
 *    modulus, and only 1-bit LUT digits feed circuit outputs.
 */
class Netlist {
  public:
    Netlist();

    /** Adds a primary input and returns its node id. */
    NodeId AddInput(std::string name = {});

    /**
     * Adds a gate node over an explicit operand span without any
     * simplification (frontends that want hash-consing use hdl::Builder).
     * Classic gate types take exactly two operands (one for NOT); kLut
     * gates must be added through AddLut so their LutSpec exists. Throws
     * UnsupportedGateError on an operand count the type cannot carry.
     */
    NodeId AddGate(GateType type, std::span<const NodeId> operands);

    /** Two-operand convenience form. For NOT gates pass b == a. */
    NodeId AddGate(GateType type, NodeId a, NodeId b) {
        const NodeId ops[2] = {a, b};
        return AddGate(type, std::span<const NodeId>(ops, 2));
    }

    /**
     * Adds a kLut gate with its semantics. spec.weights must match the
     * operand count; spec.lo must equal the minimum reachable weighted
     * sum. Requires SetMessageModulus() to have been called.
     */
    NodeId AddLut(LutSpec spec, std::span<const NodeId> operands);

    /** Registers an output. Returns its output index. */
    size_t AddOutput(NodeId id, std::string name = {});

    /**
     * Registers a kSimd-style wide group: the same bootstrapped gate type
     * applied to independent operand pairs, batchable through one SoA
     * bootstrap kernel call (tfhe/bootstrap_batch.h). Groups are
     * scheduling hints carried through pasm to the backends — correctness
     * never depends on them, and a gate belongs to at most one group.
     * Returns the group index.
     */
    size_t AddWideGroup(std::vector<NodeId> members);
    const std::vector<std::vector<NodeId>>& WideGroups() const {
        return wide_groups_;
    }

    size_t NumNodes() const { return nodes_.size(); }
    const Node& GetNode(NodeId id) const { return nodes_[id]; }

    /** The node's operands as a view into the pooled storage. */
    std::span<const NodeId> Operands(NodeId id) const {
        const Node& n = nodes_[id];
        return std::span<const NodeId>(operands_.data() + n.first_op,
                                       n.num_ops);
    }

    /** Operand i of node id (i < GetNode(id).num_ops). */
    NodeId Op(NodeId id, size_t i) const {
        return operands_[nodes_[id].first_op + i];
    }

    /** The LutSpec of a kLut node. */
    const LutSpec& Lut(NodeId id) const { return luts_[nodes_[id].lut]; }
    const std::vector<LutSpec>& Luts() const { return luts_; }

    /**
     * Message modulus p of a multibit netlist (digit wires encode value v
     * as the torus phase (2v+1)/(4p); see tfhe/multibit.h). 0 for
     * ordinary boolean netlists.
     */
    int32_t MessageModulus() const { return message_modulus_; }

    /** Declares the netlist multibit. Must precede any AddLut. */
    void SetMessageModulus(int32_t p);

    /** Digit width of the value a node carries (1 for everything but
     *  2-bit kLut outputs). */
    int32_t DigitBits(NodeId id) const {
        const Node& n = nodes_[id];
        return (n.kind == NodeKind::kGate && n.type == GateType::kLut)
                   ? luts_[n.lut].out_bits
                   : 1;
    }

    const std::vector<NodeId>& Inputs() const { return inputs_; }
    const std::vector<NodeId>& Outputs() const { return outputs_; }
    const std::string& InputName(size_t i) const { return input_names_[i]; }
    const std::string& OutputName(size_t i) const { return output_names_[i]; }

    uint64_t NumGates() const { return num_gates_; }

    /** Returns an error description, or nullopt if the netlist is valid. */
    std::optional<std::string> Validate() const;

    /**
     * True if the node's ciphertext uses the linear torus encoding
     * (+-1/4): exactly the kLin* gates. Inputs, constants, and every
     * bootstrapped or NOT gate produce the gate encoding (+-1/8).
     */
    bool ProducesLinearDomain(NodeId id) const {
        const Node& n = nodes_[id];
        return n.kind == NodeKind::kGate && IsLinearGate(n.type);
    }

    /**
     * Level-by-level BFS schedule per Algorithm 1 of the paper: level[0] is
     * every gate whose inputs are all primary inputs or constants; level[i]
     * contains gates whose deepest predecessor gate sits in level[i-1].
     * Only gate nodes appear in the result.
     */
    std::vector<std::vector<NodeId>> ComputeLevels() const;

    /** Full statistics (walks the DAG; O(nodes)). */
    NetlistStats ComputeStats() const;

    /**
     * Evaluates the circuit on plaintext bits (reference semantics used by
     * tests and the functional backends). input_values must match Inputs().
     * Digit wires evaluate to their integer value; outputs are booleans
     * (Validate guarantees output nodes are 1-bit).
     */
    std::vector<bool> EvaluatePlain(const std::vector<bool>& input_values) const;

    /** Graphviz dump for debugging small circuits. */
    std::string ToDot() const;

  private:
    std::vector<Node> nodes_;
    std::vector<NodeId> operands_;  ///< Pooled per-node operand storage.
    std::vector<LutSpec> luts_;
    std::vector<NodeId> inputs_;
    std::vector<std::string> input_names_;
    std::vector<NodeId> outputs_;
    std::vector<std::string> output_names_;
    std::vector<std::vector<NodeId>> wide_groups_;
    uint64_t num_gates_ = 0;
    int32_t message_modulus_ = 0;
};

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_NETLIST_H
