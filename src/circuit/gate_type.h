/**
 * @file
 * The TFHE gate set shared by the circuit IR, the assembler, and the
 * backends.
 *
 * Enum values are the 4-bit gate-type encodings of the PyTFHE binary format
 * (Fig. 5 of the paper); XOR = 6 matches the half-adder example in Fig. 6.
 */
#ifndef PYTFHE_CIRCUIT_GATE_TYPE_H
#define PYTFHE_CIRCUIT_GATE_TYPE_H

#include <cstdint>
#include <string_view>

namespace pytfhe::circuit {

/**
 * The eleven PyTFHE gate types, plus three linear forms emitted by the
 * bootstrap-elision pass (opt/passes.h).
 *
 * The linear gates evaluate the same boolean function as their bootstrapped
 * counterparts but as a pure LWE sample combination — no blind rotate, no
 * key switch, no noise reset. Their output lives in the *linear* torus
 * encoding (false = -1/4, true = +1/4) rather than the gate encoding
 * (false = -1/8, true = +1/8); only XOR/XNOR-family consumers and circuit
 * outputs can absorb such an operand (see DESIGN.md "Circuit optimization").
 */
enum class GateType : uint8_t {
    kNot = 0,    ///< NOT(a); single input, noiseless in TFHE.
    kAnd = 1,
    kNand = 2,
    kOr = 3,
    kNor = 4,
    kXnor = 5,
    kXor = 6,    ///< Encoded 0110, per the paper's half-adder example.
    kAndNY = 7,  ///< NOT(a) AND b.
    kAndYN = 8,  ///< a AND NOT(b).
    kOrNY = 9,   ///< NOT(a) OR b.
    kOrYN = 10,  ///< a OR NOT(b).
    kLinXor = 11,   ///< XOR without bootstrap; linear-domain output.
    kLinXnor = 12,  ///< XNOR without bootstrap; linear-domain output.
    kLinNot = 13,   ///< NOT of a linear-domain value (sample negation).
    /**
     * Programmable-bootstrap lookup table over k weighted operands
     * (multi-bit message space; see tfhe/multibit.h). The node's operand
     * list and LutSpec (weights, table, output width) live in the Netlist
     * side tables; a kLut gate costs exactly one bootstrap regardless of
     * arity. Only valid in multibit netlists (MessageModulus() > 0).
     */
    kLut = 14,
};

constexpr int32_t kNumGateTypes = 15;

/**
 * Gate types a frontend can emit directly (indices 0..10). The linear
 * forms are introduced only by the bootstrap-elision pass, which also
 * guarantees their operand-encoding invariants; random circuit generators
 * and builders draw from this range.
 */
constexpr int32_t kNumFrontendGateTypes = 11;

/** True for the single-input gates (NOT and its linear-domain twin). */
constexpr bool IsUnary(GateType t) {
    return t == GateType::kNot || t == GateType::kLinNot;
}

/**
 * True for the linear gates introduced by bootstrap elision. Their output
 * uses the linear torus encoding (+-1/4); everything else is gate-domain.
 */
constexpr bool IsLinearGate(GateType t) {
    return t == GateType::kLinXor || t == GateType::kLinXnor ||
           t == GateType::kLinNot;
}

/** True for gates whose TFHE evaluation needs a bootstrap. */
constexpr bool NeedsBootstrap(GateType t) {
    return t != GateType::kNot && !IsLinearGate(t);
}

/**
 * Plaintext semantics of a gate. For NOT, b is ignored. kLut semantics
 * live in the netlist's LutSpec side table (Netlist::EvaluatePlain), not
 * here; a bare kLut evaluates to false.
 */
constexpr bool EvalGate(GateType t, bool a, bool b) {
    switch (t) {
        case GateType::kNot: return !a;
        case GateType::kAnd: return a && b;
        case GateType::kNand: return !(a && b);
        case GateType::kOr: return a || b;
        case GateType::kNor: return !(a || b);
        case GateType::kXnor: return a == b;
        case GateType::kXor: return a != b;
        case GateType::kAndNY: return !a && b;
        case GateType::kAndYN: return a && !b;
        case GateType::kOrNY: return !a || b;
        case GateType::kOrYN: return a || !b;
        case GateType::kLinXor: return a != b;
        case GateType::kLinXnor: return a == b;
        case GateType::kLinNot: return !a;
        case GateType::kLut: return false;  // See Netlist::EvaluatePlain.
    }
    return false;  // Unreachable for valid gate types.
}

/** True if swapping the inputs leaves the gate function unchanged. */
constexpr bool IsCommutative(GateType t) {
    switch (t) {
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor:
        case GateType::kXor:
        case GateType::kXnor:
        case GateType::kLinXor:
        case GateType::kLinXnor:
            return true;
        default:
            return false;
    }
}

/** The linear form of a bootstrapped XOR/XNOR/NOT; t itself otherwise. */
constexpr GateType LinearForm(GateType t) {
    switch (t) {
        case GateType::kXor: return GateType::kLinXor;
        case GateType::kXnor: return GateType::kLinXnor;
        case GateType::kNot: return GateType::kLinNot;
        default: return t;
    }
}

/** The bootstrapped/gate-domain form of a linear gate; t itself otherwise. */
constexpr GateType BootstrappedForm(GateType t) {
    switch (t) {
        case GateType::kLinXor: return GateType::kXor;
        case GateType::kLinXnor: return GateType::kXnor;
        case GateType::kLinNot: return GateType::kNot;
        default: return t;
    }
}

/** Short uppercase mnemonic, as used in disassembly and stats output. */
constexpr std::string_view GateTypeName(GateType t) {
    switch (t) {
        case GateType::kNot: return "NOT";
        case GateType::kAnd: return "AND";
        case GateType::kNand: return "NAND";
        case GateType::kOr: return "OR";
        case GateType::kNor: return "NOR";
        case GateType::kXnor: return "XNOR";
        case GateType::kXor: return "XOR";
        case GateType::kAndNY: return "ANDNY";
        case GateType::kAndYN: return "ANDYN";
        case GateType::kOrNY: return "ORNY";
        case GateType::kOrYN: return "ORYN";
        case GateType::kLinXor: return "LXOR";
        case GateType::kLinXnor: return "LXNOR";
        case GateType::kLinNot: return "LNOT";
        case GateType::kLut: return "LUT";
    }
    return "?";
}

/** The gate computing NOT(gate), when it exists in the gate set. */
constexpr GateType NegatedGate(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kNand;
        case GateType::kNand: return GateType::kAnd;
        case GateType::kOr: return GateType::kNor;
        case GateType::kNor: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kAndNY: return GateType::kOrYN;
        case GateType::kAndYN: return GateType::kOrNY;
        case GateType::kOrNY: return GateType::kAndYN;
        case GateType::kOrYN: return GateType::kAndNY;
        case GateType::kNot: return GateType::kNot;  // NOT(NOT) handled as copy.
        case GateType::kLinXor: return GateType::kLinXnor;
        case GateType::kLinXnor: return GateType::kLinXor;
        case GateType::kLinNot: return GateType::kLinNot;
        case GateType::kLut: return GateType::kLut;  // Negation folds into the table.
    }
    return t;
}

/** The gate equivalent to t with its first input negated, if in the set. */
constexpr GateType GateWithFirstInputNegated(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kAndNY;
        case GateType::kOr: return GateType::kOrNY;
        case GateType::kAndNY: return GateType::kAnd;
        case GateType::kOrNY: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kNand: return GateType::kOrYN;
        case GateType::kNor: return GateType::kAndYN;
        case GateType::kAndYN: return GateType::kNor;
        case GateType::kOrYN: return GateType::kNand;
        case GateType::kNot: return GateType::kNot;
        case GateType::kLinXor: return GateType::kLinXnor;
        case GateType::kLinXnor: return GateType::kLinXor;
        case GateType::kLinNot: return GateType::kLinNot;
        case GateType::kLut: return GateType::kLut;  // Folds into the table.
    }
    return t;
}

/** The gate equivalent to t with its second input negated, if in the set. */
constexpr GateType GateWithSecondInputNegated(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kAndYN;
        case GateType::kOr: return GateType::kOrYN;
        case GateType::kAndYN: return GateType::kAnd;
        case GateType::kOrYN: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kNand: return GateType::kOrNY;
        case GateType::kNor: return GateType::kAndNY;
        case GateType::kAndNY: return GateType::kNor;
        case GateType::kOrNY: return GateType::kNand;
        case GateType::kNot: return GateType::kNot;
        case GateType::kLinXor: return GateType::kLinXnor;
        case GateType::kLinXnor: return GateType::kLinXor;
        case GateType::kLinNot: return GateType::kLinNot;
        case GateType::kLut: return GateType::kLut;  // Folds into the table.
    }
    return t;
}

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_GATE_TYPE_H
