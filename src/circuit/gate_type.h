/**
 * @file
 * The TFHE gate set shared by the circuit IR, the assembler, and the
 * backends.
 *
 * Enum values are the 4-bit gate-type encodings of the PyTFHE binary format
 * (Fig. 5 of the paper); XOR = 6 matches the half-adder example in Fig. 6.
 */
#ifndef PYTFHE_CIRCUIT_GATE_TYPE_H
#define PYTFHE_CIRCUIT_GATE_TYPE_H

#include <cstdint>
#include <string_view>

namespace pytfhe::circuit {

/** The eleven PyTFHE gate types. */
enum class GateType : uint8_t {
    kNot = 0,    ///< NOT(a); single input, noiseless in TFHE.
    kAnd = 1,
    kNand = 2,
    kOr = 3,
    kNor = 4,
    kXnor = 5,
    kXor = 6,    ///< Encoded 0110, per the paper's half-adder example.
    kAndNY = 7,  ///< NOT(a) AND b.
    kAndYN = 8,  ///< a AND NOT(b).
    kOrNY = 9,   ///< NOT(a) OR b.
    kOrYN = 10,  ///< a OR NOT(b).
};

constexpr int32_t kNumGateTypes = 11;

/** True for the single-input NOT gate. */
constexpr bool IsUnary(GateType t) { return t == GateType::kNot; }

/** True for gates whose TFHE evaluation needs a bootstrap (all but NOT). */
constexpr bool NeedsBootstrap(GateType t) { return t != GateType::kNot; }

/** Plaintext semantics of a gate. For NOT, b is ignored. */
constexpr bool EvalGate(GateType t, bool a, bool b) {
    switch (t) {
        case GateType::kNot: return !a;
        case GateType::kAnd: return a && b;
        case GateType::kNand: return !(a && b);
        case GateType::kOr: return a || b;
        case GateType::kNor: return !(a || b);
        case GateType::kXnor: return a == b;
        case GateType::kXor: return a != b;
        case GateType::kAndNY: return !a && b;
        case GateType::kAndYN: return a && !b;
        case GateType::kOrNY: return !a || b;
        case GateType::kOrYN: return a || !b;
    }
    return false;  // Unreachable for valid gate types.
}

/** True if swapping the inputs leaves the gate function unchanged. */
constexpr bool IsCommutative(GateType t) {
    switch (t) {
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor:
        case GateType::kXor:
        case GateType::kXnor:
            return true;
        default:
            return false;
    }
}

/** Short uppercase mnemonic, as used in disassembly and stats output. */
constexpr std::string_view GateTypeName(GateType t) {
    switch (t) {
        case GateType::kNot: return "NOT";
        case GateType::kAnd: return "AND";
        case GateType::kNand: return "NAND";
        case GateType::kOr: return "OR";
        case GateType::kNor: return "NOR";
        case GateType::kXnor: return "XNOR";
        case GateType::kXor: return "XOR";
        case GateType::kAndNY: return "ANDNY";
        case GateType::kAndYN: return "ANDYN";
        case GateType::kOrNY: return "ORNY";
        case GateType::kOrYN: return "ORYN";
    }
    return "?";
}

/** The gate computing NOT(gate), when it exists in the gate set. */
constexpr GateType NegatedGate(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kNand;
        case GateType::kNand: return GateType::kAnd;
        case GateType::kOr: return GateType::kNor;
        case GateType::kNor: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kAndNY: return GateType::kOrYN;
        case GateType::kAndYN: return GateType::kOrNY;
        case GateType::kOrNY: return GateType::kAndYN;
        case GateType::kOrYN: return GateType::kAndNY;
        case GateType::kNot: return GateType::kNot;  // NOT(NOT) handled as copy.
    }
    return t;
}

/** The gate equivalent to t with its first input negated, if in the set. */
constexpr GateType GateWithFirstInputNegated(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kAndNY;
        case GateType::kOr: return GateType::kOrNY;
        case GateType::kAndNY: return GateType::kAnd;
        case GateType::kOrNY: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kNand: return GateType::kOrYN;
        case GateType::kNor: return GateType::kAndYN;
        case GateType::kAndYN: return GateType::kNor;
        case GateType::kOrYN: return GateType::kNand;
        case GateType::kNot: return GateType::kNot;
    }
    return t;
}

/** The gate equivalent to t with its second input negated, if in the set. */
constexpr GateType GateWithSecondInputNegated(GateType t) {
    switch (t) {
        case GateType::kAnd: return GateType::kAndYN;
        case GateType::kOr: return GateType::kOrYN;
        case GateType::kAndYN: return GateType::kAnd;
        case GateType::kOrYN: return GateType::kOr;
        case GateType::kXor: return GateType::kXnor;
        case GateType::kXnor: return GateType::kXor;
        case GateType::kNand: return GateType::kOrNY;
        case GateType::kNor: return GateType::kAndNY;
        case GateType::kAndNY: return GateType::kNor;
        case GateType::kOrNY: return GateType::kNand;
        case GateType::kNot: return GateType::kNot;
    }
    return t;
}

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_GATE_TYPE_H
