/**
 * @file
 * Bristol-fashion circuit import/export.
 *
 * "Bristol fashion" is the de-facto interchange format for boolean
 * circuits in the MPC/FHE community (the format of the published AES,
 * SHA, and adder circuits). Supporting it lets PyTFHE execute circuits
 * produced by other toolchains and lets other tools consume ours.
 *
 * Header: `<ngates> <nwires>`, then the input declaration
 * `<niv> <w1> ... <wniv>` and output declaration `<nov> <w1> ... <wnov>`.
 * Gate lines: `2 1 a b out AND|XOR`, `1 1 a out INV|EQW`,
 * `1 1 c out EQ` (constant 0/1). Wires 0..n_inputs-1 are the inputs and
 * the last wires are the outputs, in order.
 *
 * Export lowers the rich TFHE gate set to AND/XOR/INV and appends EQW
 * copies so outputs land on the tail wires; import accepts AND, XOR, INV,
 * NOT, EQ, and EQW.
 */
#ifndef PYTFHE_CIRCUIT_BRISTOL_H
#define PYTFHE_CIRCUIT_BRISTOL_H

#include <iosfwd>
#include <optional>
#include <string>

#include "circuit/netlist.h"

namespace pytfhe::circuit {

/**
 * Writes the netlist in Bristol fashion. Inputs become one input value of
 * n bits; outputs one output value of m bits (per-wire grouping metadata
 * is not preserved).
 */
void ExportBristol(std::ostream& os, const Netlist& netlist);

/** Convenience: export to a string. */
std::string ExportBristolString(const Netlist& netlist);

/** Parses a Bristol-fashion circuit. Returns nullopt + error on failure. */
std::optional<Netlist> ImportBristol(std::istream& is,
                                     std::string* error = nullptr);
std::optional<Netlist> ImportBristolString(const std::string& text,
                                           std::string* error = nullptr);

}  // namespace pytfhe::circuit

#endif  // PYTFHE_CIRCUIT_BRISTOL_H
