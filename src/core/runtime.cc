#include "core/runtime.h"

#include <cassert>

namespace pytfhe::core {

Ciphertexts Client::EncryptBits(const std::vector<bool>& bits) {
    Ciphertexts out;
    out.reserve(bits.size());
    for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
    return out;
}

Ciphertexts Client::EncryptValue(const hdl::DType& dtype, double value) {
    return EncryptBits(dtype.Encode(value));
}

Ciphertexts Client::EncryptValues(const hdl::DType& dtype,
                                  const std::vector<double>& values) {
    std::vector<bool> bits;
    for (double v : values) {
        const auto enc = dtype.Encode(v);
        bits.insert(bits.end(), enc.begin(), enc.end());
    }
    return EncryptBits(bits);
}

std::vector<bool> Client::DecryptBits(const Ciphertexts& cts) const {
    std::vector<bool> out;
    out.reserve(cts.size());
    for (const auto& c : cts) out.push_back(secret_.Decrypt(c));
    return out;
}

double Client::DecryptValue(const hdl::DType& dtype,
                            const Ciphertexts& cts) const {
    return dtype.Decode(DecryptBits(cts));
}

std::vector<double> Client::DecryptValues(const hdl::DType& dtype,
                                          const Ciphertexts& cts) const {
    const std::vector<bool> bits = DecryptBits(cts);
    const size_t w = dtype.TotalBits();
    assert(bits.size() % w == 0);
    std::vector<double> out;
    for (size_t i = 0; i + w <= bits.size(); i += w)
        out.push_back(dtype.Decode(
            std::vector<bool>(bits.begin() + i, bits.begin() + i + w)));
    return out;
}

std::unique_ptr<Server> Client::MakeServer() {
    return std::make_unique<Server>(
        std::make_unique<tfhe::GateEvaluator>(secret_, rng_));
}

Ciphertexts Server::Run(const pasm::Program& program,
                        const Ciphertexts& inputs, int32_t num_threads) {
    return executor_.Run(program, evaluator_, inputs, num_threads);
}

}  // namespace pytfhe::core
