#include "core/runtime.h"

#include <cassert>

#include "tfhe/multibit.h"

namespace pytfhe::core {

Ciphertexts Client::EncryptBits(const std::vector<bool>& bits) {
    Ciphertexts out;
    out.reserve(bits.size());
    for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
    return out;
}

Ciphertexts Client::EncryptValue(const hdl::DType& dtype, double value) {
    return EncryptBits(dtype.Encode(value));
}

Ciphertexts Client::EncryptValues(const hdl::DType& dtype,
                                  const std::vector<double>& values) {
    std::vector<bool> bits;
    for (double v : values) {
        const auto enc = dtype.Encode(v);
        bits.insert(bits.end(), enc.begin(), enc.end());
    }
    return EncryptBits(bits);
}

Ciphertexts Client::EncryptBitsFor(const pasm::Program& program,
                                   const std::vector<bool>& bits) {
    const int32_t p = program.MessageModulus();
    if (p == 0) return EncryptBits(bits);
    Ciphertexts out;
    out.reserve(bits.size());
    for (bool b : bits)
        out.push_back(tfhe::LweEncryptDigit(b ? 1 : 0, p,
                                            secret_.params.lwe_noise_stddev,
                                            secret_.lwe_key, rng_));
    return out;
}

Ciphertexts Client::EncryptValueFor(const pasm::Program& program,
                                    const hdl::DType& dtype, double value) {
    return EncryptBitsFor(program, dtype.Encode(value));
}

std::vector<bool> Client::DecryptBits(const Ciphertexts& cts) const {
    std::vector<bool> out;
    out.reserve(cts.size());
    for (const auto& c : cts) out.push_back(secret_.Decrypt(c));
    return out;
}

std::vector<bool> Client::DecryptBitsFor(const pasm::Program& program,
                                         const Ciphertexts& cts) const {
    const int32_t p = program.MessageModulus();
    if (p == 0) return DecryptBits(cts);
    std::vector<bool> out;
    out.reserve(cts.size());
    for (const auto& c : cts)
        out.push_back(tfhe::LweDecryptDigit(c, secret_.lwe_key, p) != 0);
    return out;
}

double Client::DecryptValueFor(const pasm::Program& program,
                               const hdl::DType& dtype,
                               const Ciphertexts& cts) const {
    return dtype.Decode(DecryptBitsFor(program, cts));
}

double Client::DecryptValue(const hdl::DType& dtype,
                            const Ciphertexts& cts) const {
    return dtype.Decode(DecryptBits(cts));
}

std::vector<double> Client::DecryptValues(const hdl::DType& dtype,
                                          const Ciphertexts& cts) const {
    const std::vector<bool> bits = DecryptBits(cts);
    const size_t w = dtype.TotalBits();
    assert(bits.size() % w == 0);
    std::vector<double> out;
    for (size_t i = 0; i + w <= bits.size(); i += w)
        out.push_back(dtype.Decode(
            std::vector<bool>(bits.begin() + i, bits.begin() + i + w)));
    return out;
}

std::unique_ptr<Server> Client::MakeServer() {
    return std::make_unique<Server>(
        std::make_unique<tfhe::GateEvaluator>(secret_, rng_));
}

std::shared_ptr<tfhe::GateEvaluator> Client::MakeEvaluationKey() {
    return std::make_shared<tfhe::GateEvaluator>(secret_, rng_);
}

Ciphertexts Server::Run(const pasm::Program& program,
                        const Ciphertexts& inputs,
                        const RunOptions& options) {
    backend::ExecOptions exec;
    exec.num_threads = options.num_threads;
    exec.executor = &executor_;
    if (options.deadline_seconds > 0.0)
        exec.control.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.deadline_seconds));
    if (!options.profile)
        return backend::Execute(program, evaluator_, inputs, exec);

    const tfhe::GateProfileSnapshot before = gates_->profile().Snapshot();
    Ciphertexts out = backend::Execute(program, evaluator_, inputs, exec);
    const tfhe::GateProfileSnapshot after = gates_->profile().Snapshot();
    last_run_profile_ = tfhe::GateProfileSnapshot{
        after.linear_seconds - before.linear_seconds,
        after.blind_rotate_seconds - before.blind_rotate_seconds,
        after.key_switch_seconds - before.key_switch_seconds,
        after.bootstrap_count - before.bootstrap_count};
    return out;
}

Ciphertexts Server::Run(const pasm::Program& program,
                        const Ciphertexts& inputs, int32_t num_threads) {
    RunOptions options;
    options.num_threads = num_threads;
    return Run(program, inputs, options);
}

}  // namespace pytfhe::core
