/**
 * @file
 * core::TenantKeyCache — bounded residency for per-tenant evaluation keys.
 *
 * A bootstrapping key is tens of megabytes; a registry that keeps every
 * tenant's key resident forever dies at ~100 tenants. This cache bounds
 * resident key bytes with an LRU over tenants:
 *
 *  - Residency: Put() makes a key resident; once resident bytes exceed
 *    `capacity_bytes`, least-recently-used entries are dropped from the
 *    cache. capacity_bytes == 0 means unlimited (the pre-cache behavior:
 *    every registered key stays resident).
 *  - Pinning: Get() returns a shared_ptr to the tenant entry. Eviction
 *    only drops the cache's reference — an in-flight job that pinned the
 *    entry keeps the evaluator (and the key behind it) alive until the
 *    job completes, so eviction can never free key material under a
 *    running job. Evicted-but-pinned bytes are accounted separately
 *    (stats().pinned_evicted_bytes): the memory guarantee is
 *    resident <= capacity, resident + pinned <= capacity + in-flight keys.
 *  - Lazy reload: a tenant registered with a KeySource (a callback that
 *    loads the key, e.g. from a CRC32C-v3 evaluation-key artifact on
 *    disk) is reloaded transparently on a Get() miss. Reloads are
 *    single-flight per tenant — concurrent getters of the same evicted
 *    key wait for one load instead of issuing duplicates — and the cache
 *    lock is NOT held during the load, so resident tenants submit
 *    unimpeded while a cold key streams in. A throwing source (e.g.
 *    tfhe::CorruptPayloadError on a bit-flipped artifact) propagates to
 *    exactly the getters of that tenant.
 *
 * Thread-safe; one mutex guards the index, never held across a reload.
 */
#ifndef PYTFHE_CORE_KEY_CACHE_H
#define PYTFHE_CORE_KEY_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "backend/evaluator.h"
#include "tfhe/gates.h"

namespace pytfhe::core {

using tfhe::KeyId;

/**
 * Loads one tenant's evaluation key on demand (cache miss after eviction,
 * or first use of a lazily registered tenant). Must return a non-null
 * evaluator whose key_id() matches the tenant it was registered for;
 * throws (typically tfhe::CorruptPayloadError) when the backing artifact
 * is unreadable. Called without the cache lock held; may run concurrently
 * for different tenants but never twice concurrently for the same one.
 */
using KeySource = std::function<std::shared_ptr<tfhe::GateEvaluator>()>;

/** Accounted size of one evaluation key (FFT-domain bk + ksk samples). */
uint64_t EvaluationKeyBytes(const tfhe::GateEvaluator& gates);

/**
 * A KeySource that opens `path` and loads the CRC32C-v3 evaluation-key
 * artifact (tfhe::SaveEvaluationKey) inside; throws
 * tfhe::CorruptPayloadError on a missing, truncated, or bit-flipped file.
 */
KeySource FileKeySource(std::string path);

/**
 * One resident tenant: the owning handle on the key material plus the
 * TfheEvaluator the scheduler calls into, and the fairness weight the
 * serving layer schedules it with. Jobs pin this via shared_ptr for
 * their whole lifetime.
 */
struct TenantEntry {
    std::shared_ptr<tfhe::GateEvaluator> gates;
    backend::TfheEvaluator evaluator;
    uint64_t bytes = 0;
    uint32_t weight = 1;

    TenantEntry(std::shared_ptr<tfhe::GateEvaluator> g, uint32_t w)
        : gates(std::move(g)),
          evaluator(*gates),
          bytes(EvaluationKeyBytes(*gates)),
          weight(w) {}
};

/** Counters; a consistent snapshot is taken under the cache lock. */
struct KeyCacheStats {
    uint64_t hits = 0;        ///< Get() served from resident entries.
    uint64_t misses = 0;      ///< Get() that found no resident entry.
    uint64_t reloads = 0;     ///< Misses served by a KeySource load.
    uint64_t reload_failures = 0;  ///< KeySource calls that threw.
    uint64_t evictions = 0;   ///< Entries dropped by the LRU.
    uint64_t inserts = 0;     ///< Put() + successful reloads.
    uint64_t resident_keys = 0;
    uint64_t resident_bytes = 0;       ///< Held by the cache right now.
    uint64_t peak_resident_bytes = 0;  ///< Max resident_bytes observed.
    /** Bytes of evicted entries still pinned by in-flight jobs. */
    uint64_t pinned_evicted_bytes = 0;
    /** Max of resident + pinned-evicted bytes observed. */
    uint64_t peak_total_bytes = 0;
    double reload_seconds = 0.0;  ///< Wall time spent in KeySource calls.

    double HitRate() const {
        const uint64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
};

class TenantKeyCache {
  public:
    /** capacity_bytes == 0: unlimited (every key stays resident). */
    explicit TenantKeyCache(uint64_t capacity_bytes = 0)
        : capacity_bytes_(capacity_bytes) {}

    TenantKeyCache(const TenantKeyCache&) = delete;
    TenantKeyCache& operator=(const TenantKeyCache&) = delete;

    /**
     * Makes `gates` the resident key for its KeyId and returns the entry
     * (pinned for the caller). Re-registering an already-known tenant
     * REPLACES the resident key — the key-refresh path; jobs already
     * in flight keep their pinned old entry, new submissions see the new
     * one. May evict other tenants (or, when a single key exceeds the
     * capacity, the new entry itself — the returned pin keeps it usable).
     */
    std::shared_ptr<TenantEntry> Put(std::shared_ptr<tfhe::GateEvaluator> gates,
                                     uint32_t weight = 1);

    /**
     * Registers a tenant whose key loads on demand: no bytes are resident
     * until the first Get(). Replaces any previous source for `id`; the
     * weight applies once the key loads (and to an already-resident entry).
     */
    void PutSource(KeyId id, KeySource source, uint32_t weight = 1);

    /**
     * The entry for `id`, pinned: a resident hit touches the LRU; a miss
     * with a registered KeySource reloads (single-flight, lock dropped
     * during the load, exceptions propagate); a miss without a source
     * returns nullptr (unknown tenant, or registered key was evicted with
     * no way back — the caller should treat both as unregistered).
     */
    std::shared_ptr<TenantEntry> Get(KeyId id);

    /**
     * Drops `id`'s residency (pinned jobs are unaffected); the KeySource,
     * if any, is retained so the next Get() reloads. Returns true if an
     * entry was resident. A tenant evicted with no source becomes
     * unknown once its last pin drops.
     */
    bool Evict(KeyId id);

    /** True when `id` is resident or reloadable (has a KeySource). */
    bool Known(KeyId id) const;

    /** Tenants the cache can serve (resident or reloadable). */
    uint64_t KnownCount() const;

    KeyCacheStats stats() const;

    uint64_t capacity_bytes() const { return capacity_bytes_; }

  private:
    struct Slot {
        std::shared_ptr<TenantEntry> entry;  ///< Null when not resident.
        std::list<uint64_t>::iterator lru_it;  ///< Valid iff entry != null.
        KeySource source;  ///< Null when the key cannot be reloaded.
        uint32_t weight = 1;
        bool loading = false;  ///< A reload for this slot is in flight.
    };

    /** Inserts a resident entry for a slot and trims to capacity. */
    void InsertLocked(uint64_t id, Slot& slot,
                      std::shared_ptr<TenantEntry> entry);
    /** Evicts LRU entries until resident bytes fit the capacity. */
    void TrimLocked();
    /** Moves an evicted entry to the pinned ledger (drops dead pins). */
    void AccountEvictedLocked(const std::shared_ptr<TenantEntry>& entry);
    /** Recomputes pinned bytes and the peak-total watermark. */
    void RefreshWatermarksLocked();
    /** Drops slots that can never serve again (no entry, no source). */
    void EraseIfDeadLocked(uint64_t id);

    const uint64_t capacity_bytes_;

    mutable std::mutex mu_;
    std::condition_variable loaded_cv_;  ///< Single-flight reload waiters.
    std::map<uint64_t, Slot> slots_;
    std::list<uint64_t> lru_;  ///< Front = most recently used resident id.
    uint64_t resident_bytes_ = 0;
    /** Evicted entries that may still be pinned by in-flight jobs. */
    std::vector<std::weak_ptr<TenantEntry>> evicted_pins_;
    KeyCacheStats stats_;
};

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_KEY_CACHE_H
