#include "core/key_cache.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "tfhe/serialization.h"

namespace pytfhe::core {

uint64_t EvaluationKeyBytes(const tfhe::GateEvaluator& gates) {
    const tfhe::BootstrappingKey& key = gates.key();
    uint64_t bytes = key.BkByteSize();
    const auto& raw = key.ksk().RawKeys();
    if (!raw.empty())
        bytes += raw.size() * (raw[0].a.size() + 1) * sizeof(tfhe::Torus32);
    return bytes;
}

KeySource FileKeySource(std::string path) {
    return [path = std::move(path)]() {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            throw tfhe::CorruptPayloadError(
                "load EvaluationKey: cannot open " + path);
        tfhe::EvaluationKeyArtifact artifact =
            tfhe::LoadEvaluationKeyOrThrow(is);
        return std::make_shared<tfhe::GateEvaluator>(
            std::make_shared<tfhe::BootstrappingKey>(
                std::move(artifact.key)),
            artifact.key_id);
    };
}

std::shared_ptr<TenantEntry> TenantKeyCache::Put(
    std::shared_ptr<tfhe::GateEvaluator> gates, uint32_t weight) {
    auto entry =
        std::make_shared<TenantEntry>(std::move(gates), std::max(1u, weight));
    const uint64_t id = entry->gates->key_id().value;
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[id];
    slot.weight = entry->weight;
    InsertLocked(id, slot, entry);
    return entry;
}

void TenantKeyCache::PutSource(KeyId id, KeySource source, uint32_t weight) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[id.value];
    slot.source = std::move(source);
    slot.weight = std::max(1u, weight);
    if (slot.entry) slot.entry->weight = slot.weight;
}

std::shared_ptr<TenantEntry> TenantKeyCache::Get(KeyId id) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        auto it = slots_.find(id.value);
        if (it == slots_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        Slot& slot = it->second;
        if (slot.entry) {
            ++stats_.hits;
            lru_.erase(slot.lru_it);
            lru_.push_front(id.value);
            slot.lru_it = lru_.begin();
            return slot.entry;
        }
        if (slot.loading) {
            // Another getter is already reloading this tenant; wait for it
            // rather than loading the same megabytes twice.
            loaded_cv_.wait(lock);
            continue;
        }
        if (!slot.source) {
            ++stats_.misses;
            return nullptr;
        }
        ++stats_.misses;
        slot.loading = true;
        KeySource source = slot.source;
        lock.unlock();
        // The load runs without the lock: resident tenants keep submitting
        // while this key streams in.
        std::shared_ptr<tfhe::GateEvaluator> gates;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            gates = source();
        } catch (...) {
            lock.lock();
            stats_.reload_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            ++stats_.reload_failures;
            auto again = slots_.find(id.value);
            if (again != slots_.end()) again->second.loading = false;
            loaded_cv_.notify_all();
            throw;
        }
        lock.lock();
        stats_.reload_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        auto again = slots_.find(id.value);
        if (again == slots_.end()) {
            // The tenant vanished while loading (evicted + erased); hand
            // the loaded key to this caller without caching it.
            loaded_cv_.notify_all();
            if (!gates || gates->key_id() != id)
                throw tfhe::CorruptPayloadError(
                    "load EvaluationKey: source returned wrong key for " +
                    id.ToString());
            ++stats_.reloads;
            return std::make_shared<TenantEntry>(std::move(gates), 1);
        }
        Slot& reslot = again->second;
        reslot.loading = false;
        loaded_cv_.notify_all();
        if (!gates || gates->key_id() != id)
            throw tfhe::CorruptPayloadError(
                "load EvaluationKey: source returned wrong key for " +
                id.ToString());
        if (reslot.entry) {
            // A concurrent Put landed a fresher key while we loaded;
            // prefer it and drop the loaded copy.
            ++stats_.hits;
            lru_.erase(reslot.lru_it);
            lru_.push_front(id.value);
            reslot.lru_it = lru_.begin();
            return reslot.entry;
        }
        ++stats_.reloads;
        auto entry = std::make_shared<TenantEntry>(std::move(gates),
                                                   reslot.weight);
        InsertLocked(id.value, reslot, entry);
        return entry;
    }
}

bool TenantKeyCache::Evict(KeyId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(id.value);
    if (it == slots_.end() || !it->second.entry) return false;
    Slot& slot = it->second;
    lru_.erase(slot.lru_it);
    resident_bytes_ -= slot.entry->bytes;
    ++stats_.evictions;
    AccountEvictedLocked(slot.entry);
    slot.entry.reset();
    EraseIfDeadLocked(id.value);
    RefreshWatermarksLocked();
    return true;
}

bool TenantKeyCache::Known(KeyId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(id.value);
    return it != slots_.end() &&
           (it->second.entry != nullptr || it->second.source != nullptr ||
            it->second.loading);
}

uint64_t TenantKeyCache::KnownCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
}

KeyCacheStats TenantKeyCache::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    KeyCacheStats out = stats_;
    out.resident_keys = lru_.size();
    out.resident_bytes = resident_bytes_;
    uint64_t pinned = 0;
    for (const auto& weak : evicted_pins_)
        if (auto entry = weak.lock()) pinned += entry->bytes;
    out.pinned_evicted_bytes = pinned;
    out.peak_total_bytes =
        std::max(out.peak_total_bytes, resident_bytes_ + pinned);
    return out;
}

void TenantKeyCache::InsertLocked(uint64_t id, Slot& slot,
                                  std::shared_ptr<TenantEntry> entry) {
    if (slot.entry) {
        // Replacement (key refresh): the old entry leaves residency; jobs
        // pinning it are unaffected.
        lru_.erase(slot.lru_it);
        resident_bytes_ -= slot.entry->bytes;
        AccountEvictedLocked(slot.entry);
    }
    slot.entry = std::move(entry);
    lru_.push_front(id);
    slot.lru_it = lru_.begin();
    resident_bytes_ += slot.entry->bytes;
    ++stats_.inserts;
    TrimLocked();
    RefreshWatermarksLocked();
}

void TenantKeyCache::TrimLocked() {
    while (capacity_bytes_ > 0 && resident_bytes_ > capacity_bytes_ &&
           !lru_.empty()) {
        const uint64_t victim = lru_.back();
        lru_.pop_back();
        Slot& slot = slots_[victim];
        resident_bytes_ -= slot.entry->bytes;
        ++stats_.evictions;
        AccountEvictedLocked(slot.entry);
        slot.entry.reset();
        EraseIfDeadLocked(victim);
    }
}

void TenantKeyCache::AccountEvictedLocked(
    const std::shared_ptr<TenantEntry>& entry) {
    // Compact dead pins first so the ledger stays O(in-flight evictions).
    size_t kept = 0;
    for (auto& weak : evicted_pins_)
        if (!weak.expired()) evicted_pins_[kept++] = std::move(weak);
    evicted_pins_.resize(kept);
    evicted_pins_.emplace_back(entry);
}

void TenantKeyCache::RefreshWatermarksLocked() {
    stats_.peak_resident_bytes =
        std::max(stats_.peak_resident_bytes, resident_bytes_);
    uint64_t pinned = 0;
    for (const auto& weak : evicted_pins_)
        if (auto entry = weak.lock()) pinned += entry->bytes;
    stats_.peak_total_bytes =
        std::max(stats_.peak_total_bytes, resident_bytes_ + pinned);
}

void TenantKeyCache::EraseIfDeadLocked(uint64_t id) {
    auto it = slots_.find(id);
    if (it != slots_.end() && !it->second.entry && !it->second.source &&
        !it->second.loading)
        slots_.erase(it);
}

}  // namespace pytfhe::core
