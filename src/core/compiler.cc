#include "core/compiler.h"

namespace pytfhe::core {

std::optional<Compiled> Compile(const circuit::Netlist& netlist,
                                const CompileOptions& options,
                                std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }
    circuit::OptResult opt = circuit::Optimize(netlist, options.opt);
    circuit::ElisionStats elision_stats;
    if (options.params && options.elision.enabled) {
        circuit::ElisionResult elided = circuit::ElideBootstraps(
            opt.netlist, *options.params, options.elision);
        opt.netlist = std::move(elided.netlist);
        elision_stats = elided.stats;
    }
    auto program = pasm::Assemble(opt.netlist, error);
    if (!program) return std::nullopt;
    Compiled out{std::move(*program), opt.netlist.ComputeStats(),
                 opt.stats, elision_stats};
    return out;
}

std::optional<Compiled> CompileModule(const nn::Module& module,
                                      const hdl::DType& dtype,
                                      const nn::Shape& input_shape,
                                      const CompileOptions& options,
                                      std::string* error) {
    hdl::Builder builder;
    nn::Tensor in = nn::Tensor::Input(builder, dtype, input_shape, "in");
    nn::Tensor out = module.Forward(builder, in);
    out.Output(builder, "out");
    return Compile(builder.netlist(), options, error);
}

}  // namespace pytfhe::core
