#include "core/compiler.h"

#include "pasm/memory_plan.h"

namespace pytfhe::core {

std::optional<Compiled> Compile(const circuit::Netlist& netlist,
                                const CompileOptions& options,
                                std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }
    circuit::OptResult opt = circuit::Optimize(netlist, options.opt);
    circuit::ElisionStats elision_stats;
    if (options.params && options.elision.enabled) {
        circuit::ElisionResult elided = circuit::ElideBootstraps(
            opt.netlist, *options.params, options.elision);
        opt.netlist = std::move(elided.netlist);
        elision_stats = elided.stats;
    }
    auto program = pasm::Assemble(opt.netlist, error);
    if (!program) return std::nullopt;
    if (options.plan_memory) {
        // Level-safe plans are valid on every backend; a freshly assembled
        // program always accepts its own plan, so failure here is a bug.
        auto planned = program->WithPlan(pasm::ComputeMemoryPlan(*program),
                                         error);
        if (!planned) return std::nullopt;
        program = std::move(planned);
    }
    Compiled out{std::move(*program), opt.netlist.ComputeStats(),
                 opt.stats, elision_stats};
    return out;
}

std::optional<Compiled> CompileModule(const nn::Module& module,
                                      const hdl::DType& dtype,
                                      const nn::Shape& input_shape,
                                      const CompileOptions& options,
                                      std::string* error) {
    hdl::Builder builder;
    nn::Tensor in = nn::Tensor::Input(builder, dtype, input_shape, "in");
    nn::Tensor out = module.Forward(builder, in);
    out.Output(builder, "out");
    return Compile(builder.netlist(), options, error);
}

}  // namespace pytfhe::core
