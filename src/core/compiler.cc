#include "core/compiler.h"

#include <string>

#include "pasm/memory_plan.h"
#include "tfhe/noise.h"

namespace pytfhe::core {

namespace {

/** Heaviest sum of squared LUT operand weights anywhere in the netlist. */
int64_t MaxWeightSq(const circuit::Netlist& netlist) {
    int64_t max_sq = 0;
    for (circuit::NodeId id = 2; id < netlist.NumNodes(); ++id) {
        const circuit::Node& n = netlist.GetNode(id);
        if (n.kind != circuit::NodeKind::kGate ||
            n.type != circuit::GateType::kLut)
            continue;
        int64_t sq = 0;
        for (const int8_t w : netlist.Lut(id).weights)
            sq += static_cast<int64_t>(w) * w;
        max_sq = std::max(max_sq, sq);
    }
    return max_sq;
}

}  // namespace

std::optional<Compiled> Compile(const circuit::Netlist& netlist,
                                const CompileOptions& options,
                                std::string* error) {
    if (auto err = netlist.Validate()) {
        if (error) *error = *err;
        return std::nullopt;
    }
    const bool source_multibit = netlist.MessageModulus() != 0;
    if (options.multibit != 0 && options.multibit != 4 &&
        options.multibit != 8 && options.multibit != 16) {
        if (error)
            *error = "CompileOptions::multibit must be 0, 4, 8, or 16; got " +
                     std::to_string(options.multibit);
        return std::nullopt;
    }
    if (options.multibit != 0 && !source_multibit && !options.params) {
        if (error)
            *error =
                "multibit compilation needs CompileOptions::params: LUT cone "
                "sizing depends on the parameter set's noise budget";
        return std::nullopt;
    }
    circuit::OptResult opt = circuit::Optimize(netlist, options.opt);
    // Boolean-to-LUT lowering, budgeted by the parameter set. The weakest
    // useful cone is two leaves with binary weights (1^2 + 2^2 = 5); a
    // budget below that means the set cannot express any LUT gate at this
    // modulus, and the boolean pipeline is the only sound output.
    circuit::LutLowerStats lut_stats;
    bool fell_back = false;
    if (options.multibit != 0 && !source_multibit) {
        const int64_t budget =
            tfhe::MaxMultibitWeightBudget(*options.params, options.multibit);
        if (budget < 5) {
            fell_back = true;
        } else {
            circuit::LutLowerOptions lower;
            lower.message_modulus = options.multibit;
            lower.weight_budget = budget;
            circuit::LutLowerResult lowered =
                circuit::LowerToLuts(opt.netlist, lower);
            opt.netlist = std::move(lowered.netlist);
            lut_stats = lowered.stats;
        }
    }
    // A multibit netlist (lowered above, or built directly by the hdl
    // multibit generators) must fit the parameter set's noise budget —
    // otherwise outputs decrypt to garbage with no runtime signal.
    if (opt.netlist.MessageModulus() != 0 && options.params) {
        const tfhe::MultibitNoiseCheck check = tfhe::CheckMultibitParams(
            *options.params, opt.netlist.MessageModulus(),
            MaxWeightSq(opt.netlist));
        if (!check.fits) {
            if (error)
                *error = "multibit netlist exceeds the parameter set's "
                         "noise budget: " +
                         check.reason;
            return std::nullopt;
        }
    }
    // Elision is a boolean-pipeline pass; every multibit gate bootstraps.
    circuit::ElisionStats elision_stats;
    if (options.params && options.elision.enabled &&
        opt.netlist.MessageModulus() == 0) {
        circuit::ElisionResult elided = circuit::ElideBootstraps(
            opt.netlist, *options.params, options.elision);
        opt.netlist = std::move(elided.netlist);
        elision_stats = elided.stats;
    }
    auto program = pasm::Assemble(opt.netlist, error);
    if (!program) return std::nullopt;
    if (options.plan_memory) {
        // Level-safe plans are valid on every backend; a freshly assembled
        // program always accepts its own plan, so failure here is a bug.
        auto planned = program->WithPlan(pasm::ComputeMemoryPlan(*program),
                                         error);
        if (!planned) return std::nullopt;
        program = std::move(planned);
    }
    Compiled out{std::move(*program), opt.netlist.ComputeStats(),
                 opt.stats, elision_stats, lut_stats, fell_back};
    return out;
}

std::optional<Compiled> CompileModule(const nn::Module& module,
                                      const hdl::DType& dtype,
                                      const nn::Shape& input_shape,
                                      const CompileOptions& options,
                                      std::string* error) {
    hdl::Builder builder;
    nn::Tensor in = nn::Tensor::Input(builder, dtype, input_shape, "in");
    nn::Tensor out = module.Forward(builder, in);
    out.Output(builder, "out");
    return Compile(builder.netlist(), options, error);
}

}  // namespace pytfhe::core
