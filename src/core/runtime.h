/**
 * @file
 * Client/server runtime roles for the cloud scenario of Fig. 1.
 *
 * The Client owns the secret key: it encodes and encrypts data, ships the
 * public evaluation key, and decrypts results. The Server holds only the
 * evaluation key and executes compiled programs over ciphertexts — it
 * never sees a plaintext. Tests assert this split by construction: Server
 * has no decrypt path.
 */
#ifndef PYTFHE_CORE_RUNTIME_H
#define PYTFHE_CORE_RUNTIME_H

#include <memory>
#include <vector>

#include "backend/executor.h"
#include "backend/interpreter.h"
#include "hdl/dtype.h"
#include "tfhe/gates.h"

namespace pytfhe::core {

using Ciphertexts = std::vector<tfhe::LweSample>;

class Server;

/** The data owner. */
class Client {
  public:
    explicit Client(const tfhe::Params& params, uint64_t seed = 1)
        : rng_(seed), secret_(params, rng_) {}

    /** Encrypts raw bits. */
    Ciphertexts EncryptBits(const std::vector<bool>& bits);

    /** Encodes a number in `dtype` and encrypts its bits. */
    Ciphertexts EncryptValue(const hdl::DType& dtype, double value);

    /** Encodes and encrypts a vector of numbers, concatenated. */
    Ciphertexts EncryptValues(const hdl::DType& dtype,
                              const std::vector<double>& values);

    std::vector<bool> DecryptBits(const Ciphertexts& cts) const;
    double DecryptValue(const hdl::DType& dtype, const Ciphertexts& cts) const;
    std::vector<double> DecryptValues(const hdl::DType& dtype,
                                      const Ciphertexts& cts) const;

    /**
     * Produces the server for this client's keys. Generating the
     * bootstrapping key is the expensive step of the protocol.
     */
    std::unique_ptr<Server> MakeServer();

  private:
    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
};

/** The untrusted evaluator: public key material only. */
class Server {
  public:
    explicit Server(std::unique_ptr<tfhe::GateEvaluator> gates)
        : gates_(std::move(gates)), evaluator_(*gates_) {}

    /**
     * Executes a compiled program over ciphertexts. num_threads > 1 runs
     * on the server's persistent dependency-counting executor (the worker
     * pool is shared across calls); num_threads == 1 runs the sequential
     * interpreter. Throws std::invalid_argument on input-count mismatch or
     * num_threads < 1.
     */
    Ciphertexts Run(const pasm::Program& program, const Ciphertexts& inputs,
                    int32_t num_threads = 1);

    const tfhe::GateProfile& profile() const { return gates_->profile(); }

  private:
    std::unique_ptr<tfhe::GateEvaluator> gates_;
    backend::TfheEvaluator evaluator_;
    backend::Executor executor_;
};

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_RUNTIME_H
