/**
 * @file
 * Client/server runtime roles for the cloud scenario of Fig. 1.
 *
 * The Client owns the secret key: it encodes and encrypts data, ships the
 * public evaluation key, and decrypts results. The Server holds only the
 * evaluation key and executes compiled programs over ciphertexts — it
 * never sees a plaintext. Tests assert this split by construction: Server
 * has no decrypt path.
 *
 * Server::Run is the blocking single-request call of the paper's Fig. 1
 * scenario; the multi-tenant asynchronous path (many clients, one shared
 * worker pool) is core::Service in service.h.
 */
#ifndef PYTFHE_CORE_RUNTIME_H
#define PYTFHE_CORE_RUNTIME_H

#include <memory>
#include <vector>

#include "backend/execute.h"
#include "backend/executor.h"
#include "backend/interpreter.h"
#include "hdl/dtype.h"
#include "tfhe/gates.h"

namespace pytfhe::core {

using Ciphertexts = std::vector<tfhe::LweSample>;
using tfhe::KeyId;

/**
 * Per-request knobs for Server::Run and Service::Submit.
 *
 * - num_threads: workers for this run (Server::Run only — a Service
 *   schedules on its shared pool and ignores it).
 * - deadline_seconds: wall-clock budget, 0 = unlimited. Enforced
 *   cooperatively at gate granularity; an expired run throws (Server::Run)
 *   or resolves the job kDeadlineExceeded (Service).
 * - profile: when true, Server::Run records the per-run gate profile
 *   delta, retrievable via Server::last_run_profile(). Service jobs get
 *   per-job metrics on their handle regardless.
 */
struct RunOptions {
    int32_t num_threads = 1;
    double deadline_seconds = 0.0;
    bool profile = false;
};

class Server;

/** The data owner. */
class Client {
  public:
    explicit Client(const tfhe::Params& params, uint64_t seed = 1)
        : rng_(seed),
          secret_(params, rng_),
          key_id_(tfhe::ComputeKeyId(secret_)) {}

    /** Encrypts raw bits. */
    Ciphertexts EncryptBits(const std::vector<bool>& bits);

    /**
     * Encrypts raw bits in the encoding `program` executes under: the
     * boolean +-1/8 encoding for classic programs, the digit encoding
     * phi(v) = (2v+1)/(4p) for multibit (format v4) programs. Use this
     * overload whenever the program may have been compiled with
     * CompileOptions::multibit; the plain EncryptBits produces samples a
     * multibit program cannot consume.
     */
    Ciphertexts EncryptBitsFor(const pasm::Program& program,
                               const std::vector<bool>& bits);

    /** Program-aware flavor of EncryptValue (see EncryptBitsFor). */
    Ciphertexts EncryptValueFor(const pasm::Program& program,
                                const hdl::DType& dtype, double value);

    /** Encodes a number in `dtype` and encrypts its bits. */
    Ciphertexts EncryptValue(const hdl::DType& dtype, double value);

    /** Encodes and encrypts a vector of numbers, concatenated. */
    Ciphertexts EncryptValues(const hdl::DType& dtype,
                              const std::vector<double>& values);

    std::vector<bool> DecryptBits(const Ciphertexts& cts) const;

    /**
     * Decrypts outputs of `program` (see EncryptBitsFor): digit decoding
     * for multibit programs — their outputs are 1-bit digits by the
     * format's output rule — sign decoding otherwise.
     */
    std::vector<bool> DecryptBitsFor(const pasm::Program& program,
                                     const Ciphertexts& cts) const;

    /** Program-aware flavor of DecryptValue (see DecryptBitsFor). */
    double DecryptValueFor(const pasm::Program& program,
                           const hdl::DType& dtype,
                           const Ciphertexts& cts) const;
    double DecryptValue(const hdl::DType& dtype, const Ciphertexts& cts) const;
    std::vector<double> DecryptValues(const hdl::DType& dtype,
                                      const Ciphertexts& cts) const;

    /**
     * Produces the server for this client's keys. Generating the
     * bootstrapping key is the expensive step of the protocol.
     */
    std::unique_ptr<Server> MakeServer();

    /**
     * Produces just the public evaluation key, for registering with a
     * shared core::Service (one Service serves many tenants' keys). The
     * returned evaluator carries this client's KeyId.
     */
    std::shared_ptr<tfhe::GateEvaluator> MakeEvaluationKey();

    /**
     * Stable identity of this client's key material. Every evaluation key
     * this client produces carries the same id, so a mismatch against a
     * server's key_id() means "wrong server" before any garbage decrypts.
     */
    KeyId key_id() const { return key_id_; }

  private:
    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    KeyId key_id_;
};

/** The untrusted evaluator: public key material only. */
class Server {
  public:
    explicit Server(std::unique_ptr<tfhe::GateEvaluator> gates)
        : gates_(std::move(gates)), evaluator_(*gates_) {}

    /**
     * Executes a compiled program over ciphertexts. options.num_threads >
     * 1 runs on the server's persistent dependency-counting executor (the
     * worker pool is shared across calls); 1 runs the sequential
     * interpreter — outputs are bit-identical either way. Throws
     * std::invalid_argument on input-count mismatch or num_threads < 1,
     * and backend::DeadlineExceededError when options.deadline_seconds
     * expires mid-run (checked at gate granularity; partial results are
     * discarded). Not safe to call concurrently — concurrent serving is
     * core::Service's job.
     */
    Ciphertexts Run(const pasm::Program& program, const Ciphertexts& inputs,
                    const RunOptions& options = {});

    /**
     * Deprecated positional-argument shim; delegates to the RunOptions
     * overload.
     */
    [[deprecated("pass core::RunOptions instead of a bare thread count")]]
    Ciphertexts Run(const pasm::Program& program, const Ciphertexts& inputs,
                    int32_t num_threads);

    const tfhe::GateProfile& profile() const { return gates_->profile(); }

    /**
     * Gate-profile delta of the most recent Run executed with
     * options.profile == true (zeroes before any such run).
     */
    const tfhe::GateProfileSnapshot& last_run_profile() const {
        return last_run_profile_;
    }

    /** Identity of the key material this server evaluates under. */
    KeyId key_id() const { return gates_->key_id(); }

  private:
    std::unique_ptr<tfhe::GateEvaluator> gates_;
    backend::TfheEvaluator evaluator_;
    backend::Executor executor_;
    tfhe::GateProfileSnapshot last_run_profile_;
};

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_RUNTIME_H
