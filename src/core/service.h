/**
 * @file
 * core::Service — the multi-tenant serving runtime.
 *
 * The Fig. 1 cloud scenario has one client and one blocking request; a
 * production server multiplexes many encrypted jobs from many clients
 * over one shared worker pool. Service owns the persistent
 * backend::Executor whose pool runs a backend::ServingExecutor: jobs from
 * different tenants interleave at gate granularity (see serving.h for the
 * fairness/backpressure policy), and each tenant evaluates under its own
 * registered evaluation key.
 *
 * Protocol:
 *   1. A client registers its public evaluation key once:
 *        service.RegisterTenant(client.MakeEvaluationKey())
 *      The returned KeyId equals client.key_id() — a stable digest of the
 *      key material, so the client can verify it is talking to a service
 *      that really holds *its* keys. Alternatively RegisterTenantSource
 *      registers a lazily loaded key (e.g. FileKeySource over a
 *      CRC32C-framed evaluation-key artifact): no bytes are resident
 *      until the first Submit.
 *   2. The client submits jobs against that id:
 *        auto job = service.Submit(id, program, inputs, options);
 *      Submit returns immediately with a JobHandle; an unknown id throws
 *      UnknownKeyError (instead of evaluating under the wrong key and
 *      returning garbage), and a full service throws
 *      backend::OverloadedError.
 *   3. The client waits on the handle and decrypts:
 *        Ciphertexts out = job.Get();   // or TryGet() to poll, Cancel()
 *
 * Key residency (key_cache.h): tenant keys are NOT unconditionally
 * resident. ServiceOptions::key_cache_capacity_bytes bounds resident key
 * bytes with an LRU over tenants; an evicted tenant with a registered
 * KeySource reloads transparently on its next Submit (the reload cost is
 * visible in stats().key_cache.reload_seconds), and an evicted tenant
 * without one reverts to unknown. Submitting pins the tenant's entry for
 * the whole job lifetime, so eviction can never free key material under
 * an in-flight job. A reload that throws tfhe::CorruptPayloadError (the
 * backing artifact rotted) surfaces as a JobHandle already in kFailed
 * whose Get() rethrows the typed error — a poisoned artifact fails that
 * tenant's jobs, never the pool.
 *
 * Fault tolerance rides in on the serving layer: configure
 * ServiceOptions::serving.retry (and, in tests, .fault_injector) and a
 * job killed by a transient gate failure is retried with backoff, the
 * last permitted attempt running isolated on the sequential interpreter.
 * A job that exhausts its attempts resolves JobStatus::kFailed and Get()
 * rethrows the typed backend::GateExecutionError; every other job and
 * the worker pool itself are unaffected. OverloadedError carries a
 * machine-readable retry-after hint (queue depth + estimated drain time).
 */
#ifndef PYTFHE_CORE_SERVICE_H
#define PYTFHE_CORE_SERVICE_H

#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "backend/serving.h"
#include "core/key_cache.h"
#include "core/runtime.h"

namespace pytfhe::core {

using backend::JobMetrics;
using backend::JobStatus;
using backend::OverloadedError;

/** Typed rejection: job submitted under a KeyId the service never saw. */
class UnknownKeyError : public std::invalid_argument {
  public:
    explicit UnknownKeyError(const std::string& what)
        : std::invalid_argument(what) {}
};

/** Service-wide configuration; see backend::ServingOptions for semantics. */
struct ServiceOptions {
    backend::ServingOptions serving;
    /**
     * Bound on resident evaluation-key bytes (key_cache.h). 0 = unlimited,
     * the pre-cache behavior: every registered key stays resident forever.
     * With a bound, least-recently-submitted tenants are evicted; in-flight
     * jobs keep their pinned keys, so the true memory ceiling is
     * capacity + keys pinned by running jobs.
     */
    uint64_t key_cache_capacity_bytes = 0;
};

/**
 * Future-like handle to one submitted job. Cheap to copy; valid after the
 * Service is destroyed (jobs are terminal by then). A handle may be born
 * terminal: when a lazy key reload fails with tfhe::CorruptPayloadError,
 * Submit returns a handle already in kFailed whose Get() rethrows that
 * typed error.
 */
class JobHandle {
  public:
    /** Blocks until the job is terminal; returns the terminal status. */
    JobStatus Wait() const {
        return job_ ? job_->Wait() : JobStatus::kFailed;
    }

    /** Non-blocking: terminal status, or nullopt while queued/running. */
    std::optional<JobStatus> TryGet() const {
        if (!job_) return JobStatus::kFailed;
        return job_->TryGet();
    }

    /**
     * Requests cancellation; true if it landed before completion (the job
     * will resolve kCancelled), false if the job was already terminal.
     */
    bool Cancel() const { return job_ ? job_->Cancel() : false; }

    /**
     * The result ciphertexts; blocks until terminal. Throws
     * backend::CancelledError / backend::DeadlineExceededError /
     * backend::GateExecutionError if the job ended without outputs, or
     * the latched tfhe::CorruptPayloadError when the tenant's key reload
     * failed at submit.
     */
    const Ciphertexts& Get() const {
        if (!job_) std::rethrow_exception(error_);
        return job_->Outputs();
    }

    /**
     * The latched gate error of a kFailed job, nullopt otherwise (a
     * reload-failed handle has no gate error — Get() carries its cause);
     * blocks until terminal.
     */
    std::optional<backend::GateExecutionError> Error() const {
        if (!job_) return std::nullopt;
        return job_->Error();
    }

    /** Per-job accounting (queue wait, gates, elided bootstraps, wall). */
    JobMetrics Metrics() const {
        return job_ ? job_->Metrics() : JobMetrics{};
    }

    /** The tenant key this job evaluates under. */
    KeyId key_id() const { return key_id_; }

  private:
    friend class Service;
    using BackendJob =
        backend::ServingExecutor<backend::TfheEvaluator>::Job;

    JobHandle(std::shared_ptr<BackendJob> job, KeyId key_id)
        : job_(std::move(job)), key_id_(key_id) {}

    /** Born-terminal handle: submit-time failure, no backend job. */
    JobHandle(std::exception_ptr error, KeyId key_id)
        : error_(std::move(error)), key_id_(key_id) {}

    std::shared_ptr<BackendJob> job_;
    std::exception_ptr error_;
    KeyId key_id_;
};

/**
 * The serving runtime. Construction starts the worker pool; destruction
 * cancels outstanding jobs and drains it. All methods are thread-safe.
 */
class Service {
  public:
    explicit Service(const ServiceOptions& options = {});
    ~Service();
    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /**
     * Registers one tenant's public evaluation key and returns its KeyId
     * (the stable digest the key already carries — the client holds the
     * same value). Registering an id that is already known REPLACES the
     * resident key (the key-refresh path: jobs already in flight finish
     * under the old key they pinned; new submissions use the new one).
     * `weight` is the tenant's fairness weight (see
     * backend::ServingOptions::per_job_inflight_cap; clamped to >= 1).
     * Throws std::invalid_argument for a null evaluator or one without a
     * key identity (key_id().IsSet() == false, e.g. loaded from disk
     * without recording an id). May evict other tenants when the key
     * cache is over capacity.
     */
    KeyId RegisterTenant(std::shared_ptr<tfhe::GateEvaluator> gates,
                         uint32_t weight = 1);

    /**
     * Registers a tenant whose key loads on demand: `source` (e.g.
     * FileKeySource over a CRC32C-framed evaluation-key artifact) is
     * invoked on the tenant's first Submit and again after any eviction.
     * No key bytes are resident until then. Replaces any previous source
     * for `id`. Throws std::invalid_argument for an unset id or null
     * source.
     */
    void RegisterTenantSource(KeyId id, KeySource source,
                              uint32_t weight = 1);

    /**
     * Drops the tenant's resident key (in-flight jobs are unaffected —
     * they pinned it). With a registered KeySource the tenant reloads on
     * its next Submit; without one it becomes unknown. Returns true if a
     * key was resident.
     */
    bool EvictTenant(KeyId key);

    /**
     * Submits a job for tenant `key`: `program` over `inputs`, scheduled
     * on the shared pool. Returns immediately; pins the tenant's key for
     * the job's lifetime, reloading it first if evicted (a reload that
     * throws tfhe::CorruptPayloadError yields a kFailed handle instead).
     * options.deadline_seconds bounds the job's wall time (queue wait
     * included); options.num_threads is ignored — parallelism belongs to
     * the service. Throws UnknownKeyError for an unregistered key,
     * backend::OverloadedError under backpressure (service-wide or the
     * tenant's own admission quota), std::invalid_argument on input-count
     * mismatch.
     */
    JobHandle Submit(KeyId key, const pasm::Program& program,
                     Ciphertexts inputs, const RunOptions& options = {});

    /** Same, sharing the program instead of copying it. */
    JobHandle Submit(KeyId key,
                     std::shared_ptr<const pasm::Program> program,
                     Ciphertexts inputs, const RunOptions& options = {});

    /** Aggregated serving + key-cache counters plus the tenant count. */
    struct Stats {
        backend::ServingStats serving;
        KeyCacheStats key_cache;
        uint64_t tenants = 0;  ///< Registered (resident or reloadable).
    };
    Stats stats() const;

    const backend::ServingOptions& serving_options() const {
        return serving_.options();
    }

    uint64_t key_cache_capacity_bytes() const {
        return cache_.capacity_bytes();
    }

  private:
    // Destruction order matters: serving_ must stop (dtor drains workers,
    // releasing job pins into cache_) before executor_'s pool is torn
    // down, hence cache_ first, serving_ last.
    TenantKeyCache cache_;
    backend::Executor executor_;
    backend::ServingExecutor<backend::TfheEvaluator> serving_;
};

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_SERVICE_H
