/**
 * @file
 * core::Service — the multi-tenant serving runtime.
 *
 * The Fig. 1 cloud scenario has one client and one blocking request; a
 * production server multiplexes many encrypted jobs from many clients
 * over one shared worker pool. Service owns the persistent
 * backend::Executor whose pool runs a backend::ServingExecutor: jobs from
 * different tenants interleave at gate granularity (see serving.h for the
 * fairness/backpressure policy), and each tenant evaluates under its own
 * registered evaluation key.
 *
 * Protocol:
 *   1. A client registers its public evaluation key once:
 *        service.RegisterTenant(client.MakeEvaluationKey())
 *      The returned KeyId equals client.key_id() — a stable digest of the
 *      key material, so the client can verify it is talking to a service
 *      that really holds *its* keys.
 *   2. The client submits jobs against that id:
 *        auto job = service.Submit(id, program, inputs, options);
 *      Submit returns immediately with a JobHandle; an unknown id throws
 *      UnknownKeyError (instead of evaluating under the wrong key and
 *      returning garbage), and a full service throws
 *      backend::OverloadedError.
 *   3. The client waits on the handle and decrypts:
 *        Ciphertexts out = job.Get();   // or TryGet() to poll, Cancel()
 *
 * Fault tolerance rides in on the serving layer: configure
 * ServiceOptions::serving.retry (and, in tests, .fault_injector) and a
 * job killed by a transient gate failure is retried with backoff, the
 * last permitted attempt running isolated on the sequential interpreter.
 * A job that exhausts its attempts resolves JobStatus::kFailed and Get()
 * rethrows the typed backend::GateExecutionError; every other job and
 * the worker pool itself are unaffected. OverloadedError carries a
 * machine-readable retry-after hint (queue depth + estimated drain time).
 */
#ifndef PYTFHE_CORE_SERVICE_H
#define PYTFHE_CORE_SERVICE_H

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "backend/serving.h"
#include "core/runtime.h"

namespace pytfhe::core {

using backend::JobMetrics;
using backend::JobStatus;
using backend::OverloadedError;

/** Typed rejection: job submitted under a KeyId the service never saw. */
class UnknownKeyError : public std::invalid_argument {
  public:
    explicit UnknownKeyError(const std::string& what)
        : std::invalid_argument(what) {}
};

/** Service-wide configuration; see backend::ServingOptions for semantics. */
struct ServiceOptions {
    backend::ServingOptions serving;
};

/**
 * Future-like handle to one submitted job. Cheap to copy; valid after the
 * Service is destroyed (jobs are terminal by then).
 */
class JobHandle {
  public:
    /** Blocks until the job is terminal; returns the terminal status. */
    JobStatus Wait() const { return job_->Wait(); }

    /** Non-blocking: terminal status, or nullopt while queued/running. */
    std::optional<JobStatus> TryGet() const { return job_->TryGet(); }

    /**
     * Requests cancellation; true if it landed before completion (the job
     * will resolve kCancelled), false if the job was already terminal.
     */
    bool Cancel() const { return job_->Cancel(); }

    /**
     * The result ciphertexts; blocks until terminal. Throws
     * backend::CancelledError / backend::DeadlineExceededError /
     * backend::GateExecutionError if the job ended without outputs.
     */
    const Ciphertexts& Get() const { return job_->Outputs(); }

    /**
     * The latched gate error of a kFailed job, nullopt otherwise; blocks
     * until terminal.
     */
    std::optional<backend::GateExecutionError> Error() const {
        return job_->Error();
    }

    /** Per-job accounting (queue wait, gates, elided bootstraps, wall). */
    JobMetrics Metrics() const { return job_->Metrics(); }

    /** The tenant key this job evaluates under. */
    KeyId key_id() const { return key_id_; }

  private:
    friend class Service;
    using BackendJob =
        backend::ServingExecutor<backend::TfheEvaluator>::Job;

    JobHandle(std::shared_ptr<BackendJob> job, KeyId key_id)
        : job_(std::move(job)), key_id_(key_id) {}

    std::shared_ptr<BackendJob> job_;
    KeyId key_id_;
};

/**
 * The serving runtime. Construction starts the worker pool; destruction
 * cancels outstanding jobs and drains it. All methods are thread-safe.
 */
class Service {
  public:
    explicit Service(const ServiceOptions& options = {});
    ~Service();
    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /**
     * Registers one tenant's public evaluation key and returns its KeyId
     * (the stable digest the key already carries — the client holds the
     * same value). Registering the same key twice is idempotent. Throws
     * std::invalid_argument for a null evaluator or one without a key
     * identity (key_id().IsSet() == false, e.g. loaded from disk without
     * recording an id).
     */
    KeyId RegisterTenant(std::shared_ptr<tfhe::GateEvaluator> gates);

    /**
     * Submits a job for tenant `key`: `program` over `inputs`, scheduled
     * on the shared pool. Returns immediately. options.deadline_seconds
     * bounds the job's wall time (queue wait included);
     * options.num_threads is ignored — parallelism belongs to the
     * service. Throws UnknownKeyError for an unregistered key,
     * backend::OverloadedError under backpressure, std::invalid_argument
     * on input-count mismatch.
     */
    JobHandle Submit(KeyId key, const pasm::Program& program,
                     Ciphertexts inputs, const RunOptions& options = {});

    /** Same, sharing the program instead of copying it. */
    JobHandle Submit(KeyId key,
                     std::shared_ptr<const pasm::Program> program,
                     Ciphertexts inputs, const RunOptions& options = {});

    /** Aggregated serving counters plus the tenant count. */
    struct Stats {
        backend::ServingStats serving;
        uint64_t tenants = 0;
    };
    Stats stats() const;

    const backend::ServingOptions& serving_options() const {
        return serving_.options();
    }

  private:
    /**
     * A registered tenant: the owning handle on the key material plus the
     * TfheEvaluator the scheduler calls into. std::map nodes are stable,
     * so jobs hold pointers into the entry across rehash-free lifetime.
     */
    struct Tenant {
        std::shared_ptr<tfhe::GateEvaluator> gates;
        backend::TfheEvaluator evaluator;

        explicit Tenant(std::shared_ptr<tfhe::GateEvaluator> g)
            : gates(std::move(g)), evaluator(*gates) {}
    };

    mutable std::mutex mu_;  ///< Guards tenants_ only.
    std::map<uint64_t, Tenant> tenants_;

    // Destruction order matters: serving_ must stop (dtor drains workers)
    // before executor_'s pool is torn down, hence executor_ first.
    backend::Executor executor_;
    backend::ServingExecutor<backend::TfheEvaluator> serving_;
};

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_SERVICE_H
