/**
 * @file
 * The end-to-end compile pipeline (Fig. 2 of the paper): frontend circuit
 * -> synthesis/optimization -> PyTFHE binary.
 *
 * This is the facade a downstream user calls: give it a netlist (from the
 * hdl layer, the nn layer, or your own generator) or an nn::Module, get
 * back an executable, serializable Program plus compile statistics.
 */
#ifndef PYTFHE_CORE_COMPILER_H
#define PYTFHE_CORE_COMPILER_H

#include <optional>
#include <string>

#include "circuit/opt/lut_lower.h"
#include "circuit/opt/passes.h"
#include "nn/layers.h"
#include "pasm/assembler.h"

namespace pytfhe::core {

/** Compilation knobs. */
struct CompileOptions {
    circuit::OptOptions opt;  ///< Synthesis rewrites (default: all on).

    /**
     * Target crypto parameter set. When set, the noise-budget-aware
     * bootstrap-elision pass runs after netlist optimization, rewriting
     * XOR/XNOR/NOT gates to their linear (bootstrap-free) forms wherever
     * this set's noise budget allows. When nullopt (the default) no gate
     * is elided: the compiler refuses to judge elision safety without
     * knowing the parameters the program will execute under.
     */
    std::optional<tfhe::Params> params;
    circuit::ElisionOptions elision;  ///< Pass knobs; enabled by default.

    /**
     * Message modulus for multi-bit (programmable-bootstrap) compilation.
     * 0 (the default) keeps the classic boolean pipeline. A value in
     * {4, 8, 16} lowers the optimized boolean netlist to a homogeneous
     * LUT netlist (circuit::LowerToLuts) where every gate costs exactly
     * one programmable bootstrap and merged cones cost less than their
     * boolean expansion. Requires `params`: cone sizing depends on the
     * parameter set's noise budget (tfhe::MaxMultibitWeightBudget). When
     * the set cannot carry even the weakest two-leaf LUT at this modulus,
     * compilation falls back to the boolean pipeline — recorded in
     * Compiled::multibit_fell_back — instead of emitting a program whose
     * outputs would decrypt to garbage. Netlists that are already
     * multibit (hdl/multibit_ops.h generators) pass through unchanged;
     * bootstrap elision never applies to multibit programs (every LUT
     * bootstraps by construction). plan_memory composes with either path.
     */
    int32_t multibit = 0;

    /**
     * Compute a memory plan (liveness + linear-scan slot reuse) and embed
     * it in the emitted binary as a version-3 plan section. The plan is
     * level-safe, so every backend honors it; results are bit-identical
     * with or without one — only peak ciphertext storage differs (one slot
     * per peak-live value instead of one per instruction). Off emits the
     * version-2 planless format.
     */
    bool plan_memory = true;
};

/** A compiled TFHE program plus its provenance statistics. */
struct Compiled {
    pasm::Program program;
    circuit::NetlistStats stats;      ///< Of the optimized netlist.
    circuit::OptStats opt_stats;      ///< What optimization achieved.
    circuit::ElisionStats elision_stats;  ///< All-zero when pass skipped.
    circuit::LutLowerStats lut_stats;     ///< All-zero when pass skipped.
    /**
     * True when CompileOptions::multibit was requested but the parameter
     * set's noise budget rejected the modulus, so the boolean pipeline
     * (with elision, when enabled) was emitted instead.
     */
    bool multibit_fell_back = false;
};

/**
 * Optimizes and assembles a netlist. Returns nullopt with `error` filled
 * when the netlist is invalid or not representable (e.g. constant outputs).
 */
std::optional<Compiled> Compile(const circuit::Netlist& netlist,
                                const CompileOptions& options = {},
                                std::string* error = nullptr);

/**
 * Elaborates an nn::Module over an encrypted input tensor of the given
 * dtype/shape (ChiselTorch path), then compiles. Input bits are ordered as
 * Tensor::Input orders them; outputs as Tensor::Output.
 */
std::optional<Compiled> CompileModule(const nn::Module& module,
                                      const hdl::DType& dtype,
                                      const nn::Shape& input_shape,
                                      const CompileOptions& options = {},
                                      std::string* error = nullptr);

}  // namespace pytfhe::core

#endif  // PYTFHE_CORE_COMPILER_H
