#include "core/service.h"

#include <chrono>
#include <utility>

namespace pytfhe::core {

Service::Service(const ServiceOptions& options)
    : serving_(executor_, options.serving) {}

Service::~Service() {
    serving_.Stop();
}

KeyId Service::RegisterTenant(std::shared_ptr<tfhe::GateEvaluator> gates) {
    if (!gates)
        throw std::invalid_argument("Service::RegisterTenant: null evaluator");
    const KeyId id = gates->key_id();
    if (!id.IsSet())
        throw std::invalid_argument(
            "Service::RegisterTenant: evaluation key carries no KeyId; "
            "construct the GateEvaluator from a SecretKeySet or pass an "
            "explicit id");
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.try_emplace(id.value, std::move(gates));
    return id;
}

JobHandle Service::Submit(KeyId key, const pasm::Program& program,
                          Ciphertexts inputs, const RunOptions& options) {
    return Submit(key, std::make_shared<const pasm::Program>(program),
                  std::move(inputs), options);
}

JobHandle Service::Submit(KeyId key,
                          std::shared_ptr<const pasm::Program> program,
                          Ciphertexts inputs, const RunOptions& options) {
    backend::TfheEvaluator* evaluator = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tenants_.find(key.value);
        if (it != tenants_.end()) evaluator = &it->second.evaluator;
    }
    if (evaluator == nullptr)
        throw UnknownKeyError("Service::Submit: no tenant registered for " +
                              key.ToString() +
                              "; call RegisterTenant first");
    backend::ServingExecutor<backend::TfheEvaluator>::SubmitOptions so;
    if (options.deadline_seconds > 0.0)
        so.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.deadline_seconds));
    return JobHandle(
        serving_.Submit(std::move(program), *evaluator, std::move(inputs), so),
        key);
}

Service::Stats Service::stats() const {
    Stats out;
    out.serving = serving_.stats();
    std::lock_guard<std::mutex> lock(mu_);
    out.tenants = tenants_.size();
    return out;
}

}  // namespace pytfhe::core
