#include "core/service.h"

#include <chrono>
#include <utility>

#include "tfhe/serialization.h"

namespace pytfhe::core {

Service::Service(const ServiceOptions& options)
    : cache_(options.key_cache_capacity_bytes),
      serving_(executor_, options.serving) {}

Service::~Service() {
    serving_.Stop();
}

KeyId Service::RegisterTenant(std::shared_ptr<tfhe::GateEvaluator> gates,
                              uint32_t weight) {
    if (!gates)
        throw std::invalid_argument("Service::RegisterTenant: null evaluator");
    const KeyId id = gates->key_id();
    if (!id.IsSet())
        throw std::invalid_argument(
            "Service::RegisterTenant: evaluation key carries no KeyId; "
            "construct the GateEvaluator from a SecretKeySet or pass an "
            "explicit id");
    cache_.Put(std::move(gates), weight);
    return id;
}

void Service::RegisterTenantSource(KeyId id, KeySource source,
                                   uint32_t weight) {
    if (!id.IsSet())
        throw std::invalid_argument(
            "Service::RegisterTenantSource: unset KeyId");
    if (!source)
        throw std::invalid_argument(
            "Service::RegisterTenantSource: null source");
    cache_.PutSource(id, std::move(source), weight);
}

bool Service::EvictTenant(KeyId key) {
    return cache_.Evict(key);
}

JobHandle Service::Submit(KeyId key, const pasm::Program& program,
                          Ciphertexts inputs, const RunOptions& options) {
    return Submit(key, std::make_shared<const pasm::Program>(program),
                  std::move(inputs), options);
}

JobHandle Service::Submit(KeyId key,
                          std::shared_ptr<const pasm::Program> program,
                          Ciphertexts inputs, const RunOptions& options) {
    std::shared_ptr<TenantEntry> entry;
    try {
        entry = cache_.Get(key);
    } catch (const tfhe::CorruptPayloadError&) {
        // The tenant's backing artifact rotted: fail THIS submission with
        // the typed error, leave the pool (and every other tenant) alone.
        return JobHandle(std::current_exception(), key);
    }
    if (!entry)
        throw UnknownKeyError("Service::Submit: no tenant registered for " +
                              key.ToString() +
                              "; call RegisterTenant first");
    backend::ServingExecutor<backend::TfheEvaluator>::SubmitOptions so;
    if (options.deadline_seconds > 0.0)
        so.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.deadline_seconds));
    so.tenant = key.value;
    so.weight = entry->weight;
    // The job owns a reference to the whole tenant entry: a key-cache
    // eviction (or tenant replacement) drops only the cache's reference,
    // never the key material this job evaluates under.
    so.pin = entry;
    backend::TfheEvaluator& evaluator = entry->evaluator;
    return JobHandle(serving_.Submit(std::move(program), evaluator,
                                     std::move(inputs), so),
                     key);
}

Service::Stats Service::stats() const {
    Stats out;
    out.serving = serving_.stats();
    out.key_cache = cache_.stats();
    out.tenants = cache_.KnownCount();
    return out;
}

}  // namespace pytfhe::core
